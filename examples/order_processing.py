#!/usr/bin/env python3
"""§5.2 / Fig. 7 — electronic order processing, every path.

Runs the paper's processOrderApplication script with implementation bindings
that steer each run down a different path: completed, payment refused, out of
stock, dispatch aborted (the abort outcome of an atomic task).

Run:  python examples/order_processing.py
"""

from repro.engine import LocalEngine
from repro.workloads import paper_order


def run_case(label: str, **behaviour) -> None:
    script = paper_order.build()
    registry = paper_order.default_registry(**behaviour)
    result = LocalEngine(registry).run(script, inputs={"order": "order-1234"})
    note = result.value("dispatchNote") or "-"
    print(f"{label:<28} -> {result.outcome:<16} dispatchNote={note}")


def show_trace() -> None:
    script = paper_order.build()
    result = LocalEngine(paper_order.default_registry()).run(
        script, inputs={"order": "order-1234"}
    )
    print("\nevent trace (happy path):")
    for entry in result.log.entries:
        print(
            f"  #{entry.seq:<3} {entry.producer_path:<45} "
            f"{entry.event.kind.value:<8} {entry.event.name}"
        )


def main() -> None:
    print("Fig. 7 — processOrderApplication\n")
    run_case("all stages succeed")
    run_case("payment not authorised", authorise=False)
    run_case("item out of stock", in_stock=False)
    run_case("dispatch aborts (atomic)", dispatch_ok=False)
    show_trace()


if __name__ == "__main__":
    main()
