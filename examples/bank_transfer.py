#!/usr/bin/env python3
"""Atomic tasks backed by real transactions (the paper's §2 example).

"A task represents a unit of work to be done (e.g., an atomic transaction
that transfers a sum of money from customer account A to customer account B
by debiting A and crediting B)."

Here the workflow's `transfer` task is bound to an implementation that runs
an actual ACID transaction — with a *nested* transaction for the debit step
(§2: "possibly containing nested transactions within") — against a durable
account store.  When the transfer cannot proceed (insufficient funds), the
transaction aborts, nothing is written, and the task reports its *abort
outcome*: exactly the mapping between committed/aborted transactions and
task outcomes the paper describes.

Run:  python examples/bank_transfer.py
"""

from repro import ImplementationRegistry, LocalEngine, abort, compile_script, outcome
from repro.txn import ObjectStore, TransactionAborted, TransactionManager

SCRIPT = """
class TransferOrder;
class Receipt;

taskclass Transfer
{
    inputs { input main { order of class TransferOrder } };
    outputs
    {
        outcome transferred { receipt of class Receipt };
        abort outcome insufficientFunds { }
    }
};

taskclass Notify
{
    inputs { input main { receipt of class Receipt } };
    outputs { outcome notified { receipt of class Receipt } }
};

taskclass Payment
{
    inputs { input main { order of class TransferOrder } };
    outputs
    {
        outcome paid { receipt of class Receipt };
        outcome bounced { }
    }
};

compoundtask payment of taskclass Payment
{
    task transfer of taskclass Transfer
    {
        implementation { "code" is "refTransfer" };
        inputs { input main { inputobject order from
            { order of task payment if input main } } }
    };
    task notify of taskclass Notify
    {
        implementation { "code" is "refNotify" };
        inputs { input main { inputobject receipt from
            { receipt of task transfer if output transferred } } }
    };
    outputs
    {
        outcome paid
        {
            outputobject receipt from { receipt of task notify if output notified }
        };
        outcome bounced
        {
            notification from { task transfer if output insufficientFunds }
        }
    }
};
"""


def build_bank():
    """A durable account store with two customers."""
    store = ObjectStore("bank")
    manager = TransactionManager("bank-tm", decision_store=store)
    with manager.begin() as txn:
        txn.write(store, "account:A", 100.0)
        txn.write(store, "account:B", 10.0)
    return store, manager


def make_registry(store, manager):
    registry = ImplementationRegistry()

    @registry.implementation("refTransfer")
    def transfer(ctx):
        src, dst, amount = ctx.value("order")
        txn = manager.begin()
        try:
            # debit inside a nested transaction — its effects stay
            # provisional until the whole transfer commits
            debit = txn.begin_nested()
            balance = debit.read(store, f"account:{src}")
            if balance < amount:
                debit.abort()
                txn.abort()
                return abort("insufficientFunds")
            debit.write(store, f"account:{src}", balance - amount)
            debit.commit()
            txn.write(store, f"account:{dst}", txn.read(store, f"account:{dst}") + amount)
            txn.commit()
        except TransactionAborted:
            return abort("insufficientFunds")
        return outcome("transferred", receipt=f"{src}->{dst}:{amount}")

    registry.register(
        "refNotify", lambda ctx: outcome("notified", receipt=ctx.value("receipt"))
    )
    return registry


def balances(store):
    return store.read_committed("account:A"), store.read_committed("account:B")


def main() -> None:
    script = compile_script(SCRIPT)
    store, manager = build_bank()
    engine = LocalEngine(make_registry(store, manager))

    print(f"opening balances     : A={balances(store)[0]}, B={balances(store)[1]}")

    result = engine.run(script, inputs={"order": ("A", "B", 30.0)})
    print(f"transfer A->B 30     : {result.outcome}, receipt={result.value('receipt')}")
    print(f"balances             : A={balances(store)[0]}, B={balances(store)[1]}")

    result = engine.run(script, inputs={"order": ("A", "B", 500.0)})
    print(f"transfer A->B 500    : {result.outcome} (abort outcome, no effects)")
    print(f"balances             : A={balances(store)[0]}, B={balances(store)[1]}")

    store.crash()
    print(f"after bank crash     : A={balances(store)[0]}, B={balances(store)[1]} "
          f"(the WAL kept the committed transfer)")
    assert balances(store) == (70.0, 40.0)


if __name__ == "__main__":
    main()
