#!/usr/bin/env python3
"""§5.3 / Figs. 8-9 — the business trip application.

Demonstrates the language's most advanced features on the paper's own
scenario:

* parallel airline queries inside a nested compound (CFR), with the
  first-listed available quote winning;
* a *mark* output releasing the flight cost before the workflow finishes;
* *repeat* outcomes: the hotel retries booking, and the whole
  businessReservation compound loops after a compensated failure;
* the compensating task flightCancellation undoing the flight when the
  hotel cannot be booked.

Run:  python examples/trip_booking.py
"""

from repro.core.selection import EventKind
from repro.engine import LocalEngine
from repro.workloads import paper_trip


def narrate(result) -> None:
    print(f"  outcome: {result.outcome}")
    for name, objects in result.marks:
        values = {k: v.value for k, v in objects.items()}
        print(f"  mark '{name}' released early: {values}")
    if result.value("tickets"):
        print(f"  tickets: {result.value('tickets')}")
    repeats = [
        e for e in result.log.entries if e.event.kind is EventKind.REPEAT
    ]
    for entry in repeats:
        print(f"  repeat: {entry.producer_path} via '{entry.event.name}'")
    compensations = [
        e
        for e in result.log.entries
        if e.producer_path.endswith("flightCancellation")
        and e.event.kind is EventKind.OUTCOME
    ]
    for entry in compensations:
        print("  compensation: flightCancellation cancelled the reserved flight")
    print()


def main() -> None:
    script = paper_trip.build()

    print("case 1: smooth booking (airline two wins; hotel needs 2 retries)")
    registry = paper_trip.default_registry()
    narrate(LocalEngine(registry).run(script, inputs={"user": "alice"}))

    print("case 2: hotel fails on round one -> compensate flight -> BR loops")
    registry = paper_trip.default_registry(
        hotel_rounds_until_success=2, hotel_attempts_needed=1, hotel_max_tries=3
    )
    narrate(LocalEngine(registry).run(script, inputs={"user": "bob"}))

    print("case 3: no airline can satisfy the price cap -> trip fails")
    registry = paper_trip.default_registry(airline_quotes=(900.0, 700.0, 650.0))
    narrate(LocalEngine(registry).run(script, inputs={"user": "carol"}))


if __name__ == "__main__":
    main()
