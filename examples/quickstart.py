#!/usr/bin/env python3
"""Quickstart: write a workflow script, bind implementations, run it.

The script below composes a two-task greeting pipeline in the paper's
language; implementations are plain Python callables bound by name at run
time (§3's late binding).

Run:  python examples/quickstart.py
"""

from repro import ImplementationRegistry, LocalEngine, compile_script, outcome

SCRIPT = """
class Name;
class Greeting;

taskclass Greet
{
    inputs { input main { name of class Name } };
    outputs { outcome greeted { greeting of class Greeting } }
};

taskclass Shout
{
    inputs { input main { greeting of class Greeting } };
    outputs { outcome shouted { greeting of class Greeting } }
};

taskclass Hello
{
    inputs { input main { name of class Name } };
    outputs { outcome done { greeting of class Greeting } }
};

compoundtask hello of taskclass Hello
{
    task greet of taskclass Greet
    {
        implementation { "code" is "refGreet" };
        inputs
        {
            input main
            {
                inputobject name from { name of task hello if input main }
            }
        }
    };
    task shout of taskclass Shout
    {
        implementation { "code" is "refShout" };
        inputs
        {
            input main
            {
                inputobject greeting from
                {
                    greeting of task greet if output greeted
                }
            }
        }
    };
    outputs
    {
        outcome done
        {
            outputobject greeting from
            {
                greeting of task shout if output shouted
            }
        }
    }
};
"""


def main() -> None:
    script = compile_script(SCRIPT)          # parse + validate

    registry = ImplementationRegistry()
    registry.register(
        "refGreet", lambda ctx: outcome("greeted", greeting=f"hello, {ctx.value('name')}")
    )
    registry.register(
        "refShout", lambda ctx: outcome("shouted", greeting=ctx.value("greeting").upper())
    )

    result = LocalEngine(registry).run(script, inputs={"name": "world"})

    print(f"status : {result.status.value}")
    print(f"outcome: {result.outcome}")
    print(f"output : {result.value('greeting')}")
    print("\ntask start order:")
    for path in result.log.started_order():
        print(f"  {path}")
    assert result.value("greeting") == "HELLO, WORLD"


if __name__ == "__main__":
    main()
