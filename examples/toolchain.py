#!/usr/bin/env python3
"""The language toolchain on one script: validate, lint, analyze, export.

Shows the repository-side tooling a script goes through before deployment —
semantic validation, lint findings, exhaustive outcome-reachability analysis
(which proves every declared outcome of the order application can happen and
names a witness for each), and Graphviz export for the figures.

Run:  python examples/toolchain.py
"""

from repro.core import analyze_outcomes, structure_summary
from repro.lang import compile_script, format_script, lint_script, to_dot
from repro.workloads import paper_order


def main() -> None:
    script = compile_script(paper_order.SCRIPT_TEXT)
    print("validated: OK")

    summary = structure_summary(script.tasks[paper_order.ROOT_TASK])
    print(
        f"structure: {summary['tasks']} tasks, {summary['data_edges']} dataflow "
        f"+ {summary['notification_edges']} notification arcs, "
        f"{summary['outputs']} outputs"
    )

    findings = lint_script(script)
    print(f"lint     : {len(findings)} finding(s)"
          + ("".join(f"\n           {w}" for w in findings)))

    print()
    print(analyze_outcomes(script).summary())

    dot = to_dot(script)
    print(f"\ngraphviz : {len(dot.splitlines())} lines of DOT "
          f"(pipe through `dot -Tsvg` to render Fig. 7)")
    canonical = format_script(script)
    assert compile_script(canonical).tasks == script.tasks
    print(f"formatter: canonical text round-trips ({len(canonical)} chars)")


if __name__ == "__main__":
    main()
