#!/usr/bin/env python3
"""§3's dynamic reconfiguration scenario, live.

The paper's own example: the Fig. 1 workflow (t1 -> {t2, t3} -> t4) is
running when a new task t5, depending on t2 and t4, must be added — and the
workflow's outcome rewired to wait for it.  The change is applied atomically
to the *running* instance; t5 sees the full event history of its scope, so
dependencies that were satisfied before it existed still count.

Run:  python examples/dynamic_reconfiguration.py
"""

from repro.core import (
    AddTask,
    Implementation,
    ReplaceOutputMapping,
    apply_changes,
)
from repro.core.schema import (
    GuardKind,
    InputObjectBinding,
    InputSetBinding,
    OutputBinding,
    OutputObjectBinding,
    Source,
    TaskDecl,
)
from repro.engine import LocalEngine, outcome
from repro.workloads import diamond


def main() -> None:
    script, registry, root, inputs = diamond()
    registry.register(
        "audit",
        lambda ctx: outcome(
            "done", out=f"audited({ctx.value('left')} & {ctx.value('right')})"
        ),
    )

    workflow = LocalEngine(registry).workflow(script)
    workflow.start(inputs)
    workflow.step()  # t1 has run; t2/t3 are about to
    print("workflow running; executed so far:")
    for path in workflow.log.started_order():
        print(f"  {path}")

    t5 = TaskDecl(
        "t5",
        "Join",
        Implementation.of(code="audit"),
        (
            InputSetBinding(
                "main",
                (
                    InputObjectBinding(
                        "left", (Source("t2", "out", GuardKind.OUTPUT, "done"),)
                    ),
                    InputObjectBinding(
                        "right", (Source("t4", "out", GuardKind.OUTPUT, "done"),)
                    ),
                ),
            ),
        ),
    )
    rewire = ReplaceOutputMapping(
        "fig1",
        OutputBinding(
            "done",
            (OutputObjectBinding("out", (Source("t5", "out", GuardKind.OUTPUT, "done"),)),),
        ),
    )
    new_script = apply_changes(workflow.tree.script, [AddTask("fig1", t5), rewire])
    workflow.reconfigure(new_script)
    print("\nreconfigured: added t5 (deps on t2, t4), outcome now waits for t5")

    result = workflow.run_to_completion()
    print(f"\nstatus : {result.status.value}")
    print(f"output : {result.value('out')}")
    print("\nfinal start order:")
    for path in result.log.started_order():
        print(f"  {path}")
    assert result.completed and "audited" in result.value("out")


if __name__ == "__main__":
    main()
