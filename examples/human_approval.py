#!/usr/bin/env python3
"""Long-running interactive tasks: a purchase approval workflow.

The paper motivates the language with applications that "may contain long
periods of inactivity, often due to the constituent applications requiring
user interactions" (§1).  Here the `approve` task parks itself with
``pending()``; the workflow survives an execution-node crash while parked,
and a (simulated) manager later supplies the decision through the execution
service — journaled like any other result.

Run:  python examples/human_approval.py
"""

from repro import ImplementationRegistry, compile_script, outcome, pending
from repro.services import WorkflowSystem

SCRIPT = """
class Request;
class Decision;
class Confirmation;

taskclass Prepare
{
    inputs { input main { request of class Request } };
    outputs { outcome prepared { request of class Request } }
};

taskclass ManagerApproval
{
    inputs { input main { request of class Request } };
    outputs
    {
        outcome approved { decision of class Decision };
        outcome denied { }
    }
};

taskclass PlaceOrder
{
    inputs { input main { decision of class Decision } };
    outputs { outcome placed { confirmation of class Confirmation } }
};

taskclass Purchase
{
    inputs { input main { request of class Request } };
    outputs
    {
        outcome purchased { confirmation of class Confirmation };
        outcome declined { }
    }
};

compoundtask purchase of taskclass Purchase
{
    task prepare of taskclass Prepare
    {
        implementation { "code" is "refPrepare" };
        inputs { input main { inputobject request from
            { request of task purchase if input main } } }
    };
    task approve of taskclass ManagerApproval
    {
        implementation { "code" is "refApprove" };
        inputs { input main { inputobject request from
            { request of task prepare if output prepared } } }
    };
    task placeOrder of taskclass PlaceOrder
    {
        implementation { "code" is "refPlaceOrder" };
        inputs { input main { inputobject decision from
            { decision of task approve if output approved } } }
    };
    outputs
    {
        outcome purchased
        {
            outputobject confirmation from
            { confirmation of task placeOrder if output placed }
        };
        outcome declined { notification from { task approve if output denied } }
    }
};
"""


def main() -> None:
    registry = ImplementationRegistry()
    registry.register(
        "refPrepare", lambda ctx: outcome("prepared", request=ctx.value("request"))
    )
    registry.register("refApprove", lambda ctx: pending("manager inbox"))
    registry.register(
        "refPlaceOrder",
        lambda ctx: outcome("placed", confirmation=f"PO#{ctx.value('decision')}"),
    )

    system = WorkflowSystem(workers=2, registry=registry)
    system.deploy("purchase", SCRIPT)
    iid = system.instantiate("purchase", "purchase", {"request": "3 laptops"})
    system.clock.advance(50.0)

    status = system.status(iid)
    print(f"after submission : {status['status']}, "
          f"awaiting external = {status['awaiting_external']}")
    print(f"manager inbox    : {system.execution_proxy().external_tasks(iid)}")

    print("\n(crash and recover the execution node while the manager thinks)")
    system.execution_node.crash()
    system.execution_node.recover()
    system.clock.advance(20.0)
    print(f"still parked     : {system.execution_proxy().external_tasks(iid)}")

    print("\nmanager approves.")
    system.execution_proxy().complete_task(
        iid, "purchase/approve", "approved", {"decision": "approved-by-cfo"}
    )
    result = system.run_until_terminal(iid, max_time=5_000)
    print(f"\noutcome      : {result['outcome']}")
    print(f"confirmation : {result['objects']['confirmation']['value']}")
    assert result["outcome"] == "purchased"


if __name__ == "__main__":
    main()
