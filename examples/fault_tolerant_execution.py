#!/usr/bin/env python3
"""§5.1 / Fig. 6 on the distributed system (Fig. 4) under injected failures.

The serviceImpactApplication runs on the full simulated workflow system —
repository node, execution-service node and two worker nodes behind the ORB —
while the experiment crashes the execution node mid-run, crashes a worker and
drops 15% of all messages.  The transactional journal brings the instance
back exactly where it was (the paper's §3 system-level fault tolerance).

Run:  python examples/fault_tolerant_execution.py
"""

from repro.net import FaultPlan
from repro.services import WorkflowSystem
from repro.workloads import paper_service_impact


def main() -> None:
    system = WorkflowSystem(
        workers=2,
        loss_rate=0.15,
        seed=2024,
        dispatch_timeout=20.0,
        sweep_interval=5.0,
    )
    paper_service_impact.default_registry(registry=system.registry)

    print("deploying script to the repository service...")
    system.deploy("service-impact", paper_service_impact.SCRIPT_TEXT)

    print("instantiating workflow through the execution service...")
    iid = system.instantiate(
        "service-impact",
        paper_service_impact.ROOT_TASK,
        inputs={"alarmsSource": "alarm-feed-7"},
    )

    print("arming failures: execution node crash @t=3 (down 40), "
          "worker-1 crash @t=5 (down 60), 15% message loss")
    plan = FaultPlan(system.clock)
    plan.crash_at(system.execution_node, when=3.0, down_for=40.0)
    plan.crash_at(system.worker_nodes[0], when=5.0, down_for=60.0)
    plan.arm()

    result = system.run_until_terminal(iid, max_time=20_000)

    print(f"\nstatus  : {result['status']}")
    print(f"outcome : {result['outcome']}")
    if result["objects"]:
        report = result["objects"].get("resolutionReport", {}).get("value")
        print(f"report  : {report}")
    print(f"\nexecution-service stats: {system.execution.stats}")
    print(f"network stats          : {system.network.stats.as_dict()}")
    print(f"virtual time elapsed   : {system.clock.now:.1f}")
    assert result["status"] == "completed"


if __name__ == "__main__":
    main()
