"""Shared fixtures: small scripts, engines and simulated worlds."""

from __future__ import annotations

import pytest

from repro.core import ScriptBuilder, from_input, from_output
from repro.core.instrument import IOPATH_STATS
from repro.core.selection import HOTPATH_STATS
from repro.engine import ImplementationRegistry, LocalEngine, outcome
from repro.net import EventClock, LatencyModel, Network, Node
from repro.txn import ObjectStore, TransactionManager


@pytest.fixture(autouse=True)
def _reset_hotpath_stats():
    """HOTPATH_STATS/IOPATH_STATS are process-global counters; without this
    reset every test (and any engine or store the test runs) bleeds
    publishes/forces/marshal counts into the next, making per-test ratio
    assertions order-dependent."""
    HOTPATH_STATS.reset()
    IOPATH_STATS.reset()
    yield
    HOTPATH_STATS.reset()
    IOPATH_STATS.reset()


@pytest.fixture
def clock():
    return EventClock()


@pytest.fixture
def network(clock):
    return Network(clock, LatencyModel(1.0, 0.0))


@pytest.fixture
def nodes(clock, network):
    return [Node(f"n{i}", clock, network) for i in range(3)]


@pytest.fixture
def store():
    return ObjectStore("test-store")


@pytest.fixture
def manager(store):
    return TransactionManager("test-tm", decision_store=store)


def build_pipeline_script(length: int = 2):
    """pipeline: t1 -> t2 -> ... -> tN, all of taskclass Stage."""
    b = ScriptBuilder()
    b.object_class("Data")
    b.taskclass("Stage").input_set("main", inp="Data").outcome("done", out="Data")
    b.taskclass("Root").input_set("main", inp="Data").outcome("done", out="Data")
    root = b.compound("pipeline", "Root")
    source = from_input("pipeline", "main", "inp")
    for index in range(length):
        name = f"t{index + 1}"
        root.task(name, "Stage").implementation(code="stage").input(
            "main", "inp", source
        ).up()
        source = from_output(name, "done", "out")
    root.output("done").object("out", from_output(f"t{length}", "done", "out")).up()
    root.up()
    return b.build()


def stage_registry():
    reg = ImplementationRegistry()
    reg.register("stage", lambda ctx: outcome("done", out=f"{ctx.value('inp')}+"))
    return reg


@pytest.fixture
def pipeline_script():
    return build_pipeline_script(3)


@pytest.fixture
def pipeline_registry():
    return stage_registry()


@pytest.fixture
def local_engine(pipeline_registry):
    return LocalEngine(pipeline_registry)
