"""Unit tests for the language front end: lexer, parser, formatter."""

import pytest

from repro.core.errors import ParseError, ValidationReport
from repro.core.schema import GuardKind, OutputKind
from repro.lang import compile_script, format_script, parse, tokenize
from repro.lang.lexer import TokenType


class TestLexer:
    def test_identifiers_and_keywords(self):
        tokens = tokenize("task foo of taskclass Bar")
        kinds = [(t.type, t.value) for t in tokens[:-1]]
        assert kinds == [
            (TokenType.KEYWORD, "task"),
            (TokenType.IDENT, "foo"),
            (TokenType.KEYWORD, "of"),
            (TokenType.KEYWORD, "taskclass"),
            (TokenType.IDENT, "Bar"),
        ]

    def test_straight_strings(self):
        tokens = tokenize('"code" is "SETPayment"')
        assert tokens[0].type is TokenType.STRING and tokens[0].value == "code"

    def test_typographic_quotes_accepted(self):
        # the paper's own listings use curly quotes
        tokens = tokenize("“code” is “refDispatch”")
        assert tokens[0].value == "code"
        assert tokens[2].value == "refDispatch"

    def test_line_comments_skipped(self):
        tokens = tokenize("class A; // the account class\nclass B;")
        values = [t.value for t in tokens if t.type is TokenType.IDENT]
        assert values == ["A", "B"]

    def test_block_comments_skipped(self):
        tokens = tokenize("class /* hidden */ A;")
        assert any(t.value == "A" for t in tokens)

    def test_unterminated_block_comment_rejected(self):
        with pytest.raises(ParseError):
            tokenize("/* forever")

    def test_unterminated_string_rejected(self):
        with pytest.raises(ParseError):
            tokenize('"never closed')

    def test_unexpected_character_rejected(self):
        with pytest.raises(ParseError) as info:
            tokenize("class A @ B")
        assert info.value.line == 1

    def test_line_column_tracking(self):
        tokens = tokenize("class A;\n  class B;")
        b_token = [t for t in tokens if t.value == "B"][0]
        assert b_token.line == 2
        assert b_token.column == 9


class TestParserBasics:
    def test_class_declarations(self):
        script = parse("class Account; class Item;")
        assert set(script.classes) == {"Account", "Item"}

    def test_taskclass_with_inputs_and_outputs(self):
        script = parse(
            """
            class A;
            taskclass T {
                inputs { input main { x of class A } };
                outputs {
                    outcome ok { y of class A };
                    repeat outcome again { };
                    mark progress { }
                }
            }
            taskclass Atomic {
                outputs { outcome ok { }; abort outcome bad { } }
            }
            """
        )
        tc = script.taskclasses["T"]
        assert tc.input_set("main").object("x").class_name == "A"
        assert tc.output("ok").kind is OutputKind.OUTCOME
        assert tc.output("again").kind is OutputKind.REPEAT
        assert tc.output("progress").kind is OutputKind.MARK
        assert script.taskclasses["Atomic"].output("bad").kind is OutputKind.ABORT

    def test_task_with_implementation_properties(self):
        script = parse(
            """
            taskclass T { outputs { outcome ok { } } }
            task t of taskclass T {
                implementation { "code" is "refT", "priority" is "5" }
            }
            """
        )
        impl = script.tasks["t"].implementation
        assert impl.code == "refT"
        assert impl.get("priority") == "5"

    def test_sources_with_guards(self):
        script = parse(
            """
            class A;
            taskclass T {
                inputs { input main { x of class A } };
                outputs { outcome ok { x of class A } }
            }
            task t1 of taskclass T {
                inputs { input main { inputobject x from {
                    x of task t0 if output ok;
                    x of task t0 if input main;
                    x of task t0
                } } }
            }
            """
        )
        sources = script.tasks["t1"].input_sets[0].objects[0].sources
        assert sources[0].guard_kind is GuardKind.OUTPUT
        assert sources[1].guard_kind is GuardKind.INPUT
        assert sources[2].guard_kind is GuardKind.ANY

    def test_notifications(self):
        script = parse(
            """
            taskclass T { outputs { outcome ok { } } }
            task t1 of taskclass T {
                inputs { input main {
                    notification from { task a if output ok; task b if output ok };
                    notification from { task c if output ok }
                } }
            }
            """
        )
        binding = script.tasks["t1"].input_sets[0]
        assert len(binding.notifications) == 2
        assert len(binding.notifications[0].sources) == 2

    def test_stray_semicolons_tolerated(self):
        script = parse(";;; class A;;; taskclass T { outputs { outcome ok { };;; } };;;")
        assert "A" in script.classes and "T" in script.taskclasses

    def test_missing_brace_reports_position(self):
        with pytest.raises(ParseError):
            parse("taskclass T { outputs { outcome ok { }")

    def test_bad_guard_keyword_rejected(self):
        with pytest.raises(ParseError):
            parse(
                "taskclass T { outputs { outcome ok { } } }"
                "task t of taskclass T { inputs { input m {"
                " notification from { task a if banana ok } } } }"
            )


class TestParserCompound:
    SOURCE = """
        class A;
        taskclass Inner {
            inputs { input main { x of class A } };
            outputs { outcome ok { y of class A } }
        }
        taskclass Outer {
            inputs { input main { x of class A } };
            outputs { outcome done { y of class A } }
        }
        compoundtask outer of taskclass Outer {
            task inner of taskclass Inner {
                implementation { "code" is "c" };
                inputs { input main { inputobject x from {
                    x of task outer if input main
                } } }
            };
            outputs {
                outcome done {
                    outputobject y from { y of task inner if output ok }
                }
            }
        }
    """

    def test_compound_parsed(self):
        script = parse(self.SOURCE)
        outer = script.tasks["outer"]
        assert outer.is_compound
        assert outer.task("inner") is not None
        assert outer.outputs[0].objects[0].sources[0].task_name == "inner"

    def test_compound_validates(self):
        compile_script(self.SOURCE)

    def test_nested_compound(self):
        script = parse(
            """
            class A;
            taskclass L { inputs { input main { x of class A } };
                          outputs { outcome ok { y of class A } } }
            taskclass M { inputs { input main { x of class A } };
                          outputs { outcome ok { y of class A } } }
            taskclass N { inputs { input main { x of class A } };
                          outputs { outcome ok { y of class A } } }
            compoundtask top of taskclass N {
                compoundtask mid of taskclass M {
                    inputs { input main { inputobject x from { x of task top if input main } } };
                    task leaf of taskclass L {
                        implementation { "code" is "c" };
                        inputs { input main { inputobject x from { x of task mid if input main } } }
                    };
                    outputs { outcome ok { outputobject y from { y of task leaf if output ok } } }
                };
                outputs { outcome ok { outputobject y from { y of task mid if output ok } } }
            }
            """
        )
        top = script.tasks["top"]
        assert top.task("mid").task("leaf") is not None


class TestTemplates:
    SOURCE = """
        class A;
        taskclass T {
            inputs { input main { i1 of class A } };
            outputs { outcome success { i1 of class A } }
        }
        tasktemplate task tmpl of taskclass T {
            parameters { param1 };
            implementation { "code" is "c" };
            inputs { input main { i1 of task param1 if output success } }
        }
        myTask of tasktemplate tmpl(other);
    """

    def test_template_instantiation(self):
        script = parse(self.SOURCE)
        decl = script.tasks["myTask"]
        assert decl.input_sets[0].objects[0].sources[0].task_name == "other"

    def test_template_stored(self):
        script = parse(self.SOURCE)
        assert "tmpl" in script.templates
        assert script.templates["tmpl"].parameters == ("param1",)

    def test_shorthand_source_becomes_input_object(self):
        script = parse(self.SOURCE)
        binding = script.templates["tmpl"].body.input_sets[0].objects[0]
        assert binding.name == "i1"

    def test_unknown_template_rejected(self):
        with pytest.raises(ParseError):
            parse("x of tasktemplate ghost();")

    def test_wrong_arity_rejected(self):
        with pytest.raises(Exception):
            parse(self.SOURCE.replace("tmpl(other)", "tmpl(a, b)"))


class TestFormatterRoundTrip:
    def roundtrip(self, text):
        script = parse(text)
        text2 = format_script(script)
        script2 = parse(text2)
        assert script2.classes == script.classes
        assert script2.taskclasses == script.taskclasses
        assert script2.tasks == script.tasks
        return script, text2

    def test_roundtrip_order_app(self):
        from repro.workloads import paper_order

        self.roundtrip(paper_order.SCRIPT_TEXT)

    def test_roundtrip_trip_app(self):
        from repro.workloads import paper_trip

        self.roundtrip(paper_trip.SCRIPT_TEXT)

    def test_roundtrip_service_impact_app(self):
        from repro.workloads import paper_service_impact

        self.roundtrip(paper_service_impact.SCRIPT_TEXT)

    def test_formatting_is_canonical_fixpoint(self):
        from repro.workloads import paper_order

        script = parse(paper_order.SCRIPT_TEXT)
        once = format_script(script)
        twice = format_script(parse(once))
        assert once == twice

    def test_roundtrip_preserves_templates(self):
        text = TestTemplates.SOURCE
        script = parse(text)
        script2 = parse(format_script(script))
        assert script2.templates.keys() == script.templates.keys()
        assert script2.templates["tmpl"].body == script.templates["tmpl"].body


class TestCompileScript:
    def test_compile_rejects_semantic_errors(self):
        with pytest.raises(ValidationReport):
            compile_script(
                "taskclass T { outputs { outcome ok { } } }"
                "task t of taskclass Ghost { }"
            )

    def test_compile_rejects_syntax_errors(self):
        with pytest.raises(ParseError):
            compile_script("task task task")
