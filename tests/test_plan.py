"""Plan compilation: table layout, firing tables, runtime equivalence of the
compiled (plan) and interpretive engine paths, and the ``repro plan`` dump."""

import json

import pytest

from repro.core import ScriptBuilder, from_input, from_output
from repro.core.selection import (
    HOTPATH_STATS,
    EventKind,
    TaskInputTracker,
    WorkflowEvent,
)
from repro.core.values import ObjectRef
from repro.engine import ConcurrentEngine, LocalEngine, compile_plan
from repro.engine.plan import (
    PlanTracker,
    compile_bindings,
    compound_scope_vocabulary,
    effective_input_sets,
)
from repro.workloads import generators, paper_order, paper_service_impact, paper_trip

PAPER = [
    (paper_order, {"order": "order-1"}),
    (paper_trip, {"user": "demo-user"}),
    (paper_service_impact, {"alarmsSource": "alarm-feed"}),
]


def canonical_log(log):
    """Byte-level identity of an event log: every field of every entry."""
    return [
        (
            entry.seq,
            entry.time,
            entry.scope_path,
            entry.producer_path,
            entry.event.producer,
            entry.event.kind.value,
            entry.event.name,
            entry.event.seq,
            tuple(
                (name, ref.class_name, ref.value, ref.produced_by, ref.via)
                for name, ref in entry.event.objects.items()
            ),
        )
        for entry in log.entries
    ]


def fingerprint(result):
    return (
        result.status,
        result.outcome,
        {name: ref.value for name, ref in result.objects.items()},
        [(name, {k: v.value for k, v in objects.items()}) for name, objects in result.marks],
    )


class TestSequentialByteIdentity:
    @pytest.mark.parametrize(
        "module,inputs", PAPER, ids=["order", "trip", "service-impact"]
    )
    def test_paper_workloads_byte_identical(self, module, inputs):
        script, registry = module.build(), module.default_registry()
        plan_run = LocalEngine(registry, use_plan=True).run(script, inputs=inputs)
        interp_run = LocalEngine(registry, use_plan=False).run(script, inputs=inputs)
        assert canonical_log(plan_run.log) == canonical_log(interp_run.log)
        assert plan_run.stats["steps"] == interp_run.stats["steps"]

    @pytest.mark.parametrize(
        "workload",
        [generators.chain(12), generators.fan(12), generators.diamond()],
        ids=["chain", "fan", "diamond"],
    )
    def test_generated_workloads_byte_identical(self, workload):
        script, registry, root, inputs = workload
        plan_run = LocalEngine(registry, use_plan=True).run(script, root, inputs=inputs)
        interp_run = LocalEngine(registry, use_plan=False).run(script, root, inputs=inputs)
        assert canonical_log(plan_run.log) == canonical_log(interp_run.log)

    def test_seeded_plan_byte_identical(self):
        """A precompiled ExecutionPlan passed as a table cache changes nothing."""
        from repro.engine.instance import InstanceTree
        from repro.engine.local import LocalWorkflow

        script, registry, root, inputs = generators.fan(6)
        plan = compile_plan(script, root_task=root, analyze=False)
        seeded = LocalWorkflow(script, root, registry, plan=plan)
        seeded.start(inputs)
        seeded_result = seeded.run_to_completion()
        plain = LocalEngine(registry, use_plan=False).run(script, root, inputs=inputs)
        assert canonical_log(seeded_result.log) == canonical_log(plain.log)


class TestConcurrentEquivalence:
    @pytest.mark.parametrize(
        "module,inputs", PAPER, ids=["order", "trip", "service-impact"]
    )
    def test_paper_workloads_same_fingerprint(self, module, inputs):
        """The concurrent engine's log may interleave, but the semantics
        (outcome, objects, marks) must match under both paths."""
        script, registry = module.build(), module.default_registry()
        plan_run = ConcurrentEngine(registry, parallelism=4, use_plan=True).run(
            script, inputs=inputs
        )
        interp_run = ConcurrentEngine(registry, parallelism=4, use_plan=False).run(
            script, inputs=inputs
        )
        assert fingerprint(plan_run) == fingerprint(interp_run)


class TestTableLayout:
    def test_fan_sink_bitmask_layout(self):
        script, _, root, _ = generators.fan(4)
        plan = compile_plan(script, root_task=root, analyze=False)
        sink = plan.task_at("fan/sink")
        assert sink is not None and not sink.compound
        (set_plan,) = sink.table.sets
        assert set_plan.name == "main"
        # 1 object slot + 3 notification slots -> mask covers 4 bits
        assert set_plan.mask == 0b1111
        assert set_plan.layout == (("inp", 0),)
        assert [s.notification for s in sink.table.slots] == [False, True, True, True]
        # each worker outcome feeds exactly one sink slot
        for worker, slot in [("w1", 0), ("w2", 1), ("w3", 2), ("w4", 3)]:
            groups = sink.table.entries[(worker, EventKind.OUTCOME, "done")]
            assert [g[0] for g in groups] == [slot]

    def test_task_ids_are_dense_and_ordered(self):
        script, _, root, _ = generators.chain(5)
        plan = compile_plan(script, root_task=root, analyze=False)
        assert [t.task_id for t in plan.tasks] == list(range(len(plan.tasks)))
        assert plan.tasks[0].path == "pipeline"
        assert plan.tasks[0].compound

    def test_anonymous_set_for_classless_inputs(self):
        b = ScriptBuilder()
        b.taskclass("Free").outcome("done")
        b.taskclass("Root").outcome("done")
        c = b.compound("wf", "Root")
        c.task("free", "Free").implementation(code="free").up()
        c.output("done").notify(from_output("free", "done")).up()
        c.up()
        script = b.build()
        decl = script.tasks["wf"].task("free")
        sets = effective_input_sets(decl, script.taskclass_of(decl))
        assert len(sets) == 1 and sets[0].name == ""
        plan = compile_plan(script, analyze=False)
        free = plan.task_at("wf/free")
        assert free.table.sets[0].mask == 0  # always satisfied
        assert free.table.slot_count == 0

    def test_liveness_annotation_marks_dead_keys(self):
        # a <-> b cycle: both statically dead, but their firing keys exist
        b = ScriptBuilder()
        b.object_class("Data")
        b.taskclass("Stage").input_set("main", inp="Data").outcome("done", out="Data")
        b.taskclass("Root").input_set("main", inp="Data").outcome("done", out="Data")
        c = b.compound("wf", "Root")
        c.task("a", "Stage").implementation(code="s").input(
            "main", "inp", from_output("b", "done", "out")
        ).up()
        c.task("b", "Stage").implementation(code="s").input(
            "main", "inp", from_output("a", "done", "out")
        ).up()
        c.output("done").object("out", from_output("a", "done", "out")).up()
        c.up()
        plan = compile_plan(b.build())
        a = plan.task_at("wf/a")
        assert a.startable == ()  # liveness: never ready
        rendered = plan.render()
        assert "DEAD" in rendered
        assert plan.stats()["dead_keys"] > 0


class TestPlanTrackerSemantics:
    def _compiled_pair(self):
        """The same bindings as an interpretive tracker and a PlanTracker."""
        script, _, root, _ = generators.fan(3)
        decl = script.tasks[root]
        taskclass = script.taskclass_of(decl)
        sink_decl = decl.task("sink")
        vocab = compound_scope_vocabulary(
            decl, taskclass, [(t.name, script.taskclass_of(t), t) for t in decl.tasks]
        )
        bindings = effective_input_sets(sink_decl, script.taskclass_of(sink_decl))
        table = compile_bindings(bindings, vocab)
        return TaskInputTracker(bindings), PlanTracker(table)

    def _event(self, producer, name="done", seq=1, **objects):
        refs = {
            k: ObjectRef("Data", v, producer, name) for k, v in objects.items()
        }
        return WorkflowEvent(producer, EventKind.OUTCOME, name, refs, seq)

    def test_same_fold_as_interpretive(self):
        interp, plan = self._compiled_pair()
        events = [
            self._event("w2", seq=1),
            self._event("w1", seq=2, out="first"),
            self._event("w3", seq=3),
            self._event("w1", seq=4, out="refreshed"),  # refresh of current best
        ]
        for event in events:
            assert interp.offer(event) == plan.offer(event)
            assert (interp.ready() is None) == (plan.ready() is None)
        assert interp.ready() == plan.ready()
        name, values = plan.ready()
        assert name == "main"
        assert values["inp"].value == "refreshed"

    def test_unmatched_event_is_single_lookup(self):
        _, plan = self._compiled_pair()
        before = HOTPATH_STATS.source_evals
        assert plan.offer(self._event("stranger")) is False
        assert HOTPATH_STATS.source_evals == before  # no slot touched


class TestPlanCli:
    def test_text_and_json_dump(self, tmp_path, capsys):
        from repro.cli import main
        from repro.lang import format_script

        script, _, _, _ = generators.fan(3)
        path = tmp_path / "fan.wf"
        path.write_text(format_script(script))
        assert main(["plan", str(path)]) == 0
        text = capsys.readouterr().out
        assert "execution plan:" in text
        assert "scope fan:" in text
        assert main(["plan", str(path), "--json", "--no-liveness"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["roots"] == ["fan"]
        assert payload["stats"]["tasks"] == len(payload["tasks"])

    def test_unknown_task_fails(self, tmp_path, capsys):
        from repro.cli import main
        from repro.lang import format_script

        script, _, _, _ = generators.chain(2)
        path = tmp_path / "chain.wf"
        path.write_text(format_script(script))
        assert main(["plan", str(path), "nonexistent"]) == 1
