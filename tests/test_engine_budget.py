"""Regression tests for the step-budget accounting of the local engine.

Covers two historical bugs:

* ``LocalWorkflow.step()`` used to dequeue a ready node *before* checking
  the budget; when the budget tripped, the popped node was silently
  discarded (never executed, never re-queued) and the comparison was
  off-by-one.
* ``_execute_subworkflow`` gave each child ``max_steps - steps`` but never
  charged the child's consumed steps back to the parent, so nested script
  bindings multiplied the global budget; a child could also be created
  with a budget of 0 or less.
"""

from __future__ import annotations

import pytest

from repro.core import ScriptBuilder, from_input, from_output
from repro.core.selection import EventKind
from repro.core.states import TaskState
from repro.engine import ImplementationRegistry, LocalEngine, WorkflowStatus, outcome
from tests.conftest import build_pipeline_script, stage_registry


def pipeline(code: str, length: int, name: str = "pipeline"):
    """A linear pipeline of ``length`` Stage tasks bound to ``code``."""
    b = ScriptBuilder()
    b.object_class("Data")
    b.taskclass("Stage").input_set("main", inp="Data").outcome("done", out="Data")
    b.taskclass("Root").input_set("main", inp="Data").outcome("done", out="Data")
    root = b.compound(name, "Root")
    source = from_input(name, "main", "inp")
    for index in range(length):
        task = f"t{index + 1}"
        root.task(task, "Stage").implementation(code=code).input(
            "main", "inp", source
        ).up()
        source = from_output(task, "done", "out")
    root.output("done").object("out", from_output(f"t{length}", "done", "out")).up()
    root.up()
    return b.build()


class TestStepBudget:
    def test_exact_budget_completes(self):
        # exactly as many steps as tasks: no spurious failure, no off-by-one
        engine = LocalEngine(stage_registry(), max_steps=3)
        result = engine.run(build_pipeline_script(3), inputs={"inp": "x"})
        assert result.completed
        assert result.stats["steps"] == 3

    def test_exhaustion_fails_without_losing_the_ready_node(self):
        engine = LocalEngine(stage_registry(), max_steps=3)
        wf = engine.workflow(build_pipeline_script(5))
        wf.start({"inp": "x"})
        result = wf.run_to_completion()
        assert result.status is WorkflowStatus.FAILED
        assert "max_steps=3" in result.error
        # exactly max_steps tasks ran; none was silently dropped
        started = [
            e.producer_path
            for e in result.log.of_kind(EventKind.INPUT)
            if e.producer_path != "pipeline"
        ]
        assert started == ["pipeline/t1", "pipeline/t2", "pipeline/t3"]
        # the node that hit the budget is still queued and waiting, not lost
        survivor = wf.tree.node_at("pipeline/t4")
        assert survivor.machine.state is TaskState.WAIT
        assert any(node is survivor for node in wf.tree._ready)

    def test_budget_not_consumed_when_nothing_ready(self):
        engine = LocalEngine(stage_registry(), max_steps=100)
        wf = engine.workflow(build_pipeline_script(2))
        wf.start({"inp": "x"})
        wf.run_to_completion()
        before = wf.steps
        assert not wf.step()  # nothing ready any more
        assert wf.steps == before


class TestNestedSubworkflowBudget:
    """Script-bound children draw on — and are charged against — one
    global budget."""

    @staticmethod
    def _nested_registry() -> ImplementationRegistry:
        reg = ImplementationRegistry()
        # every outer stage runs a 3-task inner pipeline of "leaf" tasks
        reg.register_script("sub", pipeline("leaf", 3, name="inner"), "inner")
        reg.register("leaf", lambda ctx: outcome("done", out=f"{ctx.value('inp')}+"))
        return reg

    def test_child_steps_charged_to_parent(self):
        # 3 outer tasks, each one step + 3 inner steps = 12 steps total
        engine = LocalEngine(self._nested_registry(), max_steps=12)
        result = engine.run(pipeline("sub", 3), inputs={"inp": "x"})
        assert result.completed
        assert result.stats["steps"] == 12
        assert result.value("out") == "x+++++++++"

    def test_nested_bindings_cannot_multiply_the_budget(self):
        # the old accounting only counted the 3 outer steps, so max_steps=6
        # passed despite 12 actual task executions
        engine = LocalEngine(self._nested_registry(), max_steps=6)
        result = engine.run(pipeline("sub", 3), inputs={"inp": "x"})
        assert result.status is WorkflowStatus.FAILED
        assert "max_steps=6" in result.error

    def test_zero_remaining_budget_fails_instead_of_spawning_child(self):
        # one step for the outer task leaves 0 for the child
        engine = LocalEngine(self._nested_registry(), max_steps=1)
        result = engine.run(pipeline("sub", 1), inputs={"inp": "x"})
        assert result.status is WorkflowStatus.FAILED
        assert "max_steps=1" in result.error

    def test_generous_budget_unaffected(self):
        engine = LocalEngine(self._nested_registry(), max_steps=100)
        result = engine.run(pipeline("sub", 2), inputs={"inp": "x"})
        assert result.completed
        assert result.stats["steps"] == 8  # 2 outer + 2 * 3 inner
