"""Fuzzing the language front end: arbitrary input must produce clean errors
(ParseError / ValidationReport), never an internal exception."""

import string

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.errors import ParseError, SchemaError, ValidationReport
from repro.lang import compile_script, parse, tokenize

settings.register_profile(
    "repro-fuzz", deadline=None, suppress_health_check=[HealthCheck.too_slow]
)
settings.load_profile("repro-fuzz")

# alphabets biased towards the language's own lexemes so the fuzzer reaches
# deep into the parser instead of dying at the first character
fragments = st.sampled_from(
    [
        "class", "taskclass", "task", "compoundtask", "tasktemplate",
        "inputs", "outputs", "input", "output", "inputobject", "outputobject",
        "notification", "from", "of", "if", "outcome", "abort", "repeat",
        "mark", "implementation", "is", "parameters", "extends",
        "{", "}", "(", ")", ";", ",", '"x"', "“y”", "foo", "bar", "t1",
        "main", "//c\n", "/*c*/", " ", "\n",
    ]
)


@given(st.lists(fragments, max_size=60).map(" ".join))
def test_parser_never_raises_internal_errors(text):
    try:
        compile_script(text)
    except (ParseError, ValidationReport, SchemaError):
        pass  # clean, reported errors are fine


@given(st.text(alphabet=string.printable, max_size=200))
def test_lexer_never_raises_internal_errors(text):
    try:
        tokenize(text)
    except ParseError:
        pass


@given(st.text(alphabet=string.printable, max_size=120))
def test_parser_on_arbitrary_text(text):
    try:
        parse(text)
    except (ParseError, SchemaError):
        pass
