"""Tests for deadline timers and worker placement in the execution service."""

from repro.core import ScriptBuilder, from_input, from_output
from repro.engine import outcome
from repro.lang import format_script
from repro.services import WorkflowSystem


def deadline_script(deadline="30"):
    """A workflow whose second input may never arrive: `gather` waits on a
    slow producer and carries a deadline + abort outcome."""
    b = ScriptBuilder()
    b.object_class("Data")
    b.taskclass("Maybe").input_set("main").outcome("yes", out="Data")
    b.taskclass("Gather").input_set("main", inp="Data").outcome(
        "gathered", out="Data"
    ).abort_outcome("timedOut")
    b.taskclass("Root").input_set("main").outcome("done", out="Data").outcome(
        "expired"
    )
    c = b.compound("wf", "Root")
    c.task("maybe", "Maybe").implementation(code="maybe").notify(
        "main", from_input("wf", "main")
    ).up()
    c.task("gather", "Gather").implementation(code="gather", deadline=deadline).input(
        "main", "inp", from_output("maybe", "yes", "out")
    ).up()
    c.output("done").object("out", from_output("gather", "gathered", "out")).up()
    c.output("expired").notify(from_output("gather", "timedOut")).up()
    c.up()
    return b.build()


class TestDeadlines:
    def test_deadline_fires_when_dependency_never_satisfied(self):
        # `maybe` terminates in an outcome that does NOT carry gather's
        # input, so gather waits forever — until its deadline aborts it.
        system = WorkflowSystem(workers=1)
        b = ScriptBuilder()
        b.object_class("Data")
        b.taskclass("Maybe").input_set("main").outcome("yes", out="Data").outcome("no")
        b.taskclass("Gather").input_set("main", inp="Data").outcome(
            "gathered", out="Data"
        ).abort_outcome("timedOut")
        b.taskclass("Root").input_set("main").outcome("done", out="Data").outcome(
            "expired"
        )
        c = b.compound("wf", "Root")
        c.task("maybe", "Maybe").implementation(code="maybe").notify(
            "main", from_input("wf", "main")
        ).up()
        c.task("gather", "Gather").implementation(code="gather", deadline="25").input(
            "main", "inp", from_output("maybe", "yes", "out")
        ).up()
        c.output("done").object("out", from_output("gather", "gathered", "out")).up()
        c.output("expired").notify(from_output("gather", "timedOut")).up()
        c.up()
        script = b.build()

        system.registry.register("maybe", lambda ctx: outcome("no"))  # no data!
        system.registry.register("gather", lambda ctx: outcome("gathered", out="y"))
        system.deploy("dl", format_script(script))
        iid = system.instantiate("dl", "wf", {})
        result = system.run_until_terminal(iid, max_time=5_000)
        assert result["status"] == "completed"
        assert result["outcome"] == "expired"

    def test_deadline_does_not_fire_when_inputs_arrive_in_time(self):
        script = deadline_script(deadline="500")
        system = WorkflowSystem(workers=1)
        system.registry.register("maybe", lambda ctx: outcome("yes", out="x"))
        system.registry.register(
            "gather", lambda ctx: outcome("gathered", out=f"got:{ctx.value('inp')}")
        )
        system.deploy("dl", format_script(script))
        iid = system.instantiate("dl", "wf", {})
        result = system.run_until_terminal(iid, max_time=5_000)
        assert result["outcome"] == "done"
        assert result["objects"]["out"]["value"] == "got:x"

    def test_deadline_abort_survives_recovery(self):
        """The force-abort is journaled: a crash after it must replay it."""
        b = ScriptBuilder()
        b.object_class("Data")
        b.taskclass("Maybe").input_set("main").outcome("yes", out="Data").outcome("no")
        b.taskclass("Gather").input_set("main", inp="Data").outcome(
            "gathered", out="Data"
        ).abort_outcome("timedOut")
        b.taskclass("Root").input_set("main").outcome("done", out="Data").outcome(
            "expired"
        )
        c = b.compound("wf", "Root")
        c.task("maybe", "Maybe").implementation(code="maybe").notify(
            "main", from_input("wf", "main")
        ).up()
        c.task("gather", "Gather").implementation(code="gather", deadline="20").input(
            "main", "inp", from_output("maybe", "yes", "out")
        ).up()
        c.output("done").object("out", from_output("gather", "gathered", "out")).up()
        c.output("expired").notify(from_output("gather", "timedOut")).up()
        c.up()
        script = b.build()
        system = WorkflowSystem(workers=1)
        system.registry.register("maybe", lambda ctx: outcome("no"))
        system.registry.register("gather", lambda ctx: outcome("gathered", out="y"))
        system.deploy("dl", format_script(script))
        iid = system.instantiate("dl", "wf", {})
        system.clock.advance(100.0)  # deadline fires, workflow completes
        assert system.execution.status(iid)["outcome"] == "expired"
        system.execution_node.crash()
        system.execution_node.recover()
        assert system.execution.status(iid)["outcome"] == "expired"

    def test_recovered_deadline_resumes_with_remaining_time(self):
        """A coordinator crash mid-deadline must not grant the task a fresh
        full deadline: the absolute expiry is journaled when the timer is
        first armed, so recovery re-arms only the *remaining* time."""
        b = ScriptBuilder()
        b.object_class("Data")
        b.taskclass("Maybe").input_set("main").outcome("yes", out="Data").outcome("no")
        b.taskclass("Gather").input_set("main", inp="Data").outcome(
            "gathered", out="Data"
        ).abort_outcome("timedOut")
        b.taskclass("Root").input_set("main").outcome("done", out="Data").outcome(
            "expired"
        )
        c = b.compound("wf", "Root")
        c.task("maybe", "Maybe").implementation(code="maybe").notify(
            "main", from_input("wf", "main")
        ).up()
        c.task("gather", "Gather").implementation(code="gather", deadline="60").input(
            "main", "inp", from_output("maybe", "yes", "out")
        ).up()
        c.output("done").object("out", from_output("gather", "gathered", "out")).up()
        c.output("expired").notify(from_output("gather", "timedOut")).up()
        c.up()
        script = b.build()

        system = WorkflowSystem(workers=1)
        system.registry.register("maybe", lambda ctx: outcome("no"))  # gather starves
        system.registry.register("gather", lambda ctx: outcome("gathered", out="y"))
        system.deploy("dl", format_script(script))
        iid = system.instantiate("dl", "wf", {})
        system.clock.advance(30.0)  # deadline armed near t=0, half used up
        # gather starves on its input: the instance idles, deadline pending
        assert system.execution.status(iid)["status"] in ("running", "stalled")
        system.execution_node.crash()
        system.clock.advance(20.0)  # down from t=30 to t=50
        system.execution_node.recover()
        # original expiry is ~t=60-66.  A buggy re-arm would start a fresh
        # 60-unit deadline at recovery (expiring ~t=110), so by t=80 only the
        # remaining-time behaviour has fired the abort.
        system.clock.advance(30.0)
        result = system.execution.status(iid)
        assert result["status"] == "completed"
        assert result["outcome"] == "expired"


class TestWorkerPinning:
    def pinned_script(self, location):
        b = ScriptBuilder()
        b.object_class("Data")
        b.taskclass("T").input_set("main").outcome("ok", out="Data")
        b.taskclass("Root").input_set("main").outcome("done", out="Data")
        c = b.compound("wf", "Root")
        c.task("t", "T").implementation(code="impl", location=location).notify(
            "main", from_input("wf", "main")
        ).up()
        c.output("done").object("out", from_output("t", "ok", "out")).up()
        c.up()
        return b.build()

    def test_location_property_pins_worker(self):
        system = WorkflowSystem(workers=3)
        system.registry.register("impl", lambda ctx: outcome("ok", out="x"))
        system.deploy("p", format_script(self.pinned_script("worker-3")))
        iid = system.instantiate("p", "wf", {})
        result = system.run_until_terminal(iid)
        assert result["status"] == "completed"
        assert system.workers[2].executed  # worker-3 did the work
        assert not system.workers[0].executed and not system.workers[1].executed

    def test_dead_pinned_worker_does_not_stall(self):
        system = WorkflowSystem(workers=2, dispatch_timeout=15.0, sweep_interval=5.0)
        system.registry.register("impl", lambda ctx: outcome("ok", out="x"))
        system.deploy("p", format_script(self.pinned_script("worker-1")))
        system.worker_nodes[0].crash()
        iid = system.instantiate("p", "wf", {})
        result = system.run_until_terminal(iid, max_time=5_000)
        assert result["status"] == "completed"
        assert system.workers[1].executed  # re-dispatched off the pin
