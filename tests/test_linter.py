"""Tests for the script linter."""

import pytest

from repro.core import ScriptBuilder, from_input, from_output
from repro.lang import lint_script
from repro.workloads import paper_order, paper_service_impact, paper_trip


def codes(script):
    return [w.code for w in lint_script(script)]


def base():
    b = ScriptBuilder()
    b.object_class("Data")
    b.taskclass("Stage").input_set("main", inp="Data").outcome("done", out="Data")
    b.taskclass("Root").input_set("main", inp="Data").outcome("done", out="Data")
    return b


class TestCleanScripts:
    def test_paper_order_app_is_clean(self):
        assert lint_script(paper_order.build()) == []

    def test_paper_service_impact_is_clean(self):
        assert lint_script(paper_service_impact.build()) == []

    def test_paper_trip_app_is_clean(self):
        assert lint_script(paper_trip.build()) == []


class TestW001Cycles:
    def test_cycle_reported(self):
        b = base()
        c = b.compound("wf", "Root")
        c.task("a", "Stage").implementation(code="x").input(
            "main", "inp", from_output("b", "done", "out")
        ).up()
        c.task("b", "Stage").implementation(code="x").input(
            "main", "inp", from_output("a", "done", "out")
        ).up()
        c.output("done").object("out", from_output("a", "done", "out")).up()
        c.up()
        warnings = lint_script(b.build())
        assert any(w.code == "W001" for w in warnings)


class TestW002MissingCode:
    def test_missing_code_reported(self):
        b = base()
        c = b.compound("wf", "Root")
        c.task("a", "Stage").input("main", "inp", from_input("wf", "main", "inp")).up()
        c.output("done").object("out", from_output("a", "done", "out")).up()
        c.up()
        warnings = lint_script(b.build())
        assert any(w.code == "W002" and w.location == "wf/a" for w in warnings)


class TestW003UnconsumedTask:
    def test_dead_end_task_reported(self):
        b = base()
        c = b.compound("wf", "Root")
        c.task("useful", "Stage").implementation(code="x").input(
            "main", "inp", from_input("wf", "main", "inp")
        ).up()
        c.task("orphan", "Stage").implementation(code="x").input(
            "main", "inp", from_input("wf", "main", "inp")
        ).up()
        c.output("done").object("out", from_output("useful", "done", "out")).up()
        c.up()
        warnings = lint_script(b.build())
        assert any(w.code == "W003" and "orphan" in w.location for w in warnings)


class TestW005UnboundInputSet:
    def test_unbound_alternative_set_reported(self):
        b = base()
        b.taskclass("TwoWays").input_set("main", inp="Data").input_set(
            "fallback", alt="Data"
        ).outcome("done", out="Data")
        c = b.compound("wf", "Root")
        c.task("a", "TwoWays").implementation(code="x").input(
            "main", "inp", from_input("wf", "main", "inp")
        ).up()
        c.output("done").object("out", from_output("a", "done", "out")).up()
        c.up()
        warnings = lint_script(b.build())
        assert any(w.code == "W005" and "fallback" in w.message for w in warnings)


class TestW007UnhandledAbort:
    def test_unhandled_abort_reported(self):
        b = base()
        b.taskclass("Risky").input_set("main", inp="Data").outcome(
            "done", out="Data"
        ).abort_outcome("oops")
        c = b.compound("wf", "Root")
        c.task("a", "Risky").implementation(code="x").input(
            "main", "inp", from_input("wf", "main", "inp")
        ).up()
        c.output("done").object("out", from_output("a", "done", "out")).up()
        c.up()
        warnings = lint_script(b.build())
        assert any(w.code == "W007" and "'oops'" in w.message for w in warnings)

    def test_handled_abort_not_reported(self):
        b = base()
        b.taskclass("Risky").input_set("main", inp="Data").outcome(
            "done", out="Data"
        ).abort_outcome("oops")
        b.taskclass("Root2").input_set("main", inp="Data").outcome(
            "done", out="Data"
        ).outcome("failed")
        c = b.compound("wf", "Root2")
        c.task("a", "Risky").implementation(code="x").input(
            "main", "inp", from_input("wf", "main", "inp")
        ).up()
        c.output("done").object("out", from_output("a", "done", "out")).up()
        c.output("failed").notify(from_output("a", "oops")).up()
        c.up()
        assert not any(w.code == "W007" for w in lint_script(b.build()))


class TestW008Unused:
    def test_unused_class_reported(self):
        b = base()
        b.object_class("Lonely")
        c = b.compound("wf", "Root")
        c.task("a", "Stage").implementation(code="x").input(
            "main", "inp", from_input("wf", "main", "inp")
        ).up()
        c.output("done").object("out", from_output("a", "done", "out")).up()
        c.up()
        warnings = lint_script(b.build())
        assert any(w.code == "W008" and w.location == "Lonely" for w in warnings)

    def test_superclass_used_only_as_parent_not_reported(self):
        b = base()
        b.object_class("Base")
        b.object_class("DataChild", extends="Base")
        c = b.compound("wf", "Root")
        c.task("a", "Stage").implementation(code="x").input(
            "main", "inp", from_input("wf", "main", "inp")
        ).up()
        c.output("done").object("out", from_output("a", "done", "out")).up()
        c.up()
        warnings = lint_script(b.build())
        assert not any(w.code == "W008" and w.location == "Base" for w in warnings)

    def test_unused_taskclass_reported(self):
        b = base()
        b.taskclass("Spare").outcome("nothing")
        c = b.compound("wf", "Root")
        c.task("a", "Stage").implementation(code="x").input(
            "main", "inp", from_input("wf", "main", "inp")
        ).up()
        c.output("done").object("out", from_output("a", "done", "out")).up()
        c.up()
        warnings = lint_script(b.build())
        assert any(w.code == "W008" and w.location == "Spare" for w in warnings)


class TestCliLint:
    def test_lint_command(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "s.wf"
        path.write_text(paper_order.SCRIPT_TEXT, encoding="utf-8")
        assert main(["lint", str(path)]) == 0  # warnings only: exit 0
        out = capsys.readouterr().out
        # legacy lint checks are clean; the static analyser adds the §3
        # "t2 and t3 can be performed concurrently" shared-object warning
        assert "W301" in out

    def test_lint_strict_fails_on_findings(self, tmp_path, capsys):
        from repro.cli import main

        text = """
        class Data;
        taskclass T { inputs { input main { } }; outputs { outcome ok { } } };
        task t of taskclass T { inputs { input main { } } };
        """
        path = tmp_path / "bad.wf"
        path.write_text(text, encoding="utf-8")
        assert main(["lint", str(path), "--strict"]) == 1
        out = capsys.readouterr().out
        assert "W002" in out  # missing code
