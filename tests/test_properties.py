"""Property-based tests (hypothesis) on the core invariants."""

import string

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.baselines import EcaWorkflow, PetriWorkflow
from repro.core import ScriptBuilder, from_input, from_output
from repro.core.schema import (
    GuardKind,
    InputObjectBinding,
    InputSetBinding,
    Source,
)
from repro.core.selection import (
    EventKind,
    InputObjectTracker,
    InputSetTracker,
    WorkflowEvent,
)
from repro.core.values import ObjectRef
from repro.engine import LocalEngine
from repro.lang import compile_script, format_script, parse
from repro.txn import ObjectStore, TransactionManager
from repro.txn.ids import ObjectId, TransactionId
from repro.txn.locks import LockManager, LockMode
from repro.txn import wal as wal_mod
from repro.txn.wal import WriteAheadLog, replay
from repro.workloads import random_dag

settings.register_profile(
    "repro", deadline=None, suppress_health_check=[HealthCheck.too_slow]
)
settings.load_profile("repro")

names = st.text(alphabet=string.ascii_lowercase, min_size=1, max_size=8)


# ---------------------------------------------------------------------------
# 1. Language: generated scripts round-trip through the formatter
# ---------------------------------------------------------------------------


@st.composite
def dag_scripts(draw):
    """Random pipeline/dag scripts built with the public builder API."""
    n = draw(st.integers(min_value=1, max_value=8))
    b = ScriptBuilder()
    b.object_class("Data")
    b.taskclass("Stage").input_set("main", inp="Data").outcome("done", out="Data")
    b.taskclass("Root").input_set("main", inp="Data").outcome("done", out="Data")
    root = b.compound("wf", "Root")
    for index in range(n):
        task = root.task(f"t{index + 1}", "Stage").implementation(code="stage")
        if index == 0:
            task.input("main", "inp", from_input("wf", "main", "inp"))
        else:
            deps = draw(
                st.lists(
                    st.integers(min_value=1, max_value=index),
                    min_size=1,
                    max_size=min(3, index),
                    unique=True,
                )
            )
            task.input("main", "inp", from_output(f"t{deps[0]}", "done", "out"))
            for dep in deps[1:]:
                task.notify("main", from_output(f"t{dep}", "done"))
        task.up()
    root.output("done").object("out", from_output(f"t{n}", "done", "out")).up()
    root.up()
    return b.build()


@given(dag_scripts())
def test_format_parse_roundtrip(script):
    text = format_script(script)
    again = parse(text)
    assert again.tasks == script.tasks
    assert again.taskclasses == script.taskclasses
    assert again.classes == script.classes


@given(dag_scripts())
def test_formatting_is_a_fixpoint(script):
    once = format_script(script)
    assert format_script(parse(once)) == once


@given(dag_scripts())
def test_generated_scripts_always_validate(script):
    compile_script(format_script(script))


# ---------------------------------------------------------------------------
# 2. Selection: tracker invariants under arbitrary event sequences
# ---------------------------------------------------------------------------


producers = st.sampled_from(["a", "b", "c"])
kinds = st.sampled_from(list(EventKind))
outputs = st.sampled_from(["done", "other", "main"])


@st.composite
def events(draw):
    producer = draw(producers)
    kind = draw(kinds)
    name = draw(outputs)
    carry = draw(st.booleans())
    objects = {"x": ObjectRef("Data", draw(st.integers(0, 99)))} if carry else {}
    return WorkflowEvent(producer, kind, name, objects)


BINDING = InputObjectBinding(
    "inp",
    (
        Source("a", "x", GuardKind.OUTPUT, "done"),
        Source("b", "x", GuardKind.OUTPUT, "done"),
        Source("c", "x", GuardKind.ANY, None),
    ),
)


@given(st.lists(events(), max_size=40))
def test_best_index_never_worsens(sequence):
    tracker = InputObjectTracker(BINDING)
    previous = None
    for event in sequence:
        tracker.offer(event)
        if tracker.best_index is not None:
            if previous is not None:
                assert tracker.best_index <= previous
            previous = tracker.best_index


@given(st.lists(events(), max_size=40))
def test_satisfaction_is_monotone(sequence):
    tracker = InputSetTracker(InputSetBinding("main", (BINDING,)))
    was_satisfied = False
    for event in sequence:
        tracker.offer(event)
        if was_satisfied:
            assert tracker.satisfied
        was_satisfied = tracker.satisfied


@given(st.lists(events(), max_size=40))
def test_replay_equals_online(sequence):
    online = InputObjectTracker(BINDING)
    for event in sequence:
        online.offer(event)
    replayed = InputObjectTracker(BINDING)
    for event in sequence:
        replayed.offer(event)
    assert online.best_index == replayed.best_index
    assert online.value == replayed.value


# ---------------------------------------------------------------------------
# 3. WAL: replay computes exactly the committed effects
# ---------------------------------------------------------------------------


@st.composite
def wal_histories(draw):
    """Random interleavings of BEGIN/UPDATE/COMMIT/ABORT over 3 txns/2 keys,
    with a crash (lose-unforced) at a random point."""
    ops = []
    txn_count = draw(st.integers(1, 3))
    for t in range(txn_count):
        updates = draw(st.integers(0, 3))
        terminal = draw(st.sampled_from(["commit", "abort", "none"]))
        ops.append((t, updates, terminal))
    force_each = draw(st.booleans())
    return ops, force_each


@given(wal_histories())
def test_wal_replay_matches_model(history):
    ops, force_each = history
    log = WriteAheadLog()
    model = {}
    for index, (t, updates, terminal) in enumerate(ops):
        tid = TransactionId(index + 1)
        log.append(wal_mod.BEGIN, tid)
        writes = {}
        for u in range(updates):
            key = f"k{u % 2}"
            value = f"v{index}.{u}"
            log.append(wal_mod.UPDATE, tid, ObjectId(key), value)
            writes[key] = value
        if terminal == "commit":
            log.append(wal_mod.COMMIT, tid)
            model.update(writes)
        elif terminal == "abort":
            log.append(wal_mod.ABORT, tid)
        if force_each:
            log.force()
    if not force_each:
        log.force()
    assert replay(log.durable_records()) == model


@given(st.integers(0, 10))
def test_store_crash_recover_idempotent(commits):
    store = ObjectStore("s")
    tm = TransactionManager("tm")
    for i in range(commits):
        with tm.begin() as txn:
            txn.write(store, "x", i)
    expected = store.snapshot()
    store.crash()
    first = store.snapshot()
    store.recover()
    assert store.snapshot() == first == expected


# ---------------------------------------------------------------------------
# 4. Locks: compatibility invariant under random operations
# ---------------------------------------------------------------------------


@given(
    st.lists(
        st.tuples(
            st.integers(1, 4),                       # txn
            st.integers(0, 2),                       # object
            st.sampled_from(list(LockMode)),         # mode
            st.booleans(),                           # release instead
        ),
        max_size=60,
    )
)
def test_lock_table_never_incompatible(operations):
    locks = LockManager()
    for txn_n, obj_n, mode, release in operations:
        txn = TransactionId(txn_n)
        if release:
            locks.release_all(txn)
        else:
            locks.try_acquire(txn, ObjectId(f"o{obj_n}"), mode)
        for obj in range(3):
            holders = locks.holders(ObjectId(f"o{obj}"))
            exclusives = [t for t, m in holders.items() if m is LockMode.EXCLUSIVE]
            if exclusives:
                assert len(holders) == 1


# ---------------------------------------------------------------------------
# 5. Engines: determinism and cross-engine agreement
# ---------------------------------------------------------------------------


@given(st.integers(1, 30), st.integers(0, 1000))
def test_local_engine_is_deterministic(n, seed):
    script, registry, root, inputs = random_dag(n, seed=seed)
    r1 = LocalEngine(registry).run(script, root, inputs=inputs)
    r2 = LocalEngine(registry).run(script, root, inputs=inputs)
    assert r1.outcome == r2.outcome
    assert [
        (e.producer_path, e.event.kind, e.event.name) for e in r1.log.entries
    ] == [(e.producer_path, e.event.kind, e.event.name) for e in r2.log.entries]


@given(st.integers(1, 15), st.integers(0, 500))
def test_engine_agrees_with_baselines_on_random_dags(n, seed):
    script, registry, root, inputs = random_dag(n, seed=seed)
    reference = LocalEngine(registry).run(script, root, inputs=inputs)
    eca = EcaWorkflow(script, root, registry).run(inputs)
    net = PetriWorkflow(script, root, registry).run(inputs)
    assert eca["outcome"] == reference.outcome
    assert net["outcome"] == reference.outcome
