"""Tests for instance migration between execution services (coordinator
failover via export/import of the durable journal)."""

import pytest

from repro.core.errors import ExecutionError
from repro.services import WorkflowSystem
from repro.workloads import paper_order


def make_system(**kwargs):
    system = WorkflowSystem(**kwargs)
    paper_order.default_registry(registry=system.registry)
    system.deploy("order", paper_order.SCRIPT_TEXT)
    return system


class TestExportImport:
    def test_finished_instance_round_trips(self):
        source = make_system(workers=2)
        iid = source.instantiate("order", paper_order.ROOT_TASK, {"order": "m-1"})
        result = source.run_until_terminal(iid)

        snapshot = source.execution_proxy().export_instance(iid)
        assert snapshot["instance"] == iid
        assert snapshot["meta"]["root_task"] == paper_order.ROOT_TASK
        assert len(snapshot["journal"]) >= 4  # one result per task

        target = make_system(workers=2)
        target.execution.import_instance(snapshot)
        adopted = target.execution.result(iid)
        assert adopted["outcome"] == result["outcome"]
        assert adopted["objects"] == result["objects"]

    def test_midflight_instance_completes_on_new_coordinator(self):
        source = make_system(workers=2)
        iid = source.instantiate("order", paper_order.ROOT_TASK, {"order": "m-2"})
        source.clock.advance(3.0)  # partial progress
        snapshot = source.execution_proxy().export_instance(iid)

        # the old coordinator "goes away for good"
        source.execution_node.crash()

        target = make_system(workers=2)
        target.execution.import_instance(snapshot)
        result = target.run_until_terminal(iid, max_time=10_000)
        assert result["status"] == "completed"
        assert result["outcome"] == "orderCompleted"

    def test_import_preserves_progress(self):
        source = make_system(workers=2)
        iid = source.instantiate("order", paper_order.ROOT_TASK, {"order": "m-3"})
        source.clock.advance(3.0)
        done_before = len(source.execution_proxy().export_instance(iid)["journal"])

        target = make_system(workers=2)
        target.execution.import_instance(
            source.execution_proxy().export_instance(iid)
        )
        # the adopted instance re-executes nothing that was journaled
        runtime = target.execution.runtimes[iid]
        assert len(runtime.journal_keys) >= done_before
        target.run_until_terminal(iid, max_time=10_000)
        # total executions across both coordinators' workers == 4 distinct
        executed = set()
        for system in (source, target):
            for worker in system.workers:
                executed.update((p, e) for _i, p, e in worker.executed)
        assert len(executed) == 4

    def test_duplicate_import_refused(self):
        source = make_system(workers=1)
        iid = source.instantiate("order", paper_order.ROOT_TASK, {"order": "m-4"})
        source.run_until_terminal(iid)
        snapshot = source.execution_proxy().export_instance(iid)
        with pytest.raises(Exception):
            source.execution.import_instance(snapshot)

    def test_imported_instance_survives_new_coordinator_crash(self):
        source = make_system(workers=1)
        iid = source.instantiate("order", paper_order.ROOT_TASK, {"order": "m-5"})
        source.clock.advance(2.0)
        snapshot = source.execution_proxy().export_instance(iid)

        target = make_system(workers=2)
        target.execution.import_instance(snapshot)
        target.execution_node.crash()
        target.execution_node.recover()  # replays from ITS OWN store now
        result = target.run_until_terminal(iid, max_time=10_000)
        assert result["status"] == "completed"
