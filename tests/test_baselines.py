"""Tests for the ECA and Petri-net baselines: agreement with the reference
engine on every path of the paper's (acyclic) applications, plus the
limitations experiment E12 reports."""

import pytest

from repro.baselines import EcaWorkflow, PetriWorkflow
from repro.core.errors import ExecutionError
from repro.engine import LocalEngine
from repro.workloads import chain, diamond, paper_order, paper_service_impact, paper_trip


ORDER_CASES = [
    dict(),
    dict(authorise=False),
    dict(in_stock=False),
    dict(dispatch_ok=False),
]


class TestAgreementWithEngine:
    @pytest.mark.parametrize("case", ORDER_CASES)
    def test_eca_matches_engine_on_order_app(self, case):
        script = paper_order.build()
        reference = LocalEngine(paper_order.default_registry(**case)).run(
            script, inputs={"order": "o"}
        )
        eca = EcaWorkflow(
            script, paper_order.ROOT_TASK, paper_order.default_registry(**case)
        ).run({"order": "o"})
        assert eca["outcome"] == reference.outcome

    @pytest.mark.parametrize("case", ORDER_CASES)
    def test_petrinet_matches_engine_on_order_app(self, case):
        script = paper_order.build()
        reference = LocalEngine(paper_order.default_registry(**case)).run(
            script, inputs={"order": "o"}
        )
        net = PetriWorkflow(
            script, paper_order.ROOT_TASK, paper_order.default_registry(**case)
        ).run({"order": "o"})
        assert net["outcome"] == reference.outcome

    @pytest.mark.parametrize("resolvable", [True, False])
    def test_baselines_match_on_service_impact(self, resolvable):
        script = paper_service_impact.build()
        make = lambda: paper_service_impact.default_registry(resolvable=resolvable)
        reference = LocalEngine(make()).run(script, inputs={"alarmsSource": "a"})
        root = paper_service_impact.ROOT_TASK
        assert EcaWorkflow(script, root, make()).run({"alarmsSource": "a"})[
            "outcome"
        ] == reference.outcome
        assert PetriWorkflow(script, root, make()).run({"alarmsSource": "a"})[
            "outcome"
        ] == reference.outcome

    def test_baselines_match_on_synthetic_chain(self):
        script, registry, root, inputs = chain(10)
        reference = LocalEngine(registry).run(script, root, inputs=inputs)
        assert (
            EcaWorkflow(script, root, registry).run(inputs)["objects"]["out"]
            == reference.value("out")
        )
        assert (
            PetriWorkflow(script, root, registry).run(inputs)["objects"]["out"]
            == reference.value("out")
        )

    def test_baselines_match_on_diamond(self):
        script, registry, root, inputs = diamond()
        reference = LocalEngine(registry).run(script, root, inputs=inputs)
        assert (
            EcaWorkflow(script, root, registry).run(inputs)["outcome"]
            == reference.outcome
        )
        assert (
            PetriWorkflow(script, root, registry).run(inputs)["outcome"]
            == reference.outcome
        )


class TestBaselineLimitations:
    def test_eca_rejects_repeat_outcomes(self):
        # E12 data point: rule encodings cannot express the trip app's loop
        script = paper_trip.build()
        with pytest.raises(ExecutionError):
            EcaWorkflow(script, paper_trip.ROOT_TASK, paper_trip.default_registry())

    def test_petrinet_rejects_repeat_outcomes(self):
        script = paper_trip.build()
        with pytest.raises(ExecutionError):
            PetriWorkflow(script, paper_trip.ROOT_TASK, paper_trip.default_registry())


class TestSpecificationSize:
    def test_rule_count_grows_with_tasks_and_outputs(self):
        script = paper_order.build()
        eca = EcaWorkflow(script, paper_order.ROOT_TASK, paper_order.default_registry())
        # one rule per (task, input set) + one per compound output mapping
        assert eca.rule_count == 4 + 2

    def test_net_size_reported(self):
        script = paper_order.build()
        net = PetriWorkflow(script, paper_order.ROOT_TASK, paper_order.default_registry())
        assert net.transition_count == 6
        assert net.place_count >= 8  # output places are added as tokens land

    def test_firings_bounded_by_transitions(self):
        script = paper_order.build()
        net = PetriWorkflow(script, paper_order.ROOT_TASK, paper_order.default_registry())
        result = net.run({"order": "o"})
        assert result["firings"] <= net.transition_count


class TestEcaMechanics:
    def test_rule_engine_reaches_fixpoint(self):
        from repro.baselines import Rule, RuleEngine

        engine = RuleEngine(
            [
                Rule(
                    "second",
                    lambda m: {} if m.holds(("f", "a")) else None,
                    lambda m, b: m.assert_fact(("f", "b")),
                ),
                Rule(
                    "first",
                    lambda m: {},
                    lambda m, b: m.assert_fact(("f", "a")),
                ),
            ]
        )
        engine.run()
        assert engine.memory.holds(("f", "b"))
        assert engine.firings == 2

    def test_rules_fire_once(self):
        from repro.baselines import Rule, RuleEngine

        count = []
        engine = RuleEngine(
            [Rule("r", lambda m: {}, lambda m, b: count.append(1))]
        )
        engine.run()
        assert count == [1]
