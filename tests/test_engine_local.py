"""Tests for the local engine: scheduling, marks, repeats, retries, aborts."""

import pytest

from repro.core import ScriptBuilder, from_input, from_output, from_task
from repro.core.selection import EventKind
from repro.engine import (
    ImplementationRegistry,
    LocalEngine,
    WorkflowStatus,
    abort,
    outcome,
    repeat,
)
from tests.conftest import build_pipeline_script, stage_registry


class TestBasicExecution:
    def test_pipeline_runs_in_order(self):
        script = build_pipeline_script(4)
        result = LocalEngine(stage_registry()).run(script, inputs={"inp": "x"})
        assert result.completed
        assert result.value("out") == "x++++"
        order = result.log.started_order()
        assert order == [
            "pipeline",
            "pipeline/t1",
            "pipeline/t2",
            "pipeline/t3",
            "pipeline/t4",
        ]

    def test_dataflow_carries_provenance(self):
        script = build_pipeline_script(1)
        result = LocalEngine(stage_registry()).run(script, inputs={"inp": "x"})
        ref = result.objects["out"]
        assert ref.produced_by == "pipeline"
        assert ref.class_name == "Data"

    def test_missing_root_input_rejected(self):
        script = build_pipeline_script(1)
        with pytest.raises(Exception):
            LocalEngine(stage_registry()).run(script, inputs={})

    def test_unknown_root_input_rejected(self):
        script = build_pipeline_script(1)
        with pytest.raises(Exception):
            LocalEngine(stage_registry()).run(script, inputs={"inp": "x", "bogus": 1})

    def test_missing_binding_fails_task_then_workflow(self):
        script = build_pipeline_script(1)
        result = LocalEngine(ImplementationRegistry()).run(script, inputs={"inp": "x"})
        assert result.status is WorkflowStatus.FAILED

    def test_run_requires_unique_root_or_name(self):
        b = ScriptBuilder()
        b.taskclass("T").outcome("ok")
        b.task("a", "T").implementation(code="c").up()
        b.task("b", "T").implementation(code="c").up()
        script = b.build()
        reg = ImplementationRegistry().register("c", lambda ctx: outcome("ok"))
        with pytest.raises(Exception):
            LocalEngine(reg).run(script)
        assert LocalEngine(reg).run(script, "a").completed


class TestOutcomeValidation:
    def make_script(self):
        b = ScriptBuilder()
        b.object_class("Data")
        b.taskclass("T").input_set("main").outcome("ok", out="Data")
        b.taskclass("Root").input_set("main").outcome("done", out="Data")
        c = b.compound("wf", "Root")
        c.task("t", "T").implementation(code="impl").notify(
            "main", from_input("wf", "main")
        ).up()
        c.output("done").object("out", from_output("t", "ok", "out")).up()
        c.up()
        return b.build()

    def test_undeclared_outcome_fails(self):
        reg = ImplementationRegistry().register("impl", lambda ctx: outcome("ghost"))
        result = LocalEngine(reg, default_retries=0).run(self.make_script(), inputs={})
        assert result.status is WorkflowStatus.FAILED

    def test_missing_output_object_fails(self):
        reg = ImplementationRegistry().register("impl", lambda ctx: outcome("ok"))
        result = LocalEngine(reg, default_retries=0).run(self.make_script(), inputs={})
        assert result.status is WorkflowStatus.FAILED

    def test_extra_output_object_fails(self):
        reg = ImplementationRegistry().register(
            "impl", lambda ctx: outcome("ok", out=1, extra=2)
        )
        result = LocalEngine(reg, default_retries=0).run(self.make_script(), inputs={})
        assert result.status is WorkflowStatus.FAILED

    def test_non_taskresult_return_fails(self):
        reg = ImplementationRegistry().register("impl", lambda ctx: "oops")
        result = LocalEngine(reg, default_retries=0).run(self.make_script(), inputs={})
        assert result.status is WorkflowStatus.FAILED


class TestSystemRetries:
    def flaky_script(self, retries=None):
        b = ScriptBuilder()
        b.object_class("Data")
        b.taskclass("T").input_set("main").outcome("ok", out="Data")
        b.taskclass("Root").input_set("main").outcome("done", out="Data")
        c = b.compound("wf", "Root")
        task = c.task("t", "T").notify("main", from_input("wf", "main"))
        if retries is None:
            task.implementation(code="impl")
        else:
            task.implementation(code="impl", retries=str(retries))
        task.up()
        c.output("done").object("out", from_output("t", "ok", "out")).up()
        c.up()
        return b.build()

    def test_transient_failure_retried_silently(self):
        calls = []

        def impl(ctx):
            calls.append(ctx.attempt)
            if len(calls) < 3:
                raise RuntimeError("transient")
            return outcome("ok", out="v")

        reg = ImplementationRegistry().register("impl", impl)
        result = LocalEngine(reg).run(self.flaky_script(), inputs={})
        assert result.completed
        assert calls == [1, 2, 3]  # attempt counter visible to implementations
        # no abort events leaked into the log
        assert result.log.of_kind(EventKind.ABORT) == []

    def test_retry_budget_from_implementation_property(self):
        calls = []

        def impl(ctx):
            calls.append(1)
            raise RuntimeError("always")

        reg = ImplementationRegistry().register("impl", impl)
        result = LocalEngine(reg).run(self.flaky_script(retries=1), inputs={})
        assert result.status is WorkflowStatus.FAILED
        assert len(calls) == 2  # initial + 1 retry

    def test_exhausted_retries_surface_as_abort_outcome_when_declared(self):
        b = ScriptBuilder()
        b.object_class("Data")
        b.taskclass("T").input_set("main").outcome("ok").abort_outcome("failed")
        b.taskclass("Root").input_set("main").outcome("done").outcome("gaveUp")
        c = b.compound("wf", "Root")
        c.task("t", "T").implementation(code="impl", retries="1").notify(
            "main", from_input("wf", "main")
        ).up()
        c.output("done").notify(from_output("t", "ok")).up()
        c.output("gaveUp").notify(from_output("t", "failed")).up()
        c.up()
        reg = ImplementationRegistry().register(
            "impl", lambda ctx: (_ for _ in ()).throw(RuntimeError("die"))
        )
        result = LocalEngine(reg).run(b.build(), inputs={})
        assert result.completed
        assert result.outcome == "gaveUp"


class TestMarks:
    def mark_script(self):
        b = ScriptBuilder()
        b.object_class("Data")
        b.taskclass("Producer").input_set("main").mark("early", preview="Data").outcome(
            "done", out="Data"
        )
        b.taskclass("Consumer").input_set("main", inp="Data").outcome("done", out="Data")
        b.taskclass("Root").input_set("main").outcome("done", out="Data")
        c = b.compound("wf", "Root")
        c.task("producer", "Producer").implementation(code="producer").notify(
            "main", from_input("wf", "main")
        ).up()
        c.task("consumer", "Consumer").implementation(code="consumer").input(
            "main", "inp", from_output("producer", "early", "preview")
        ).up()
        c.output("done").object("out", from_output("consumer", "done", "out")).up()
        c.up()
        return b.build()

    def test_mark_releases_early_and_downstream_consumes_it(self):
        seen = []

        def producer(ctx):
            ctx.mark("early", preview="sneak")
            seen.append("after-mark")
            return outcome("done", out="final")

        reg = ImplementationRegistry()
        reg.register("producer", producer)
        reg.register("consumer", lambda ctx: outcome("done", out=ctx.value("inp")))
        result = LocalEngine(reg).run(self.mark_script(), inputs={})
        assert result.completed
        assert result.value("out") == "sneak"

    def test_mark_of_undeclared_name_is_failure(self):
        def producer(ctx):
            ctx.mark("ghost", preview="x")
            return outcome("done", out="y")

        reg = ImplementationRegistry()
        reg.register("producer", producer)
        reg.register("consumer", lambda ctx: outcome("done", out="z"))
        result = LocalEngine(reg, default_retries=0).run(self.mark_script(), inputs={})
        assert result.status is WorkflowStatus.FAILED

    def test_failure_after_mark_fails_workflow(self):
        # a task that released results can no longer be silently retried
        def producer(ctx):
            ctx.mark("early", preview="x")
            raise RuntimeError("too late")

        reg = ImplementationRegistry()
        reg.register("producer", producer)
        reg.register("consumer", lambda ctx: outcome("done", out=ctx.value("inp")))
        result = LocalEngine(reg).run(self.mark_script(), inputs={})
        assert result.status is WorkflowStatus.FAILED


class TestRepeats:
    def repeat_script(self):
        b = ScriptBuilder()
        b.object_class("Data")
        (
            b.taskclass("Looper")
            .input_set("main", inp="Data")
            .outcome("done", out="Data")
            .repeat_outcome("again", carry="Data")
        )
        b.taskclass("Root").input_set("main", inp="Data").outcome("done", out="Data")
        c = b.compound("wf", "Root")
        c.task("loop", "Looper").implementation(code="loop").input(
            "main",
            "inp",
            from_output("loop", "again", "carry"),
            from_input("wf", "main", "inp"),
        ).up()
        c.output("done").object("out", from_output("loop", "done", "out")).up()
        c.up()
        return b.build()

    def test_repeat_feeds_own_input(self):
        def loop(ctx):
            value = ctx.value("inp")
            if ctx.repeats < 3:
                return repeat("again", carry=f"{value}+")
            return outcome("done", out=value)

        reg = ImplementationRegistry().register("loop", loop)
        result = LocalEngine(reg).run(self.repeat_script(), inputs={"inp": "s"})
        assert result.completed
        # the repeat source is listed FIRST, so after the first repeat the
        # carried value takes precedence over the root input
        assert result.value("out") == "s+++"

    def test_runaway_repeat_bounded(self):
        reg = ImplementationRegistry().register(
            "loop", lambda ctx: repeat("again", carry="x")
        )
        result = LocalEngine(reg, max_repeats=10).run(
            self.repeat_script(), inputs={"inp": "s"}
        )
        assert result.status is WorkflowStatus.FAILED
        assert "max_repeats" in result.error


class TestAbortsAndStalls:
    def test_application_abort_propagates(self):
        b = ScriptBuilder()
        b.object_class("Data")
        b.taskclass("T").input_set("main").outcome("ok").abort_outcome("nope")
        b.taskclass("Root").input_set("main").outcome("done").outcome("cancelled")
        c = b.compound("wf", "Root")
        c.task("t", "T").implementation(code="impl").notify(
            "main", from_input("wf", "main")
        ).up()
        c.output("done").notify(from_output("t", "ok")).up()
        c.output("cancelled").notify(from_output("t", "nope")).up()
        c.up()
        reg = ImplementationRegistry().register("impl", lambda ctx: abort("nope"))
        result = LocalEngine(reg).run(b.build(), inputs={})
        assert result.outcome == "cancelled"

    def test_root_abort_outcome_gives_aborted_status(self):
        b = ScriptBuilder()
        b.taskclass("T").input_set("main").outcome("ok").abort_outcome("nope")
        b.taskclass("Root").input_set("main").outcome("done").abort_outcome("rootFail")
        c = b.compound("wf", "Root")
        c.task("t", "T").implementation(code="impl").notify(
            "main", from_input("wf", "main")
        ).up()
        c.output("done").notify(from_output("t", "ok")).up()
        c.output("rootFail").notify(from_output("t", "nope")).up()
        c.up()
        reg = ImplementationRegistry().register("impl", lambda ctx: abort("nope"))
        result = LocalEngine(reg).run(b.build(), inputs={})
        assert result.status is WorkflowStatus.ABORTED
        assert result.outcome == "rootFail"

    def test_unsatisfiable_dependencies_stall(self):
        b = ScriptBuilder()
        b.object_class("Data")
        b.taskclass("T").input_set("main", inp="Data").outcome("ok", out="Data")
        b.taskclass("Root").input_set("main").outcome("done", out="Data")
        c = b.compound("wf", "Root")
        c.task("a", "T").implementation(code="impl").input(
            "main", "inp", from_output("b", "ok", "out")
        ).up()
        c.task("b", "T").implementation(code="impl").input(
            "main", "inp", from_output("a", "ok", "out")
        ).up()
        c.output("done").object("out", from_output("a", "ok", "out")).up()
        c.up()
        reg = ImplementationRegistry().register(
            "impl", lambda ctx: outcome("ok", out="x")
        )
        result = LocalEngine(reg).run(b.build(), inputs={})
        assert result.status is WorkflowStatus.STALLED

    def test_force_abort_from_wait(self):
        b = ScriptBuilder()
        b.object_class("Data")
        b.taskclass("T").input_set("main").outcome("ok").abort_outcome("timedOut")
        b.taskclass("Root").input_set("main").outcome("done").outcome("expired")
        c = b.compound("wf", "Root")
        # a waiting task whose dependency never fires (self-notification)
        waiting = c.task("t", "T").implementation(code="impl")
        waiting.notify("main", from_output("t", "ok"))
        waiting.up()
        c.output("done").notify(from_output("t", "ok")).up()
        c.output("expired").notify(from_output("t", "timedOut")).up()
        c.up()
        script = b.build()
        reg = ImplementationRegistry().register("impl", lambda ctx: outcome("ok"))
        engine = LocalEngine(reg)
        wf = engine.workflow(script)
        wf.start({})
        wf.run_to_completion()
        assert wf.status is WorkflowStatus.STALLED
        wf.force_abort("wf/t")  # timer/user abort (Fig. 3 abort-from-wait)
        result = wf.run_to_completion()
        assert result.completed
        assert result.outcome == "expired"


class TestPriorities:
    def test_higher_priority_task_starts_first(self):
        b = ScriptBuilder()
        b.taskclass("T").input_set("main").outcome("ok")
        b.taskclass("Root").input_set("main").outcome("done")
        c = b.compound("wf", "Root")
        c.task("slow", "T").implementation(code="impl", priority="1").notify(
            "main", from_input("wf", "main")
        ).up()
        c.task("fast", "T").implementation(code="impl", priority="9").notify(
            "main", from_input("wf", "main")
        ).up()
        c.output("done").notify(from_output("slow", "ok")).up()
        c.up()
        reg = ImplementationRegistry().register("impl", lambda ctx: outcome("ok"))
        result = LocalEngine(reg).run(b.build(), inputs={})
        order = result.log.started_order()
        assert order.index("wf/fast") < order.index("wf/slow")
