"""Unit tests for the ORB: marshalling, naming, invocation, failures."""

import pytest

from repro.core.values import ObjectRef
from repro.net import EventClock, LatencyModel, Network, Node
from repro.orb import (
    BadInterface,
    CommFailure,
    Interface,
    MarshalError,
    ObjectBroker,
    ObjectNotFound,
    Proxy,
    marshal,
)


class Calculator:
    def __init__(self):
        self.calls = 0

    def add(self, a, b):
        self.calls += 1
        return a + b

    def fail(self):
        raise ValueError("server-side")

    def echo(self, value):
        return value


CALC = Interface("Calculator", ("add", "fail", "echo"))


@pytest.fixture
def world():
    clock = EventClock()
    net = Network(clock, LatencyModel(1.0))
    broker = ObjectBroker(clock, net)
    server = Node("server", clock, net)
    client = Node("client", clock, net)
    servant = Calculator()
    broker.register("calc", CALC, servant, server)
    return clock, net, broker, server, client, servant


class TestMarshal:
    def test_primitives_pass_through(self):
        for value in (None, True, 3, 2.5, "s", b"b"):
            assert marshal(value) == value

    def test_containers_are_copied(self):
        original = {"k": [1, 2, {"n": (3, 4)}]}
        copy = marshal(original)
        assert copy == original
        copy["k"].append(99)
        assert len(original["k"]) == 3  # the original is untouched

    def test_sets_supported(self):
        assert marshal(frozenset({1, 2})) == frozenset({1, 2})

    def test_object_ref_is_transferable(self):
        ref = ObjectRef("Order", "o-1", "a/b", "done")
        copy = marshal(ref)
        assert copy == ref

    def test_arbitrary_object_rejected(self):
        class Opaque:
            pass

        with pytest.raises(MarshalError):
            marshal(Opaque())

    def test_exceptions_cross_the_wire(self):
        exc = marshal(ValueError("boom"))
        assert isinstance(exc, ValueError)

    def test_cycle_detected(self):
        loop = []
        loop.append(loop)
        with pytest.raises(MarshalError):
            marshal(loop)


class TestInvocation:
    def test_basic_invocation(self, world):
        clock, net, broker, server, client, servant = world
        assert broker.invoke(client, "calc", "add", 2, 3) == 5
        assert servant.calls == 1

    def test_unknown_object(self, world):
        clock, net, broker, server, client, servant = world
        with pytest.raises(ObjectNotFound):
            broker.invoke(client, "calc2", "add", 1, 2)

    def test_unknown_operation(self, world):
        clock, net, broker, server, client, servant = world
        with pytest.raises(BadInterface):
            broker.invoke(client, "calc", "subtract", 1, 2)

    def test_servant_must_implement_interface(self, world):
        clock, net, broker, server, client, servant = world
        with pytest.raises(BadInterface):
            broker.register("bad", CALC, object(), server)

    def test_server_exception_reaches_caller(self, world):
        clock, net, broker, server, client, servant = world
        with pytest.raises(ValueError):
            broker.invoke(client, "calc", "fail")

    def test_arguments_marshalled_not_shared(self, world):
        clock, net, broker, server, client, servant = world
        payload = {"inner": [1]}
        result = broker.invoke(client, "calc", "echo", payload)
        result["inner"].append(2)
        assert payload["inner"] == [1]

    def test_crashed_target_raises_comm_failure(self, world):
        clock, net, broker, server, client, servant = world
        server.crash()
        with pytest.raises(CommFailure):
            broker.invoke(client, "calc", "add", 1, 2)

    def test_partition_raises_comm_failure(self, world):
        clock, net, broker, server, client, servant = world
        net.partition({"client"}, {"server"})
        with pytest.raises(CommFailure):
            broker.invoke(client, "calc", "add", 1, 2)

    def test_same_node_call_bypasses_failure_checks(self, world):
        clock, net, broker, server, client, servant = world
        # servant co-located with caller: no marshalling boundary, no RTT
        assert broker.invoke(server, "calc", "add", 1, 1) == 2
        assert broker.stats.simulated_rtt == 0.0

    def test_remote_call_accumulates_rtt(self, world):
        clock, net, broker, server, client, servant = world
        broker.invoke(client, "calc", "add", 1, 1)
        broker.invoke(client, "calc", "add", 1, 1)
        assert broker.stats.simulated_rtt == 2 * broker.rtt


class TestDeferredInvocation:
    def test_reply_arrives_later(self, world):
        clock, net, broker, server, client, servant = world
        replies = []
        broker.invoke_deferred(client, "calc", "add", (4, 5), on_reply=replies.append)
        assert replies == []
        clock.run()
        assert replies == [9]

    def test_error_callback(self, world):
        clock, net, broker, server, client, servant = world
        errors = []
        broker.invoke_deferred(client, "calc", "fail", (), on_error=errors.append)
        clock.run()
        assert len(errors) == 1 and isinstance(errors[0], ValueError)

    def test_lost_request_never_calls_back(self, world):
        clock, net, broker, server, client, servant = world
        net.loss_rate = 0.999999
        replies = []
        broker.invoke_deferred(client, "calc", "add", (1, 1), on_reply=replies.append)
        clock.run()
        assert replies == []

    def test_target_crash_drops_request(self, world):
        clock, net, broker, server, client, servant = world
        replies = []
        broker.invoke_deferred(client, "calc", "add", (1, 1), on_reply=replies.append)
        server.crash()
        clock.run()
        assert replies == [] and servant.calls == 0

    def test_caller_crash_drops_reply(self, world):
        clock, net, broker, server, client, servant = world
        replies = []
        broker.invoke_deferred(client, "calc", "add", (1, 1), on_reply=replies.append)
        clock.call_at(1.5, client.crash)  # after request delivery, before reply
        clock.run()
        assert servant.calls == 1
        assert replies == []


class TestProxy:
    def test_proxy_forwards_calls(self, world):
        clock, net, broker, server, client, servant = world
        calc = Proxy(broker, client, "calc")
        assert calc.add(10, 20) == 30

    def test_proxy_rejects_unknown_operation(self, world):
        clock, net, broker, server, client, servant = world
        calc = Proxy(broker, client, "calc")
        with pytest.raises(BadInterface):
            calc.multiply
