"""Unit tests for whole-script semantic validation (repository-side checks)."""

import pytest

from repro.core import (
    ScriptBuilder,
    ValidationReport,
    from_input,
    from_output,
    from_task,
    validate_script,
)
from repro.core.schema import (
    GuardKind,
    InputObjectBinding,
    InputSetBinding,
    NotificationBinding,
    Source,
    TaskDecl,
)


def base_builder():
    b = ScriptBuilder()
    b.object_classes("Data", "Other")
    b.taskclass("Stage").input_set("main", inp="Data").outcome("done", out="Data")
    b.taskclass("Root").input_set("main", inp="Data").outcome("done", out="Data")
    return b


def errors_of(builder):
    return [str(e) for e in validate_script(builder.build(validate=False))]


class TestHappyPath:
    def test_valid_script_has_no_errors(self):
        b = base_builder()
        c = b.compound("wf", "Root")
        c.task("t1", "Stage").implementation(code="x").input(
            "main", "inp", from_input("wf", "main", "inp")
        ).up()
        c.output("done").object("out", from_output("t1", "done", "out")).up()
        c.up()
        assert errors_of(b) == []


class TestNameResolution:
    def test_unknown_taskclass(self):
        b = base_builder()
        b.task("t", "Ghost").up()
        assert any("unknown taskclass 'Ghost'" in e for e in errors_of(b))

    def test_unknown_source_task(self):
        b = base_builder()
        c = b.compound("wf", "Root")
        c.task("t1", "Stage").input(
            "main", "inp", from_output("phantom", "done", "out")
        ).up()
        c.output("done").object("out", from_output("t1", "done", "out")).up()
        c.up()
        assert any("unknown task 'phantom'" in e for e in errors_of(b))

    def test_unknown_output_on_producer(self):
        b = base_builder()
        c = b.compound("wf", "Root")
        c.task("t1", "Stage").input("main", "inp", from_input("wf", "main", "inp")).up()
        c.task("t2", "Stage").input(
            "main", "inp", from_output("t1", "ghostOutcome", "out")
        ).up()
        c.output("done").object("out", from_output("t2", "done", "out")).up()
        c.up()
        assert any("no output 'ghostOutcome'" in e for e in errors_of(b))

    def test_unknown_input_set_on_producer(self):
        b = base_builder()
        c = b.compound("wf", "Root")
        c.task("t1", "Stage").input("main", "inp", from_input("wf", "ghost", "inp")).up()
        c.output("done").object("out", from_output("t1", "done", "out")).up()
        c.up()
        assert any("no input set 'ghost'" in e for e in errors_of(b))

    def test_output_missing_object(self):
        b = base_builder()
        c = b.compound("wf", "Root")
        c.task("t1", "Stage").input("main", "inp", from_input("wf", "main", "inp")).up()
        c.task("t2", "Stage").input(
            "main", "inp", from_output("t1", "done", "missing")
        ).up()
        c.output("done").object("out", from_output("t2", "done", "out")).up()
        c.up()
        assert any("carries no object 'missing'" in e for e in errors_of(b))

    def test_undeclared_object_class(self):
        b = ScriptBuilder()
        b.taskclass("T").input_set("main", x="Mystery").outcome("done")
        assert any("undeclared class 'Mystery'" in e for e in errors_of(b))


class TestTypeChecking:
    def test_class_mismatch_detected(self):
        b = base_builder()
        b.taskclass("OtherStage").input_set("main", inp="Other").outcome(
            "done", out="Other"
        )
        c = b.compound("wf", "Root")
        c.task("t1", "OtherStage").input(
            "main", "inp", from_input("wf", "main", "inp")  # Data -> Other mismatch
        ).up()
        c.output("done").notify(from_output("t1", "done")).up()
        c.up()
        assert any("class mismatch" in e for e in errors_of(b))

    def test_unguarded_source_requires_carrying_outcome(self):
        b = base_builder()
        c = b.compound("wf", "Root")
        c.task("t1", "Stage").input("main", "inp", from_input("wf", "main", "inp")).up()
        c.task("t2", "Stage").input("main", "inp", from_task("t1", "nonexistent")).up()
        c.output("done").object("out", from_output("t2", "done", "out")).up()
        c.up()
        assert any("no outcome/mark of 't1'" in e for e in errors_of(b))


class TestInputSetCoverage:
    def test_missing_object_binding(self):
        b = base_builder()
        decl = TaskDecl("t", "Stage", input_sets=(InputSetBinding("main"),))
        b.script.add_task(decl)
        assert any("does not bind object 'inp'" in e for e in errors_of(b))

    def test_unknown_object_binding(self):
        b = base_builder()
        decl = TaskDecl(
            "t",
            "Stage",
            input_sets=(
                InputSetBinding(
                    "main",
                    (
                        InputObjectBinding(
                            "inp", (Source("t", "out", GuardKind.OUTPUT, "done"),)
                        ),
                        InputObjectBinding(
                            "extra", (Source("t", "out", GuardKind.OUTPUT, "done"),)
                        ),
                    ),
                ),
            ),
        )
        b.script.add_task(decl)
        assert any("binds unknown object 'extra'" in e for e in errors_of(b))

    def test_unknown_input_set_name(self):
        b = base_builder()
        decl = TaskDecl("t", "Stage", input_sets=(InputSetBinding("ghost"),))
        b.script.add_task(decl)
        assert any("has no input set 'ghost'" in e for e in errors_of(b))


class TestCompoundOutputs:
    def test_unmapped_output_with_objects_flagged(self):
        b = base_builder()
        c = b.compound("wf", "Root")
        c.task("t1", "Stage").input("main", "inp", from_input("wf", "main", "inp")).up()
        # Root's `done` output carries `out` but gets no mapping at all
        c.up()
        assert any("does not map output 'done'" in e for e in errors_of(b))

    def test_empty_output_mapping_flagged(self):
        b = base_builder()
        b.taskclass("Bare").outcome("done")
        b.taskclass("Top").input_set("main", inp="Data").outcome("finished")
        c = b.compound("wf", "Top")
        c.task("t1", "Bare").up()
        c.output("finished").up()
        c.up()
        assert any("empty mapping" in e for e in errors_of(b))

    def test_mapping_for_unknown_output_flagged(self):
        b = base_builder()
        c = b.compound("wf", "Root")
        c.task("t1", "Stage").input("main", "inp", from_input("wf", "main", "inp")).up()
        c.output("done").object("out", from_output("t1", "done", "out")).up()
        c.output("bogus").notify(from_output("t1", "done")).up()
        c.up()
        assert any("unknown output 'bogus'" in e for e in errors_of(b))


class TestRepeatPrivacy:
    def test_object_from_anothers_repeat_rejected(self):
        # §4.2: repeat objects are not usable by other tasks as input
        b = ScriptBuilder()
        b.object_class("Data")
        b.taskclass("Looper").input_set("main", inp="Data").outcome(
            "done", out="Data"
        ).repeat_outcome("again", carry="Data")
        b.taskclass("Root").input_set("main", inp="Data").outcome("done", out="Data")
        c = b.compound("wf", "Root")
        c.task("loop", "Looper").input("main", "inp", from_input("wf", "main", "inp")).up()
        c.task("thief", "Looper").input(
            "main", "inp", from_output("loop", "again", "carry")
        ).up()
        c.output("done").object("out", from_output("loop", "done", "out")).up()
        c.up()
        assert any("repeat output" in e for e in errors_of(b))

    def test_self_repeat_reference_allowed(self):
        b = ScriptBuilder()
        b.object_class("Data")
        b.taskclass("Looper").input_set("main", inp="Data").outcome(
            "done", out="Data"
        ).repeat_outcome("again", carry="Data")
        b.taskclass("Root").input_set("main", inp="Data").outcome("done", out="Data")
        c = b.compound("wf", "Root")
        c.task("loop", "Looper").input(
            "main",
            "inp",
            from_input("wf", "main", "inp"),
            from_output("loop", "again", "carry"),
        ).up()
        c.output("done").object("out", from_output("loop", "done", "out")).up()
        c.up()
        assert errors_of(b) == []


class TestValidationReport:
    def test_check_raises_aggregated_report(self):
        b = base_builder()
        b.task("t", "Ghost").up()
        b.task("u", "Phantom").up()
        with pytest.raises(ValidationReport) as info:
            b.build()
        assert len(info.value.errors) == 2
