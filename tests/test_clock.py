"""Unit tests for the discrete-event clock."""

import pytest

from repro.net.clock import EventClock, SimulationError


class TestScheduling:
    def test_starts_at_zero(self):
        assert EventClock().now == 0.0

    def test_custom_start(self):
        assert EventClock(start=5.0).now == 5.0

    def test_call_at_runs_at_time(self):
        clock = EventClock()
        seen = []
        clock.call_at(3.0, lambda: seen.append(clock.now))
        clock.run()
        assert seen == [3.0]

    def test_call_after_is_relative(self):
        clock = EventClock(start=10.0)
        seen = []
        clock.call_after(2.5, lambda: seen.append(clock.now))
        clock.run()
        assert seen == [12.5]

    def test_events_run_in_time_order(self):
        clock = EventClock()
        seen = []
        clock.call_at(5.0, lambda: seen.append("b"))
        clock.call_at(1.0, lambda: seen.append("a"))
        clock.call_at(9.0, lambda: seen.append("c"))
        clock.run()
        assert seen == ["a", "b", "c"]

    def test_same_time_events_run_in_schedule_order(self):
        clock = EventClock()
        seen = []
        for label in "abcd":
            clock.call_at(1.0, lambda l=label: seen.append(l))
        clock.run()
        assert seen == ["a", "b", "c", "d"]

    def test_priority_breaks_ties(self):
        clock = EventClock()
        seen = []
        clock.call_at(1.0, lambda: seen.append("low"), priority=1)
        clock.call_at(1.0, lambda: seen.append("high"), priority=0)
        clock.run()
        assert seen == ["high", "low"]

    def test_scheduling_in_the_past_rejected(self):
        clock = EventClock(start=10.0)
        with pytest.raises(SimulationError):
            clock.call_at(5.0, lambda: None)

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            EventClock().call_after(-1.0, lambda: None)

    def test_events_can_schedule_events(self):
        clock = EventClock()
        seen = []

        def first():
            clock.call_after(1.0, lambda: seen.append(clock.now))

        clock.call_at(1.0, first)
        clock.run()
        assert seen == [2.0]


class TestRunControl:
    def test_run_returns_event_count(self):
        clock = EventClock()
        for i in range(5):
            clock.call_at(float(i), lambda: None)
        assert clock.run() == 5

    def test_run_until_stops_before_later_events(self):
        clock = EventClock()
        seen = []
        clock.call_at(1.0, lambda: seen.append(1))
        clock.call_at(10.0, lambda: seen.append(10))
        clock.run(until=5.0)
        assert seen == [1]
        assert clock.now == 5.0

    def test_run_until_then_resume(self):
        clock = EventClock()
        seen = []
        clock.call_at(10.0, lambda: seen.append(10))
        clock.run(until=5.0)
        clock.run()
        assert seen == [10]

    def test_advance_moves_time_even_without_events(self):
        clock = EventClock()
        clock.advance(7.0)
        assert clock.now == 7.0

    def test_max_events_limit(self):
        clock = EventClock()
        seen = []
        for i in range(10):
            clock.call_at(float(i), lambda i=i: seen.append(i))
        clock.run(max_events=3)
        assert seen == [0, 1, 2]

    def test_step_returns_false_when_empty(self):
        assert EventClock().step() is False

    def test_pending_counts_live_events(self):
        clock = EventClock()
        clock.call_at(1.0, lambda: None)
        handle = clock.call_at(2.0, lambda: None)
        handle.cancel()
        assert clock.pending() == 1


class TestCancellation:
    def test_cancelled_event_does_not_run(self):
        clock = EventClock()
        seen = []
        handle = clock.call_at(1.0, lambda: seen.append(1))
        handle.cancel()
        clock.run()
        assert seen == []

    def test_cancel_is_idempotent(self):
        clock = EventClock()
        handle = clock.call_at(1.0, lambda: None)
        handle.cancel()
        handle.cancel()
        assert handle.cancelled

    def test_handle_reports_time(self):
        clock = EventClock()
        handle = clock.call_at(4.5, lambda: None)
        assert handle.time == 4.5
