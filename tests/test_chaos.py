"""Chaos integration tests: many instances, sustained random failures.

The strongest form of the paper's §3 guarantee: a fleet of workflow
instances all complete despite continuous random crashes of every node,
message loss and a partition episode — the only casualty is time.
"""

import pytest

from repro.net import RandomCrasher
from repro.services import WorkflowSystem
from repro.workloads import paper_order, paper_trip


class TestChaosFleet:
    def test_ten_orders_under_sustained_chaos(self):
        system = WorkflowSystem(
            workers=3,
            loss_rate=0.10,
            seed=42,
            dispatch_timeout=20.0,
            sweep_interval=5.0,
        )
        paper_order.default_registry(registry=system.registry)
        system.deploy("order", paper_order.SCRIPT_TEXT)
        iids = [
            system.instantiate("order", paper_order.ROOT_TASK, {"order": f"o-{i}"})
            for i in range(10)
        ]
        crasher = RandomCrasher(
            system.clock,
            [system.execution_node] + system.worker_nodes,
            interval=40.0,
            downtime=20.0,
            seed=7,
        ).start()
        for iid in iids:
            result = system.run_until_terminal(iid, max_time=100_000)
            assert result["status"] == "completed", iid
            assert result["outcome"] == "orderCompleted"
        crasher.stop()
        assert len(crasher.injected) > 0  # chaos actually happened
        assert system.execution.stats["recoveries"] > 0

    def test_trip_app_with_loops_under_chaos(self):
        system = WorkflowSystem(
            workers=2,
            loss_rate=0.05,
            seed=5,
            dispatch_timeout=20.0,
            sweep_interval=5.0,
        )
        paper_trip.default_registry(
            hotel_rounds_until_success=2,
            hotel_attempts_needed=1,
            hotel_max_tries=3,
            registry=system.registry,
        )
        system.deploy("trip", paper_trip.SCRIPT_TEXT)
        iid = system.instantiate("trip", paper_trip.ROOT_TASK, {"user": "chaos"})
        crasher = RandomCrasher(
            system.clock,
            [system.execution_node] + system.worker_nodes,
            interval=60.0,
            downtime=25.0,
            seed=11,
        ).start()
        result = system.run_until_terminal(iid, max_time=200_000)
        crasher.stop()
        assert result["status"] == "completed"
        assert result["outcome"] == "tripArranged"
        # the loop + compensation semantics held under chaos
        assert [m["name"] for m in result["marks"]] == ["toPay"]

    def test_partition_episode_mid_fleet(self):
        system = WorkflowSystem(
            workers=2, seed=3, dispatch_timeout=15.0, sweep_interval=5.0
        )
        paper_order.default_registry(registry=system.registry)
        system.deploy("order", paper_order.SCRIPT_TEXT)
        iids = [
            system.instantiate("order", paper_order.ROOT_TASK, {"order": f"p-{i}"})
            for i in range(4)
        ]
        workers = {n.name for n in system.worker_nodes}
        system.clock.call_at(
            5.0, lambda: system.network.partition({system.execution_node.name}, workers)
        )
        system.clock.call_at(60.0, system.network.heal)
        for iid in iids:
            result = system.run_until_terminal(iid, max_time=50_000)
            assert result["status"] == "completed"
        assert system.network.stats.dropped_partition > 0


class TestWorkerMigration:
    def test_servant_migrates_between_nodes_mid_run(self):
        """The paper's reconfiguration motivation includes "services being
        moved": re-registering a worker under the same name on another node
        is transparent to the execution service."""
        from repro.net import Node
        from repro.services.worker import WORKER_INTERFACE, TaskWorker

        system = WorkflowSystem(workers=1, dispatch_timeout=15.0, sweep_interval=5.0)
        paper_order.default_registry(registry=system.registry)
        system.deploy("order", paper_order.SCRIPT_TEXT)

        # kill the original worker node and move its servant elsewhere
        system.worker_nodes[0].crash()
        new_node = Node("worker-node-new", system.clock, system.network)
        migrated = TaskWorker("worker-1b", system.registry)
        new_node.install(migrated)
        system.broker.unregister("worker-1")
        system.broker.register("worker-1", WORKER_INTERFACE, migrated, new_node)

        iid = system.instantiate("order", paper_order.ROOT_TASK, {"order": "m-1"})
        result = system.run_until_terminal(iid, max_time=20_000)
        assert result["status"] == "completed"
        assert migrated.executed  # the migrated servant did the work
