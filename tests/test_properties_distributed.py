"""Property-based invariants of the distributed engine: for arbitrary crash
times and loss seeds, the workflow completes with the same outcome, and a
post-hoc recovery replay reproduces the exact result."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.net import FaultPlan
from repro.services import WorkflowSystem
from repro.workloads import paper_order

# pin settings per test (profiles are process-global; another module's
# profile may be active by the time these run)
DIST = settings(
    deadline=None, max_examples=12, suppress_health_check=[HealthCheck.too_slow]
)


def run_order(crash_at=None, down_for=30.0, loss=0.0, seed=0, workers=2):
    system = WorkflowSystem(
        workers=workers,
        loss_rate=loss,
        seed=seed,
        dispatch_timeout=15.0,
        sweep_interval=5.0,
    )
    paper_order.default_registry(registry=system.registry)
    system.deploy("order", paper_order.SCRIPT_TEXT)
    iid = system.instantiate("order", paper_order.ROOT_TASK, {"order": "p"})
    if crash_at is not None:
        FaultPlan(system.clock).crash_at(
            system.execution_node, when=crash_at, down_for=down_for
        ).arm()
    result = system.run_until_terminal(iid, max_time=50_000)
    return system, iid, result


@DIST
@given(st.floats(min_value=0.5, max_value=60.0))
def test_completion_invariant_under_any_crash_time(crash_at):
    _system, _iid, result = run_order(crash_at=crash_at)
    assert result["status"] == "completed"
    assert result["outcome"] == "orderCompleted"
    assert result["objects"]["dispatchNote"]["value"] == "note:stock:p"


@DIST
@given(st.integers(0, 10_000), st.sampled_from([0.0, 0.1, 0.2]))
def test_completion_invariant_under_any_loss_seed(seed, loss):
    _system, _iid, result = run_order(loss=loss, seed=seed)
    assert result["status"] == "completed"
    assert result["outcome"] == "orderCompleted"


@DIST
@given(st.floats(min_value=0.5, max_value=40.0), st.integers(0, 1000))
def test_recovery_replay_equivalence(crash_at, seed):
    """Whatever happened during the run, crash+recover afterwards rebuilds
    the identical terminal state from the journal."""
    system, iid, result = run_order(crash_at=crash_at, loss=0.05, seed=seed)
    assert result["status"] == "completed"
    system.execution_node.crash()
    system.execution_node.recover()
    again = system.execution.result(iid)
    assert again["outcome"] == result["outcome"]
    assert again["objects"] == result["objects"]
    assert again["marks"] == result["marks"]


@DIST
@given(st.integers(1, 4))
def test_worker_pool_size_does_not_change_semantics(workers):
    _system, _iid, result = run_order(workers=workers)
    assert result["outcome"] == "orderCompleted"
    assert result["objects"]["dispatchNote"]["value"] == "note:stock:p"
