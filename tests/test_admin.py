"""Tests for administrative applications expressed as workflows (§3)."""

from repro.engine import LocalEngine
from repro.services import WorkflowSystem, admin_registry, build_monitor, build_reconfigure
from repro.lang import format_script
from repro.workloads import diamond, paper_order


class TestMonitorWorkflow:
    def test_monitor_polls_until_target_finishes(self):
        system = WorkflowSystem(workers=2)
        paper_order.default_registry(registry=system.registry)
        system.deploy("order", paper_order.SCRIPT_TEXT)
        iid = system.instantiate("order", paper_order.ROOT_TASK, {"order": "o-1"})
        system.run_until_terminal(iid)

        # the monitor is itself a workflow, run by a (local) engine whose
        # task implementation talks to the execution service via the ORB
        monitor = build_monitor()
        registry = admin_registry(system)
        result = LocalEngine(registry).run(
            monitor, inputs={"instance": iid}
        )
        assert result.completed
        assert f"{iid}:completed:orderCompleted" == result.value("report")

    def test_monitor_loops_with_repeat_while_running(self):
        system = WorkflowSystem(workers=2)
        paper_order.default_registry(registry=system.registry)
        system.deploy("order", paper_order.SCRIPT_TEXT)
        iid = system.instantiate("order", paper_order.ROOT_TASK, {"order": "o-1"})

        # drive the target a bit between monitor polls by wiring the poll
        # implementation to advance simulated time
        monitor = build_monitor()
        registry = admin_registry(system, max_polls=500)
        original = registry.resolve("refCheckStatus")

        def polling_with_progress(ctx):
            system.clock.advance(10.0)
            return original(ctx)

        registry.register("refCheckStatus", polling_with_progress)
        result = LocalEngine(registry).run(monitor, inputs={"instance": iid})
        assert result.completed
        assert "completed" in result.value("report")

    def test_monitor_times_out_gracefully(self):
        system = WorkflowSystem(workers=0 or 1)
        paper_order.default_registry(registry=system.registry)
        system.deploy("order", paper_order.SCRIPT_TEXT)
        iid = system.instantiate("order", paper_order.ROOT_TASK, {"order": "o-1"})
        # never advance the clock: the instance stays running
        monitor = build_monitor()
        registry = admin_registry(system, max_polls=3)
        result = LocalEngine(registry, max_repeats=100).run(
            monitor, inputs={"instance": iid}
        )
        assert result.completed
        assert "timeout" in result.value("report")


class TestReconfigureWorkflow:
    def test_reconfiguration_applied_as_a_workflow(self):
        from repro.core import AddTask, Implementation
        from repro.core.schema import (
            GuardKind,
            InputObjectBinding,
            InputSetBinding,
            Source,
            TaskDecl,
        )
        from repro.engine import outcome as mk_outcome

        script, registry, root, inputs = diamond()
        registry.register("join2", lambda ctx: mk_outcome("done", out="j2"))
        system = WorkflowSystem(workers=1, registry=registry)
        system.deploy("diamond", format_script(script))
        iid = system.instantiate("diamond", root, inputs)

        t5 = TaskDecl(
            "t5",
            "Join",
            Implementation.of(code="join2"),
            (
                InputSetBinding(
                    "main",
                    (
                        InputObjectBinding(
                            "left", (Source("t2", "out", GuardKind.OUTPUT, "done"),)
                        ),
                        InputObjectBinding(
                            "right", (Source("t3", "out", GuardKind.OUTPUT, "done"),)
                        ),
                    ),
                ),
            ),
        )
        new_text = format_script(AddTask("fig1", t5).apply_checked(script))

        reconfigure = build_reconfigure()
        admin = admin_registry(system)
        result = LocalEngine(admin).run(
            reconfigure, inputs={"instance": iid, "script": new_text}
        )
        assert result.completed
        assert result.outcome == "applied"
        runtime = system.execution.runtimes[iid]
        assert runtime.tree.script.tasks["fig1"].task("t5") is not None

    def test_rejected_reconfiguration_reports_refused(self):
        script, registry, root, inputs = diamond()
        system = WorkflowSystem(workers=1, registry=registry)
        system.deploy("diamond", format_script(script))
        iid = system.instantiate("diamond", root, inputs)
        reconfigure = build_reconfigure()
        admin = admin_registry(system)
        result = LocalEngine(admin).run(
            reconfigure,
            inputs={"instance": iid, "script": "this is not a script"},
        )
        assert result.completed
        assert result.outcome == "rejected"
        assert "refused" in result.value("report")
