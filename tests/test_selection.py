"""Unit tests for input-dependency satisfaction (§4.3 semantics)."""

import pytest

from repro.core.schema import (
    GuardKind,
    InputObjectBinding,
    InputSetBinding,
    NotificationBinding,
    Source,
)
from repro.core.selection import (
    EventKind,
    InputObjectTracker,
    InputSetTracker,
    NotificationTracker,
    Scope,
    TaskInputTracker,
    WorkflowEvent,
    source_matches,
)
from repro.core.values import ObjectRef


def ev(producer, kind, name, **objects):
    return WorkflowEvent(
        producer, kind, name, {k: ObjectRef("Data", v) for k, v in objects.items()}
    )


class TestSourceMatching:
    def test_output_guard_matches_outcome(self):
        source = Source("t1", "x", GuardKind.OUTPUT, "done")
        value = source_matches(source, ev("t1", EventKind.OUTCOME, "done", x=1))
        assert value.value == 1

    def test_output_guard_matches_abort_and_mark_and_repeat(self):
        source = Source("t1", None, GuardKind.OUTPUT, "o")
        for kind in (EventKind.ABORT, EventKind.MARK, EventKind.REPEAT):
            assert source_matches(source, ev("t1", kind, "o")) is not None

    def test_output_guard_rejects_other_name(self):
        source = Source("t1", "x", GuardKind.OUTPUT, "done")
        assert source_matches(source, ev("t1", EventKind.OUTCOME, "other", x=1)) is None

    def test_output_guard_rejects_input_event(self):
        source = Source("t1", None, GuardKind.OUTPUT, "main")
        assert source_matches(source, ev("t1", EventKind.INPUT, "main")) is None

    def test_input_guard_matches_input_event(self):
        source = Source("t1", "x", GuardKind.INPUT, "main")
        value = source_matches(source, ev("t1", EventKind.INPUT, "main", x=7))
        assert value.value == 7

    def test_wrong_producer_rejected(self):
        source = Source("t1", "x", GuardKind.OUTPUT, "done")
        assert source_matches(source, ev("t2", EventKind.OUTCOME, "done", x=1)) is None

    def test_missing_object_rejected(self):
        source = Source("t1", "y", GuardKind.OUTPUT, "done")
        assert source_matches(source, ev("t1", EventKind.OUTCOME, "done", x=1)) is None

    def test_unguarded_matches_outcome_and_mark_with_object(self):
        source = Source("t1", "x", GuardKind.ANY, None)
        assert source_matches(source, ev("t1", EventKind.OUTCOME, "any", x=1)) is not None
        assert source_matches(source, ev("t1", EventKind.MARK, "m", x=1)) is not None

    def test_unguarded_rejects_abort_and_repeat(self):
        # §4.2: abort means no effects; repeat objects are private
        source = Source("t1", "x", GuardKind.ANY, None)
        assert source_matches(source, ev("t1", EventKind.ABORT, "a", x=1)) is None
        assert source_matches(source, ev("t1", EventKind.REPEAT, "r", x=1)) is None

    def test_notification_match_returns_token(self):
        source = Source("t1", None, GuardKind.OUTPUT, "done")
        token = source_matches(source, ev("t1", EventKind.OUTCOME, "done"))
        assert token.class_name == "<notification>"


class TestInputObjectTracker:
    def binding(self):
        return InputObjectBinding(
            "inp",
            (
                Source("a", "x", GuardKind.OUTPUT, "done"),
                Source("b", "y", GuardKind.OUTPUT, "done"),
            ),
        )

    def test_first_listed_alternative_wins_even_if_later_in_time(self):
        tracker = InputObjectTracker(self.binding())
        tracker.offer(ev("b", EventKind.OUTCOME, "done", y="from-b"))
        assert tracker.value.value == "from-b"
        tracker.offer(ev("a", EventKind.OUTCOME, "done", x="from-a"))
        assert tracker.value.value == "from-a"  # earlier-listed alternative upgrades

    def test_later_alternative_does_not_downgrade(self):
        tracker = InputObjectTracker(self.binding())
        tracker.offer(ev("a", EventKind.OUTCOME, "done", x="from-a"))
        changed = tracker.offer(ev("b", EventKind.OUTCOME, "done", y="from-b"))
        assert not changed
        assert tracker.value.value == "from-a"

    def test_unsatisfied_until_any_source_fires(self):
        tracker = InputObjectTracker(self.binding())
        assert not tracker.satisfied
        tracker.offer(ev("c", EventKind.OUTCOME, "done", x=1))
        assert not tracker.satisfied


class TestNotificationTracker:
    def test_any_alternative_satisfies(self):
        binding = NotificationBinding(
            (
                Source("a", None, GuardKind.OUTPUT, "done"),
                Source("b", None, GuardKind.OUTPUT, "done"),
            )
        )
        tracker = NotificationTracker(binding)
        tracker.offer(ev("b", EventKind.OUTCOME, "done"))
        assert tracker.satisfied
        assert tracker.matched_by == "b"

    def test_first_match_sticks(self):
        binding = NotificationBinding(
            (
                Source("a", None, GuardKind.OUTPUT, "done"),
                Source("b", None, GuardKind.OUTPUT, "done"),
            )
        )
        tracker = NotificationTracker(binding)
        tracker.offer(ev("b", EventKind.OUTCOME, "done"))
        assert not tracker.offer(ev("a", EventKind.OUTCOME, "done"))
        assert tracker.matched_by == "b"


class TestInputSetTracker:
    def make_binding(self):
        return InputSetBinding(
            "main",
            (InputObjectBinding("inp", (Source("a", "x", GuardKind.OUTPUT, "done"),)),),
            (NotificationBinding((Source("b", None, GuardKind.OUTPUT, "ok"),)),),
        )

    def test_requires_all_objects_and_notifications(self):
        tracker = InputSetTracker(self.make_binding())
        tracker.offer(ev("a", EventKind.OUTCOME, "done", x=1))
        assert not tracker.satisfied
        tracker.offer(ev("b", EventKind.OUTCOME, "ok"))
        assert tracker.satisfied

    def test_values_returns_chosen_objects(self):
        tracker = InputSetTracker(self.make_binding())
        tracker.offer(ev("a", EventKind.OUTCOME, "done", x=5))
        tracker.offer(ev("b", EventKind.OUTCOME, "ok"))
        assert tracker.values()["inp"].value == 5

    def test_values_before_satisfaction_raises(self):
        with pytest.raises(ValueError):
            InputSetTracker(self.make_binding()).values()

    def test_empty_set_trivially_satisfied(self):
        assert InputSetTracker(InputSetBinding("main")).satisfied


class TestTaskInputTracker:
    def test_first_declared_satisfied_set_wins(self):
        # §3: "chosen deterministically" — declaration order
        set1 = InputSetBinding(
            "primary",
            (InputObjectBinding("x", (Source("a", "x", GuardKind.OUTPUT, "d"),)),),
        )
        set2 = InputSetBinding(
            "fallback",
            (InputObjectBinding("y", (Source("b", "y", GuardKind.OUTPUT, "d"),)),),
        )
        tracker = TaskInputTracker([set1, set2])
        tracker.offer(ev("b", EventKind.OUTCOME, "d", y=2))
        assert tracker.ready()[0] == "fallback"
        tracker.offer(ev("a", EventKind.OUTCOME, "d", x=1))
        assert tracker.ready()[0] == "primary"

    def test_not_ready_when_no_set_satisfied(self):
        set1 = InputSetBinding(
            "main", (InputObjectBinding("x", (Source("a", "x", GuardKind.OUTPUT, "d"),)),)
        )
        assert TaskInputTracker([set1]).ready() is None


class TestScope:
    def test_publish_assigns_sequence(self):
        scope = Scope("wf")
        e1 = scope.publish("t", EventKind.OUTCOME, "done")
        e2 = scope.publish("t", EventKind.OUTCOME, "done2")
        assert e2.seq == e1.seq + 1

    def test_replay_into_reproduces_state(self):
        scope = Scope("wf")
        scope.publish("a", EventKind.OUTCOME, "d", {"x": ObjectRef("Data", 1)})
        binding = InputSetBinding(
            "main", (InputObjectBinding("x", (Source("a", "x", GuardKind.OUTPUT, "d"),)),)
        )
        tracker = TaskInputTracker([binding])
        scope.replay_into(tracker)
        assert tracker.ready() is not None
