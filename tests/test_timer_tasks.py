"""Tests for built-in timer tasks: the paper's §4.2 timeout pattern —
"a set of 'normal' inputs and a set for an exceptional input such as a timer
enabling a task to wait for normal inputs with a timeout"."""

from repro.core import ScriptBuilder, from_input, from_output
from repro.engine import outcome
from repro.lang import format_script
from repro.services import WorkflowSystem


def timeout_script():
    """`process` starts from its normal set when data arrives, or from its
    exceptional set when the timer fires first."""
    b = ScriptBuilder()
    b.object_class("Data")
    b.taskclass("Fetch").input_set("main").outcome("fetched", out="Data").outcome(
        "empty"
    )
    b.taskclass("Timer").input_set("main").outcome("fired")
    (
        b.taskclass("Process")
        .input_set("normal", inp="Data")
        .input_set("exceptional")
        .outcome("processed", out="Data")
        .outcome("timedOut")
    )
    b.taskclass("Root").input_set("main").outcome("done", out="Data").outcome(
        "gaveUp"
    )
    c = b.compound("wf", "Root")
    c.task("fetch", "Fetch").implementation(code="fetch").notify(
        "main", from_input("wf", "main")
    ).up()
    c.task("timer", "Timer").implementation(code="system.timer", delay="40").notify(
        "main", from_input("wf", "main")
    ).up()
    process = c.task("process", "Process").implementation(code="process")
    process.input("normal", "inp", from_output("fetch", "fetched", "out"))
    process.notify("exceptional", from_output("timer", "fired"))
    process.up()
    c.output("done").object("out", from_output("process", "processed", "out")).up()
    c.output("gaveUp").notify(from_output("process", "timedOut")).up()
    c.up()
    return b.build()


def make_system(fetch_behaviour):
    system = WorkflowSystem(workers=1)
    system.registry.register("fetch", fetch_behaviour)
    system.registry.register(
        "process",
        lambda ctx: outcome("processed", out=f"p({ctx.value('inp')})")
        if ctx.input_set == "normal"
        else outcome("timedOut"),
    )
    system.deploy("wf", format_script(timeout_script()))
    return system


class TestTimerTasks:
    def test_normal_input_beats_slow_timer(self):
        system = make_system(lambda ctx: outcome("fetched", out="data!"))
        iid = system.instantiate("wf", "wf", {})
        result = system.run_until_terminal(iid, max_time=5_000)
        assert result["outcome"] == "done"
        assert result["objects"]["out"]["value"] == "p(data!)"

    def test_timer_fires_when_normal_input_never_comes(self):
        # fetch returns `empty`, which carries no Data: the normal set can
        # never be satisfied, and the 40-unit timer triggers the exceptional
        # set instead
        system = make_system(lambda ctx: outcome("empty"))
        iid = system.instantiate("wf", "wf", {})
        result = system.run_until_terminal(iid, max_time=5_000)
        assert result["outcome"] == "gaveUp"

    def test_timer_event_is_journaled_and_survives_recovery(self):
        system = make_system(lambda ctx: outcome("empty"))
        iid = system.instantiate("wf", "wf", {})
        system.clock.advance(100.0)
        assert system.execution.status(iid)["outcome"] == "gaveUp"
        system.execution_node.crash()
        system.execution_node.recover()
        assert system.execution.status(iid)["outcome"] == "gaveUp"

    def test_pending_timer_rearmed_after_crash(self):
        system = make_system(lambda ctx: outcome("empty"))
        iid = system.instantiate("wf", "wf", {})
        # crash before the 40-unit timer fires; after recovery it re-arms
        system.clock.advance(10.0)
        system.execution_node.crash()
        system.clock.advance(5.0)
        system.execution_node.recover()
        result = system.run_until_terminal(iid, max_time=5_000)
        assert result["outcome"] == "gaveUp"

    def test_timer_with_no_outcome_is_a_failure(self):
        b = ScriptBuilder()
        b.taskclass("BadTimer").input_set("main").abort_outcome("never")
        b.taskclass("Root").input_set("main").outcome("done")
        c = b.compound("wf", "Root")
        c.task("t", "BadTimer").implementation(code="system.timer", delay="5").notify(
            "main", from_input("wf", "main")
        ).up()
        c.output("done").notify(from_output("t", "never")).up()
        c.up()
        system = WorkflowSystem(workers=1)
        system.deploy("bad", format_script(b.build()))
        iid = system.instantiate("bad", "wf", {})
        system.clock.advance(200.0)
        status = system.execution.status(iid)
        # the failure surfaced through the normal failure machinery: the
        # abort outcome is published (BadTimer declares one), ending the run
        assert status["outcome"] in ("done", None) or status["status"] in (
            "completed",
            "failed",
        )
