"""Tests for external (interactive / long-running) task completion.

§1: applications "may contain long periods of inactivity, often due to the
constituent applications requiring user interactions".  A task implementation
returns ``pending()``; the engine parks it and an external agent supplies the
outcome later.
"""

import pytest

from repro.core import ScriptBuilder, from_input, from_output
from repro.core.errors import ExecutionError
from repro.engine import (
    ImplementationRegistry,
    LocalEngine,
    WorkflowStatus,
    outcome,
    pending,
)
from repro.lang import format_script
from repro.services import WorkflowSystem


def approval_script():
    """Order flow with a human approval step in the middle."""
    b = ScriptBuilder()
    b.object_class("Data")
    b.taskclass("Prepare").input_set("main", inp="Data").outcome("ready", out="Data")
    (
        b.taskclass("Approve")
        .input_set("main", request="Data")
        .outcome("approved", decision="Data")
        .outcome("denied")
    )
    b.taskclass("Ship").input_set("main", decision="Data").outcome("shipped", out="Data")
    b.taskclass("Root").input_set("main", inp="Data").outcome(
        "done", out="Data"
    ).outcome("rejected")
    c = b.compound("wf", "Root")
    c.task("prepare", "Prepare").implementation(code="prepare").input(
        "main", "inp", from_input("wf", "main", "inp")
    ).up()
    c.task("approve", "Approve").implementation(code="approve").input(
        "main", "request", from_output("prepare", "ready", "out")
    ).up()
    c.task("ship", "Ship").implementation(code="ship").input(
        "main", "decision", from_output("approve", "approved", "decision")
    ).up()
    c.output("done").object("out", from_output("ship", "shipped", "out")).up()
    c.output("rejected").notify(from_output("approve", "denied")).up()
    c.up()
    return b.build()


def base_registry():
    reg = ImplementationRegistry()
    reg.register("prepare", lambda ctx: outcome("ready", out=f"req:{ctx.value('inp')}"))
    reg.register("approve", lambda ctx: pending("waiting for a human"))
    reg.register("ship", lambda ctx: outcome("shipped", out=f"shipped:{ctx.value('decision')}"))
    return reg


class TestLocalExternalTasks:
    def test_workflow_parks_at_pending_task(self):
        wf = LocalEngine(base_registry()).workflow(approval_script())
        wf.start({"inp": "o-1"})
        wf.run_to_completion()
        assert wf.status is WorkflowStatus.STALLED  # parked, nothing ready
        from repro.core.states import TaskState

        assert wf.tree.node_at("wf/approve").machine.state is TaskState.EXECUTING

    def test_external_completion_resumes(self):
        wf = LocalEngine(base_registry()).workflow(approval_script())
        wf.start({"inp": "o-1"})
        wf.run_to_completion()
        wf.complete_external("wf/approve", "approved", decision="yes-by-alice")
        result = wf.run_to_completion()
        assert result.completed
        assert result.value("out") == "shipped:yes-by-alice"

    def test_external_denial_takes_the_other_path(self):
        wf = LocalEngine(base_registry()).workflow(approval_script())
        wf.start({"inp": "o-1"})
        wf.run_to_completion()
        wf.complete_external("wf/approve", "denied")
        result = wf.run_to_completion()
        assert result.outcome == "rejected"

    def test_unknown_output_rejected(self):
        wf = LocalEngine(base_registry()).workflow(approval_script())
        wf.start({"inp": "o-1"})
        wf.run_to_completion()
        with pytest.raises(ExecutionError):
            wf.complete_external("wf/approve", "maybe")

    def test_completion_of_non_executing_task_rejected(self):
        wf = LocalEngine(base_registry()).workflow(approval_script())
        wf.start({"inp": "o-1"})
        wf.run_to_completion()
        with pytest.raises(ExecutionError):
            wf.complete_external("wf/ship", "shipped", out="x")


class TestDistributedExternalTasks:
    def make_system(self):
        system = WorkflowSystem(workers=2, registry=base_registry())
        system.deploy("approval", format_script(approval_script()))
        iid = system.instantiate("approval", "wf", {"inp": "o-9"})
        system.clock.advance(50.0)
        return system, iid

    def test_status_reports_awaiting_external(self):
        system, iid = self.make_system()
        status = system.status(iid)
        assert status["status"] == "running"  # parked, not stalled
        assert status["awaiting_external"] == 1
        assert system.execution_proxy().external_tasks(iid) == ["wf/approve"]

    def test_complete_task_through_the_orb(self):
        system, iid = self.make_system()
        system.execution_proxy().complete_task(
            iid, "wf/approve", "approved", {"decision": "ok"}
        )
        result = system.run_until_terminal(iid, max_time=5_000)
        assert result["status"] == "completed"
        assert result["objects"]["out"]["value"] == "shipped:ok"

    def test_sweeper_does_not_redispatch_parked_tasks(self):
        system, iid = self.make_system()
        before = system.execution.stats["dispatches"]
        system.clock.advance(500.0)  # many sweep intervals
        assert system.execution.stats["dispatches"] == before

    def test_parked_task_survives_crash(self):
        system, iid = self.make_system()
        system.execution_node.crash()
        system.execution_node.recover()
        assert system.execution.external_tasks(iid) == ["wf/approve"]
        # and the sweeper still leaves it alone
        system.clock.advance(200.0)
        status = system.status(iid)
        assert status["awaiting_external"] == 1
        # completion still works after recovery
        system.execution_proxy().complete_task(
            iid, "wf/approve", "approved", {"decision": "post-crash"}
        )
        result = system.run_until_terminal(iid, max_time=5_000)
        assert result["status"] == "completed"
        assert result["objects"]["out"]["value"] == "shipped:post-crash"

    def test_completion_itself_survives_crash(self):
        system, iid = self.make_system()
        system.execution_proxy().complete_task(
            iid, "wf/approve", "approved", {"decision": "ok"}
        )
        result = system.run_until_terminal(iid, max_time=5_000)
        assert result["status"] == "completed"
        system.execution_node.crash()
        system.execution_node.recover()
        again = system.execution.result(iid)
        assert again["outcome"] == result["outcome"]
        assert again["objects"] == result["objects"]

    def test_completing_unparked_task_rejected(self):
        system, iid = self.make_system()
        with pytest.raises(Exception):
            system.execution_proxy().complete_task(iid, "wf/ship", "shipped", {"out": "x"})
