"""Unit tests for fault-injection schedules."""

from repro.net.clock import EventClock
from repro.net.failures import FaultPlan, RandomCrasher
from repro.net.network import Network
from repro.net.node import Node


def world():
    clock = EventClock()
    net = Network(clock)
    return clock, net


class TestFaultPlan:
    def test_crash_at_scheduled_time(self):
        clock, net = world()
        node = Node("a", clock, net)
        FaultPlan(clock).crash_at(node, when=5.0).arm()
        clock.run(until=4.9)
        assert node.alive
        clock.run(until=5.1)
        assert not node.alive

    def test_recovery_after_downtime(self):
        clock, net = world()
        node = Node("a", clock, net)
        FaultPlan(clock).crash_at(node, when=5.0, down_for=3.0).arm()
        clock.run(until=6.0)
        assert not node.alive
        clock.run(until=8.5)
        assert node.alive

    def test_permanent_crash_without_down_for(self):
        clock, net = world()
        node = Node("a", clock, net)
        FaultPlan(clock).crash_at(node, when=1.0).arm()
        clock.run(until=100.0)
        assert not node.alive

    def test_arm_is_idempotent(self):
        clock, net = world()
        node = Node("a", clock, net)
        plan = FaultPlan(clock).crash_at(node, when=1.0, down_for=1.0)
        plan.arm()
        plan.arm()
        clock.run(until=5.0)
        assert len(plan.history) == 1

    def test_history_records_only_executed_crashes(self):
        # regression: history used to be filled at arm() time, before any
        # crash had actually fired
        clock, net = world()
        node = Node("a", clock, net)
        plan = FaultPlan(clock).crash_at(node, when=5.0, down_for=1.0)
        plan.arm()
        assert plan.history == []
        clock.run(until=4.0)
        assert plan.history == []
        clock.run(until=5.5)
        assert len(plan.history) == 1
        assert plan.history[0].node == "a"

    def test_crash_of_already_dead_node_leaves_no_history(self):
        clock, net = world()
        node = Node("a", clock, net)
        plan = FaultPlan(clock)
        plan.crash_at(node, when=1.0)           # permanent
        plan.crash_at(node, when=2.0, down_for=1.0)  # strikes a dead node
        plan.arm()
        clock.run(until=10.0)
        assert len(plan.history) == 1
        assert plan.history[0].crash_time == 1.0

    def test_multiple_nodes(self):
        clock, net = world()
        a, b = Node("a", clock, net), Node("b", clock, net)
        FaultPlan(clock).crash_at(a, when=1.0).crash_at(b, when=2.0).arm()
        clock.run(until=3.0)
        assert not a.alive and not b.alive


class TestRandomCrasher:
    def test_injects_crashes_and_recoveries(self):
        clock, net = world()
        nodes = [Node(f"n{i}", clock, net) for i in range(3)]
        crasher = RandomCrasher(clock, nodes, interval=10.0, downtime=5.0, seed=1).start()
        clock.run(until=500.0)
        assert len(crasher.injected) > 5
        crasher.stop()
        clock.run()  # drain pending recoveries
        assert all(n.alive for n in nodes)

    def test_limit_bounds_injections(self):
        clock, net = world()
        nodes = [Node("n", clock, net)]
        crasher = RandomCrasher(clock, nodes, interval=1.0, downtime=0.5, seed=2, limit=4).start()
        clock.run(until=1000.0)
        assert len(crasher.injected) == 4

    def test_stop_halts_injection(self):
        clock, net = world()
        nodes = [Node("n", clock, net)]
        crasher = RandomCrasher(clock, nodes, interval=1.0, downtime=0.5, seed=3).start()
        clock.run(until=10.0)
        count = len(crasher.injected)
        crasher.stop()
        clock.run(until=100.0)
        assert len(crasher.injected) == count

    def test_deterministic_under_seed(self):
        def run(seed):
            clock, net = world()
            nodes = [Node(f"n{i}", clock, net) for i in range(2)]
            crasher = RandomCrasher(clock, nodes, interval=5.0, downtime=2.0, seed=seed).start()
            clock.run(until=200.0)
            return [(e.node, e.crash_time) for e in crasher.injected]

        assert run(7) == run(7)
        assert run(7) != run(8)
