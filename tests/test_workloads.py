"""Tests for the synthetic workload generators."""

import pytest

from repro.engine import LocalEngine
from repro.workloads import chain, diamond, fan, random_dag, script_text


class TestChain:
    def test_runs_and_threads_data(self):
        script, registry, root, inputs = chain(5)
        result = LocalEngine(registry).run(script, root, inputs=inputs)
        assert result.completed
        assert result.value("out") == "seed"  # noop stages pass data through

    def test_strictly_sequential(self):
        script, registry, root, inputs = chain(6)
        result = LocalEngine(registry).run(script, root, inputs=inputs)
        order = result.log.started_order()
        stages = [p for p in order if "/" in p]
        assert stages == [f"pipeline/t{i}" for i in range(1, 7)]

    def test_invalid_length_rejected(self):
        with pytest.raises(ValueError):
            chain(0)


class TestFan:
    def test_runs(self):
        script, registry, root, inputs = fan(7)
        result = LocalEngine(registry).run(script, root, inputs=inputs)
        assert result.completed

    def test_sink_starts_after_all_workers(self):
        script, registry, root, inputs = fan(5)
        result = LocalEngine(registry).run(script, root, inputs=inputs)
        order = result.log.started_order()
        sink_at = order.index("fan/sink")
        for i in range(1, 6):
            assert order.index(f"fan/w{i}") < sink_at


class TestDiamond:
    def test_fig1_execution_order_constraints(self):
        script, registry, root, inputs = diamond()
        result = LocalEngine(registry).run(script, root, inputs=inputs)
        order = result.log.started_order()
        assert order.index("fig1/t1") < order.index("fig1/t2")
        assert order.index("fig1/t1") < order.index("fig1/t3")
        assert order.index("fig1/t2") < order.index("fig1/t4")
        assert order.index("fig1/t3") < order.index("fig1/t4")

    def test_join_sees_both_branches(self):
        script, registry, root, inputs = diamond()
        result = LocalEngine(registry).run(script, root, inputs=inputs)
        assert result.value("out") == "join(fig1/t2,c(fig1/t1))"


class TestRandomDag:
    def test_deterministic_under_seed(self):
        a = random_dag(30, seed=5)
        b = random_dag(30, seed=5)
        assert a[0].tasks == b[0].tasks

    def test_different_seeds_differ(self):
        a = random_dag(30, seed=5)
        b = random_dag(30, seed=6)
        assert a[0].tasks != b[0].tasks

    @pytest.mark.parametrize("n", [1, 2, 10, 60])
    def test_all_sizes_complete(self, n):
        script, registry, root, inputs = random_dag(n, seed=1)
        result = LocalEngine(registry).run(script, root, inputs=inputs)
        assert result.completed


class TestScriptText:
    def test_generated_text_recompiles(self):
        from repro.lang import compile_script

        workload = random_dag(20, seed=2)
        text = script_text(workload)
        script = compile_script(text)
        assert script.tasks.keys() == workload[0].tasks.keys()
