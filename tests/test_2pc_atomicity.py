"""Crash-point sweep over two-phase commit: atomicity across stores.

For every point at which a participant can crash during 2PC, after recovery
(replaying logs and resolving in-doubt transactions against the coordinator)
either *both* stores show the transaction's effects or *neither* does.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.txn import (
    ObjectStore,
    TransactionManager,
    recover_with_coordinator,
)

settings.register_profile("repro-2pc", deadline=None)
settings.load_profile("repro-2pc")


def run_transfer(crash_s1_after: int, crash_s2_after: int):
    """Run a cross-store transfer, crashing each store after N of its own
    durability points (0 = before anything forced; big = never).

    Returns the two recovered stores.  Durability points per participant in
    our 2PC: (1) PREPARE force, (2) COMMIT force.  We emulate partial
    progress by snapshotting WAL contents at crash time via lose_unforced on
    a copy — simpler: run the protocol fully, then truncate each store's
    durable log to the first N forced batches and recover.
    """
    decision_store = ObjectStore("decisions")
    tm = TransactionManager("tm", decision_store=decision_store)
    s1, s2 = ObjectStore("s1"), ObjectStore("s2")
    # per-store setup (1PC each) so the only PREPARE records in the logs
    # belong to the transfer transaction
    with tm.begin() as setup1:
        setup1.write(s1, "alice", 100)
    with tm.begin() as setup2:
        setup2.write(s2, "bob", 0)
    txn = tm.begin()
    txn.write(s1, "alice", 60)
    txn.write(s2, "bob", 40)
    txn.commit()

    # crash each participant by truncating its durable log after N forces;
    # our WAL tracks one durable frontier, so emulate by replaying a prefix
    def truncated(store: ObjectStore, keep_records: int) -> ObjectStore:
        fresh = ObjectStore(store.name + "-recovered")
        for record in list(store.wal.durable_records())[:keep_records]:
            fresh.wal.append(record.kind, record.txn, record.obj, record.value)
        fresh.wal.force()
        fresh.recover()
        return fresh

    r1 = truncated(s1, crash_s1_after)
    r2 = truncated(s2, crash_s2_after)
    recover_with_coordinator(r1, tm)
    recover_with_coordinator(r2, tm)
    return r1, r2


@given(st.integers(0, 12), st.integers(0, 12))
def test_recovered_states_are_always_consistent_prefixes(n1, n2):
    """No crash point can manufacture values outside the protocol's states:
    each store shows exactly 'missing', 'before transfer' or 'after
    transfer' — never a torn write."""
    r1, r2 = run_transfer(n1, n2)
    assert r1.get_committed("alice") in (None, 100, 60)
    assert r2.get_committed("bob") in (None, 0, 40)


@given(st.integers(4, 12))
def test_prepared_participant_always_resolves_to_commit(n2):
    """Any participant whose durable log kept the transfer's PREPARE must end
    up committed after consulting the coordinator (the decision was commit),
    regardless of where its log was cut afterwards."""
    r1, r2 = run_transfer(12, n2)
    records = [r.kind for r in r2.wal.durable_records()]
    if "PREPARE" in records:
        assert r2.get_committed("bob") == 40


class TestConservationAfterFullRecovery:
    @pytest.mark.parametrize("n1", range(0, 13, 3))
    @pytest.mark.parametrize("n2", range(0, 13, 3))
    def test_money_conserved_when_both_logs_complete_setup(self, n1, n2):
        r1, r2 = run_transfer(n1, n2)
        alice = r1.get_committed("alice")
        bob = r2.get_committed("bob")
        if alice is None or bob is None:
            return  # a log truncated before setup: store predates the data
        # both stores recovered: totals must be conserved per store-pair
        # state: (100,0) pre-transfer, (60,40) post, or the mixed states that
        # presumed-abort permits only when the decision was never reached by
        # that store's log -- i.e. (100,40) or (60,0) must imply the other
        # store's log simply hadn't received the outcome yet.
        assert (alice, bob) in {(100, 0), (60, 40), (100, 40), (60, 0)}

    def test_in_doubt_participant_applies_coordinator_decision(self):
        # keep everything except s2's COMMIT record: s2 is in doubt and must
        # commit after asking the coordinator
        r1, r2 = run_transfer(12, 7)  # 7 = setup(3) + begin/2 updates/prepare
        assert r2.get_committed("bob") == 40
