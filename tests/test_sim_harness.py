"""Tests for the deterministic simulation harness (repro.sim).

Covers the crash-point plumbing, torn-write injection, nemesis schedule
serialisation, full harness runs under crash schedules (including crashes
mid-compaction and mid-2PC), replay determinism, the chaos explorer's
exhaustive and random sweeps, greedy shrinking, and repro-file round trips.
"""

import json
import os

import pytest

from repro.sim import oracles
from repro.sim.crashpoints import (
    ArmedCrash,
    CrashPointInjector,
    SimulatedCrash,
    catalogue,
    crash_point,
    install,
    point_named,
    uninstall,
)
from repro.sim.explorer import ChaosSweep, replay
from repro.sim.harness import SimHarness, SimReport
from repro.sim.nemesis import (
    CrashAtPoint,
    CrashAtTime,
    DupBurst,
    LossBurst,
    NemesisSchedule,
    Partition,
    ReorderBurst,
    fault_from_plain,
    fault_to_plain,
)
from repro.txn.wal import WriteAheadLog

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


class TestCatalogue:
    def test_names_unique(self):
        names = [p.name for p in catalogue()]
        assert len(names) == len(set(names))

    def test_every_point_is_instrumented(self):
        """Each declared point must appear as a crash_point() call in the
        module the catalogue says holds it — the docs table and the sweep
        both trust this mapping."""
        for point in catalogue():
            path = os.path.join(REPO_ROOT, point.module)
            with open(path, "r", encoding="utf-8") as fh:
                source = fh.read()
            assert f'crash_point("{point.name}"' in source, (
                f"{point.name} not instrumented in {point.module}"
            )

    def test_point_named_rejects_unknown(self):
        with pytest.raises(ValueError):
            point_named("no.such.point")

    def test_crash_point_rejects_undeclared_name_when_installed(self):
        injector = CrashPointInjector(lambda node, fault, scope: None)
        install(injector)
        try:
            with pytest.raises(ValueError):
                crash_point("not.in.catalogue", scope=object())
        finally:
            uninstall()

    def test_crash_point_is_noop_without_injector(self):
        crash_point("not.in.catalogue", scope=object())  # must not raise


class TestArmedCrash:
    def test_validates_point_name(self):
        with pytest.raises(ValueError):
            ArmedCrash(point="bogus.point")

    def test_rejects_torn_on_non_torn_point(self):
        with pytest.raises(ValueError):
            ArmedCrash(point="wal.force.post", mode="torn")

    def test_rejects_bad_mode_and_hit(self):
        with pytest.raises(ValueError):
            ArmedCrash(point="wal.force.pre", mode="sideways")
        with pytest.raises(ValueError):
            ArmedCrash(point="wal.force.pre", at_hit=0)


class TestInjector:
    def test_unbound_scope_is_ignored(self):
        injector = CrashPointInjector(lambda node, fault, scope: None)
        injector.arm(ArmedCrash(point="wal.force.pre"))
        injector.visit("wal.force.pre", scope=object())  # unbound: no crash
        assert injector.visits == {}
        assert injector.fired == []

    def test_fires_on_nth_hit_from_bound_scope(self):
        crashed = []
        injector = CrashPointInjector(
            lambda node, fault, scope: crashed.append(node)
        )
        scope = object()
        injector.bind(scope, "node-1")
        injector.arm(ArmedCrash(point="wal.force.pre", at_hit=2))
        injector.visit("wal.force.pre", scope)
        assert crashed == []
        with pytest.raises(SimulatedCrash):
            injector.visit("wal.force.pre", scope)
        assert crashed == ["node-1"]
        assert injector.fired == [("wal.force.pre", "node-1")]
        assert injector.pending() == []

    def test_node_restriction(self):
        injector = CrashPointInjector(lambda node, fault, scope: None)
        a, b = object(), object()
        injector.bind(a, "node-a")
        injector.bind(b, "node-b")
        injector.arm(ArmedCrash(point="wal.force.pre", node="node-b"))
        injector.visit("wal.force.pre", a)  # wrong node: no crash
        with pytest.raises(SimulatedCrash):
            injector.visit("wal.force.pre", b)


class TestTornForce:
    def test_torn_force_keeps_all_but_last_pending(self):
        wal = WriteAheadLog()
        wal.append("BEGIN", "t1")
        wal.append("UPDATE", "t1", "x", 1)
        wal.append("COMMIT", "t1")
        assert wal.torn_force() == 2
        assert wal.durable_length == 2
        assert wal.lose_unforced() == 1  # the torn COMMIT vanishes at crash
        kinds = [record.kind for record in wal.durable_records()]
        assert kinds == ["BEGIN", "UPDATE"]

    def test_torn_force_with_one_pending_record_loses_it(self):
        wal = WriteAheadLog()
        wal.append("BEGIN", "t1")
        assert wal.torn_force() == 0
        assert wal.durable_length == 0
        assert wal.lose_unforced() == 1


class TestNemesisSerialisation:
    def _full_schedule(self):
        return NemesisSchedule(
            [
                CrashAtPoint("exec.journal.post", at_hit=2, downtime=45.0),
                CrashAtPoint("wal.force.pre", mode="torn"),
                CrashAtTime(at=12.5, node="worker-node-1", downtime=None),
                Partition(at=20.0, group_a=("execution-node",),
                          group_b=("worker-node-1", "worker-node-2"),
                          heal_after=30.0),
                LossBurst(at=5.0, duration=10.0, rate=0.25),
                DupBurst(at=6.0, duration=8.0, rate=0.5),
                ReorderBurst(at=7.0, duration=9.0, window=4.0),
            ],
            name="everything",
        )

    def test_all_fault_kinds_round_trip_through_json(self):
        schedule = self._full_schedule()
        restored = NemesisSchedule.from_json(schedule.to_json())
        assert restored.name == schedule.name
        assert restored.faults == schedule.faults

    def test_fault_plain_forms_round_trip(self):
        for fault in self._full_schedule().faults:
            assert fault_from_plain(fault_to_plain(fault)) == fault

    def test_unknown_fault_kind_rejected(self):
        with pytest.raises(ValueError):
            fault_from_plain({"kind": "meteor_strike", "at": 1.0})

    def test_without_drops_exactly_one_fault(self):
        schedule = self._full_schedule()
        shrunk = schedule.without(2)
        assert len(shrunk) == len(schedule) - 1
        assert schedule.faults[2] not in shrunk.faults
        assert len(schedule) == 7  # original untouched

    def test_crash_at_point_validates_eagerly(self):
        with pytest.raises(ValueError):
            CrashAtPoint("bogus.point")
        with pytest.raises(ValueError):
            CrashAtPoint("exec.journal.post", mode="torn")  # not a force site


class TestHarnessRuns:
    def test_fault_free_run_completes_cleanly(self):
        report = SimHarness(instances=2).run()
        assert report.ok, report.violations
        assert report.crashes == []
        assert all(
            info["status"] == "completed" for info in report.instances.values()
        )

    def test_crash_point_run_fires_recovers_and_completes(self):
        schedule = NemesisSchedule(
            [CrashAtPoint("exec.journal.post", downtime=30.0)], name="one-crash"
        )
        report = SimHarness(schedule=schedule).run()
        assert report.ok, report.violations
        assert len(report.crashes) == 1
        assert report.crashes[0]["node"] == "execution-node"
        assert ["exec.journal.post", "execution-node"] in report.fired
        assert report.unfired == []
        assert all(
            info["status"] == "completed" for info in report.instances.values()
        )

    def test_torn_write_crash_recovers(self):
        schedule = NemesisSchedule(
            [CrashAtPoint("wal.force.pre", mode="torn", at_hit=3)], name="torn"
        )
        report = SimHarness(schedule=schedule).run()
        assert report.ok, report.violations
        assert report.crashes[0]["mode"] == "torn"
        assert all(
            info["status"] == "completed" for info in report.instances.values()
        )

    def test_node_stays_down_when_downtime_is_none(self):
        schedule = NemesisSchedule(
            [CrashAtTime(at=5.0, node="execution-node", downtime=None)],
            name="dead-forever",
        )
        report = SimHarness(schedule=schedule, max_time=300.0).run()
        # liveness is waived for unhealable schedules; safety must still hold
        assert report.ok, report.violations
        assert all(
            info["status"] == "lost" for info in report.instances.values()
        )

    def test_replay_determinism_identical_fingerprints(self):
        schedule = NemesisSchedule(
            [
                CrashAtPoint("exec.reply.applied", downtime=25.0),
                LossBurst(at=10.0, duration=40.0, rate=0.2),
            ],
            name="det",
        )
        first = SimHarness(schedule=schedule, seed=7).run()
        second = SimHarness(
            schedule=NemesisSchedule.from_json(schedule.to_json()), seed=7
        ).run()
        assert first.to_json() == second.to_json()
        assert first.fingerprint() == second.fingerprint()


class TestCompactionCrashes:
    """Satellite: a crash anywhere inside ExecutionService.compact() must
    land recovery on the pre- or post-compaction journal — never on a
    half-compacted store."""

    @pytest.mark.parametrize(
        "point",
        [
            "exec.compact.pre",
            "wal.checkpoint.pre",
            "wal.checkpoint.forced",
            "wal.checkpoint.post",
            "exec.compact.post",
        ],
    )
    def test_crash_during_compaction_recovers_whole(self, point):
        schedule = NemesisSchedule(
            [CrashAtPoint(point, downtime=30.0)], name=f"compact:{point}"
        )
        harness = SimHarness(schedule=schedule, compact_every=40.0)
        report = harness.run()
        assert report.ok, report.violations
        assert ["%s" % point, "execution-node"] in report.fired
        assert all(
            info["status"] == "completed" for info in report.instances.values()
        )
        # the recovered store must agree with its own durable log and keep a
        # contiguous journal (the oracles already enforced this at recovery
        # and quiescence; spot-check the final state explicitly here)
        store = harness._system.execution_store
        assert not oracles.check_store_agreement(store)
        assert not oracles.check_journal_integrity(store)


class TestTwoPhaseCommitProbe:
    @pytest.mark.parametrize(
        "point",
        [
            "store.prepare.pre",
            "store.prepare.post",
            "txn.2pc.prepared",
            "txn.2pc.decided",
            "store.abort.pre",
        ],
    )
    def test_probe_counters_never_diverge_across_2pc_crashes(self, point):
        schedule = NemesisSchedule(
            [CrashAtPoint(point, downtime=30.0)], name=f"2pc:{point}"
        )
        harness = SimHarness(schedule=schedule, probe_every=15.0)
        report = harness.run()
        assert report.ok, report.violations
        assert ["%s" % point, "execution-node"] in report.fired
        store_a, store_b = harness._probe_stores
        assert store_a.get_committed("probe-counter", 0) == \
            store_b.get_committed("probe-counter", 0)
        assert not list(store_a.in_doubt())
        assert not list(store_b.in_doubt())


class TestExhaustiveSweep:
    def test_every_crash_point_fires_and_no_oracle_trips(self):
        sweep = ChaosSweep()
        result = sweep.exhaustive()
        torn_variants = sum(1 for p in catalogue() if p.torn)
        assert len(result.reports) == len(catalogue()) + torn_variants
        assert result.unreached == []
        assert result.ok, result.summary()

    def test_plan_for_point_policies(self):
        sweep = ChaosSweep()
        # recovery-only points get a paired driver crash
        schedule, kwargs = sweep.plan_for_point(point_named("exec.recover.pre"))
        assert [f.point for f in schedule.crash_faults()] == [
            "exec.journal.post", "exec.recover.pre",
        ]
        # compaction points enable the compactor
        _, kwargs = sweep.plan_for_point(point_named("exec.compact.pre"))
        assert kwargs["compact_every"]
        # 2PC points enable the probe
        _, kwargs = sweep.plan_for_point(point_named("txn.2pc.prepared"))
        assert kwargs["probe_every"]
        # the mark point reroutes to the trip workload (order emits no marks)
        _, kwargs = sweep.plan_for_point(point_named("exec.mark.recv"))
        assert kwargs["workload"] == "trip"


class TestRandomSweep:
    def test_random_schedules_are_seed_reproducible(self):
        sweep = ChaosSweep()
        assert sweep.random_schedule(11).faults == sweep.random_schedule(11).faults
        distinct = {
            json.dumps(sweep.random_schedule(s).to_plain(), sort_keys=True)
            for s in range(10)
        }
        assert len(distinct) > 1

    def test_small_random_sweep_passes_all_oracles(self):
        result = ChaosSweep(base_seed=3).random_sweep(6)
        assert len(result.reports) == 6
        assert result.ok, result.summary()


class _FakeSweep(ChaosSweep):
    """Shrinker unit-test double: a run 'violates' iff the schedule still
    contains a crash of worker-node-2."""

    def __init__(self):
        super().__init__()
        self.runs = 0

    def _run(self, schedule, kwargs):
        self.runs += 1
        bad = any(
            isinstance(f, CrashAtTime) and f.node == "worker-node-2"
            for f in schedule.faults
        )
        violations = (
            [{"oracle": "fake", "subject": "x", "detail": "boom", "phase": ""}]
            if bad else []
        )
        return SimReport(
            workload="order", seed=0, workers=2,
            schedule=schedule.to_plain(), instances={}, violations=violations,
        )


class TestShrinking:
    def test_greedy_shrink_isolates_the_culprit_fault(self):
        sweep = _FakeSweep()
        schedule = NemesisSchedule(
            [
                LossBurst(at=1.0, duration=5.0, rate=0.1),
                CrashAtTime(at=10.0, node="worker-node-2", downtime=30.0),
                DupBurst(at=2.0, duration=5.0, rate=0.3),
            ],
            name="triple",
        )
        shrunk, report = sweep.shrink(schedule, {})
        assert len(shrunk) == 1
        assert isinstance(shrunk.faults[0], CrashAtTime)
        assert shrunk.faults[0].node == "worker-node-2"
        assert report.violations

    def test_shrink_keeps_irreducible_schedule(self):
        sweep = _FakeSweep()
        schedule = NemesisSchedule(
            [CrashAtTime(at=10.0, node="worker-node-2", downtime=30.0)],
            name="single",
        )
        shrunk, _ = sweep.shrink(schedule, {})
        assert len(shrunk) == 1


class TestReproFiles:
    def test_violating_run_is_shrunk_recorded_and_replayed(
        self, tmp_path, monkeypatch
    ):
        """End-to-end repro pipeline with a synthetic invariant violation:
        a patched journal oracle always fires, the sweep shrinks the
        schedule to one fault, writes the repro file, and replay()
        reproduces the recorded report byte-for-byte."""

        def always_violates(store, phase=""):
            return [
                oracles.OracleViolation(
                    "journal-contiguity", "synthetic", "injected for test",
                    phase,
                )
            ]

        monkeypatch.setattr(oracles, "check_journal_integrity", always_violates)
        sweep = ChaosSweep(out_dir=str(tmp_path))
        schedule = NemesisSchedule(
            [
                CrashAtPoint("exec.journal.post", downtime=30.0),
                LossBurst(at=5.0, duration=20.0, rate=0.1),
            ],
            name="forced",
        )
        kwargs = sweep._harness_kwargs(seed=3)
        report = sweep._run(schedule, kwargs)
        assert report.violations
        failure = sweep._shrink_and_record(schedule, kwargs, report)
        assert failure.repro_path and os.path.exists(failure.repro_path)
        assert len(failure.schedule["faults"]) == 1  # shrunk to one fault
        with open(failure.repro_path, "r", encoding="utf-8") as fh:
            data = json.load(fh)
        assert data["fingerprint"] == failure.fingerprint
        reproduced, recorded, fresh, _ = replay(failure.repro_path)
        assert reproduced
        assert recorded == fresh

    def test_replay_detects_fingerprint_mismatch(self, tmp_path):
        schedule = NemesisSchedule(
            [CrashAtPoint("exec.reply.recv", downtime=30.0)], name="clean"
        )
        harness_kwargs = {
            "workload": "order", "workers": 2, "instances": 1,
            "seed": 5, "max_time": 5000.0,
        }
        report = SimHarness(schedule=schedule, **harness_kwargs).run()
        path = tmp_path / "repro.json"
        good = {
            "schedule": schedule.to_plain(),
            "harness": harness_kwargs,
            "fingerprint": report.fingerprint(),
        }
        path.write_text(json.dumps(good), encoding="utf-8")
        reproduced, recorded, fresh, _ = replay(str(path))
        assert reproduced and recorded == fresh

        good["fingerprint"] = "0" * 64
        path.write_text(json.dumps(good), encoding="utf-8")
        reproduced, recorded, fresh, _ = replay(str(path))
        assert not reproduced
        assert recorded != fresh
