"""Failover under the chaos stack: replication nemesis faults, the
replicated harness, its oracles, and the failover sweep
(docs/PROTOCOLS.md §12)."""

import pytest

from repro.sim.crashpoints import catalogue, point_named
from repro.sim.explorer import ChaosSweep

FAILOVER_WORKLOADS = ChaosSweep.FAILOVER_WORKLOADS
from repro.sim.harness import SimHarness
from repro.sim.nemesis import (
    KillPrimary,
    NemesisSchedule,
    PartitionPrimary,
    ResurrectStalePrimary,
    fault_from_plain,
    fault_to_plain,
)

REPLICATION_POINTS = [p.name for p in catalogue() if p.name.startswith("repl.")]


class TestReplicationFaults:
    def test_plain_forms_round_trip(self):
        faults = [
            KillPrimary(at=10.0, downtime=None),
            KillPrimary(at=10.0, downtime=30.0),
            PartitionPrimary(at=5.0, heal_after=60.0),
            PartitionPrimary(at=5.0, heal_after=None),
            ResurrectStalePrimary(at=200.0),
        ]
        for fault in faults:
            assert fault_from_plain(fault_to_plain(fault)) == fault
        schedule = NemesisSchedule(faults, name="repl-faults")
        assert NemesisSchedule.from_json(schedule.to_json()) == schedule

    def test_healability(self):
        # a permanently dead primary is healable iff someone resurrects it
        dead = NemesisSchedule([KillPrimary(at=10.0, downtime=None)])
        healed = NemesisSchedule(
            [KillPrimary(at=10.0, downtime=None), ResurrectStalePrimary(at=50.0)]
        )
        assert not SimHarness(schedule=dead, replicas=2)._healable()
        assert SimHarness(schedule=healed, replicas=2)._healable()
        # an unhealed partition never heals by itself
        cut = NemesisSchedule([PartitionPrimary(at=10.0, heal_after=None)])
        assert not SimHarness(schedule=cut, replicas=2)._healable()
        assert cut.network_quiet_at() == float("inf")


class TestReplicatedHarness:
    def test_kill_and_resurrect_completes_with_clean_oracles(self):
        schedule = NemesisSchedule(
            [KillPrimary(at=10.0, downtime=None), ResurrectStalePrimary(at=200.0)],
            name="kill-resurrect",
        )
        report = SimHarness(
            schedule=schedule, replicas=2, lease_duration=30.0, instances=2
        ).run()
        assert report.ok, report.violations
        assert all(
            info["status"] == "completed" for info in report.instances.values()
        )
        assert report.replicas == 2
        # exactly one replica ended up primary, on a fresh epoch
        roles = [s["role"] for s in report.replication.values()]
        assert roles.count("primary") == 1
        assert sum(s["promotions"] for s in report.replication.values()) >= 1
        assert max(s["epoch"] for s in report.replication.values()) >= 2
        assert any(c["point"] == "nemesis:kill-primary" for c in report.crashes)

    def test_partition_then_heal_completes(self):
        schedule = NemesisSchedule(
            [PartitionPrimary(at=10.0, heal_after=150.0)], name="cut-heal"
        )
        report = SimHarness(
            schedule=schedule, replicas=2, lease_duration=30.0
        ).run()
        assert report.ok, report.violations
        assert all(
            info["status"] == "completed" for info in report.instances.values()
        )
        # the isolated primary was fenced out, not forked: one primary at end
        roles = [s["role"] for s in report.replication.values()]
        assert roles.count("primary") == 1

    def test_replicated_run_is_deterministic(self):
        schedule = NemesisSchedule(
            [KillPrimary(at=10.0, downtime=60.0)], name="det-failover"
        )
        first = SimHarness(schedule=schedule, replicas=2, seed=13).run()
        second = SimHarness(
            schedule=NemesisSchedule.from_json(schedule.to_json()),
            replicas=2,
            seed=13,
        ).run()
        assert first.ok, first.violations
        assert first.fingerprint() == second.fingerprint()

    @pytest.mark.parametrize("workload", FAILOVER_WORKLOADS)
    def test_all_paper_workloads_survive_failover(self, workload):
        schedule = NemesisSchedule(
            [KillPrimary(at=10.0, downtime=None), ResurrectStalePrimary(at=200.0)],
            name="kill-resurrect",
        )
        report = SimHarness(
            schedule=schedule, replicas=2, lease_duration=30.0, workload=workload
        ).run()
        assert report.ok, report.violations
        assert all(
            info["status"] == "completed" for info in report.instances.values()
        )


class TestReplicationCrashPoints:
    def test_catalogue_declares_the_replication_points(self):
        assert set(REPLICATION_POINTS) == {
            "repl.lease.grant",
            "repl.tail.apply",
            "repl.promote.pre",
            "repl.promote.post",
        }
        assert point_named("repl.promote.pre").recovery
        assert point_named("repl.promote.post").recovery

    def test_plans_for_replication_points_use_replicas(self):
        sweep = ChaosSweep()
        for name in REPLICATION_POINTS:
            schedule, kwargs = sweep.plan_for_point(point_named(name))
            assert kwargs["replicas"] >= 2, name
            crashes = [f.point for f in schedule.crash_faults()]
            assert name in crashes
            if name != "repl.tail.apply":
                # a driver crash of the primary forces the grant/promotion
                # to happen after the injector is armed
                assert "exec.journal.post" in crashes, name

    @pytest.mark.parametrize("name", REPLICATION_POINTS)
    def test_each_replication_point_fires_clean(self, name):
        sweep = ChaosSweep()
        schedule, kwargs = sweep.plan_for_point(point_named(name))
        report = sweep._run(schedule, kwargs)
        assert report.ok, report.violations
        assert report.points_visited.get(name, 0) > 0, f"{name} never reached"


class TestFailoverSweep:
    def test_failover_sweep_clean_and_exhaustive(self):
        result = ChaosSweep().failover_sweep(replicas=2)
        # every workload x every failover schedule, no oracle violations,
        # and every replication crash point was reached at least once
        assert len(result.reports) == 3 * len(FAILOVER_WORKLOADS)
        assert result.unreached == []
        assert result.ok, result.summary()
