"""Journal batching and WAL group commit (docs/PROTOCOLS.md §11).

The I/O core coalesces journal appends into one transaction per durability
barrier and WAL mirror fsyncs into one sync per barrier.  These tests pin
the two properties that make that safe:

* **Equivalence** — the durable journal a batched run leaves behind is
  byte-identical to the per-entry run's, and replay lands on the same
  (status, outcome).  Batching changes *when* entries become durable,
  never *what* becomes durable.
* **Crash atomicity** — a crash (clean or torn) anywhere around a batch
  flush leaves a contiguous journal prefix; recovery replays it and the
  instance still completes.  The batch commits atomically or not at all.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.instrument import IOPATH_STATS
from repro.services import WorkflowSystem
from repro.sim.harness import SimHarness
from repro.sim.nemesis import CrashAtPoint, NemesisSchedule
from repro.workloads import fan, paper_order, script_text


def _run_fan(width, *, journal_batch, group_commit, seed=0):
    """Run fan(width) to completion; return (system, iid, result)."""
    script, registry, root, inputs = fan(width)
    system = WorkflowSystem(
        workers=3,
        seed=seed,
        registry=registry,
        journal_batch=journal_batch,
        group_commit=group_commit,
    )
    system.deploy("fan", script_text((script, registry, root, inputs)))
    iid = system.instantiate("fan", root, inputs)
    result = system.run_until_terminal(iid, max_time=50_000)
    return system, iid, result


def _durable_journal(system, iid):
    """The instance's durable journal as canonical bytes."""
    store = system.execution_store
    meta = store.get_committed(f"instance:{iid}:meta")
    entries = store.get_committed_many(
        f"instance:{iid}:journal:{n}" for n in range(meta["journal_len"])
    )
    assert None not in entries, "durable journal has holes"
    return json.dumps(entries, sort_keys=True).encode()


def _replay_fingerprint(system, iid):
    shadow = system.execution._replay(iid)
    return (shadow.tree.status.value, shadow.tree.root.machine.outcome)


class TestDifferentialEquivalence:
    """Batched vs per-entry journalling must be observationally identical."""

    @pytest.mark.parametrize("width", [1, 4, 16])
    def test_fan_journals_byte_identical(self, width):
        batched_sys, batched_iid, batched = _run_fan(
            width, journal_batch=True, group_commit=True
        )
        plain_sys, plain_iid, plain = _run_fan(
            width, journal_batch=False, group_commit=False
        )
        assert batched["status"] == plain["status"] == "completed"
        assert batched["outcome"] == plain["outcome"]
        assert _durable_journal(batched_sys, batched_iid) == _durable_journal(
            plain_sys, plain_iid
        )
        assert _replay_fingerprint(batched_sys, batched_iid) == _replay_fingerprint(
            plain_sys, plain_iid
        )

    def test_paper_order_journals_byte_identical(self):
        results = {}
        for mode, batch in (("batched", True), ("plain", False)):
            system = WorkflowSystem(
                workers=2, seed=3, journal_batch=batch, group_commit=batch
            )
            paper_order.default_registry(registry=system.registry)
            system.deploy("order", paper_order.SCRIPT_TEXT)
            iid = system.instantiate(
                "order", paper_order.ROOT_TASK, {"order": "o-1"}
            )
            result = system.run_until_terminal(iid, max_time=50_000)
            assert result["status"] == "completed"
            results[mode] = (
                _durable_journal(system, iid),
                _replay_fingerprint(system, iid),
                result["outcome"],
            )
        assert results["batched"] == results["plain"]

    @settings(max_examples=6, deadline=None)
    @given(width=st.integers(min_value=1, max_value=8), seed=st.integers(0, 1000))
    def test_hypothesis_differential(self, width, seed):
        """Random widths and network seeds: the batched journal is always
        byte-identical to the per-entry journal of the same universe."""
        batched_sys, batched_iid, batched = _run_fan(
            width, journal_batch=True, group_commit=True, seed=seed
        )
        plain_sys, plain_iid, plain = _run_fan(
            width, journal_batch=False, group_commit=False, seed=seed
        )
        assert batched["status"] == plain["status"] == "completed"
        assert _durable_journal(batched_sys, batched_iid) == _durable_journal(
            plain_sys, plain_iid
        )


class TestBatchingActuallyBatches:
    def test_fewer_txns_and_syncs_than_entries(self):
        IOPATH_STATS.reset()
        _, _, result = _run_fan(64, journal_batch=True, group_commit=True)
        assert result["status"] == "completed"
        # per-entry mode commits one forced txn per entry (one sync each);
        # batched, the whole fan settles in a handful of flush transactions
        assert IOPATH_STATS.journal_entries > 64
        assert IOPATH_STATS.journal_batches * 4 <= IOPATH_STATS.journal_entries
        assert IOPATH_STATS.wal_syncs * 4 <= IOPATH_STATS.journal_entries

    def test_per_entry_mode_one_txn_per_entry(self):
        IOPATH_STATS.reset()
        _, _, result = _run_fan(4, journal_batch=False, group_commit=False)
        assert result["status"] == "completed"
        assert IOPATH_STATS.journal_batches == IOPATH_STATS.journal_entries


class TestTornGroupCommit:
    """Crashes aimed at the batch flush itself: the force that carries a
    whole buffered batch is torn mid-write, or the node dies with entries
    still buffered.  Contiguity, exactly-once, replay and durability oracles
    all run inside SimHarness."""

    @pytest.mark.parametrize("at_hit", [1, 2, 3])
    def test_torn_force_during_batch_flush(self, at_hit):
        schedule = NemesisSchedule(
            [CrashAtPoint("wal.force.pre", mode="torn", at_hit=at_hit)],
            name=f"torn-batch-{at_hit}",
        )
        report = SimHarness(schedule=schedule).run()
        assert report.ok, report.violations
        assert report.crashes[0]["mode"] == "torn"
        assert all(
            info["status"] == "completed" for info in report.instances.values()
        )

    @pytest.mark.parametrize("at_hit", [1, 4])
    def test_crash_with_entries_still_buffered(self, at_hit):
        """exec.journal.pre fires at buffer time — before the entry reaches
        any transaction.  Crashing there drops the buffered tail; recovery
        replays the shorter durable journal and the instance recovers."""
        schedule = NemesisSchedule(
            [CrashAtPoint("exec.journal.pre", at_hit=at_hit, downtime=30.0)],
            name=f"buffered-crash-{at_hit}",
        )
        report = SimHarness(schedule=schedule).run()
        assert report.ok, report.violations
        assert all(
            info["status"] == "completed" for info in report.instances.values()
        )

    def test_crash_right_after_batch_flush(self):
        schedule = NemesisSchedule(
            [CrashAtPoint("exec.journal.post", at_hit=2, downtime=30.0)],
            name="post-flush-crash",
        )
        report = SimHarness(schedule=schedule).run()
        assert report.ok, report.violations
