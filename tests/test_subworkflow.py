"""Tests for scripts used as task implementations (§4.4: a compound task
"used to specify a task implementation")."""

import pytest

from repro.core import ScriptBuilder, from_input, from_output
from repro.engine import ImplementationRegistry, LocalEngine, WorkflowStatus, outcome
from repro.services import WorkflowSystem
from repro.lang import format_script


def outer_script():
    """A workflow whose single task is implemented by another script."""
    b = ScriptBuilder()
    b.object_class("Data")
    b.taskclass("Work").input_set("main", inp="Data").outcome("done", out="Data")
    b.taskclass("Root").input_set("main", inp="Data").outcome("done", out="Data")
    c = b.compound("outer", "Root")
    c.task("worker", "Work").implementation(code="subflow").input(
        "main", "inp", from_input("outer", "main", "inp")
    ).up()
    c.output("done").object("out", from_output("worker", "done", "out")).up()
    c.up()
    return b.build()


def inner_script():
    """The implementation: same task class signature, two internal stages."""
    b = ScriptBuilder()
    b.object_class("Data")
    b.taskclass("Stage").input_set("main", inp="Data").outcome("done", out="Data")
    b.taskclass("Work").input_set("main", inp="Data").outcome("done", out="Data")
    c = b.compound("inner", "Work")
    c.task("s1", "Stage").implementation(code="stage").input(
        "main", "inp", from_input("inner", "main", "inp")
    ).up()
    c.task("s2", "Stage").implementation(code="stage").input(
        "main", "inp", from_output("s1", "done", "out")
    ).up()
    c.output("done").object("out", from_output("s2", "done", "out")).up()
    c.up()
    return b.build()


@pytest.fixture
def registry():
    reg = ImplementationRegistry()
    reg.register("stage", lambda ctx: outcome("done", out=f"[{ctx.value('inp')}]"))
    reg.register_script("subflow", inner_script())
    return reg


class TestLocalSubWorkflow:
    def test_sub_workflow_runs_and_maps_outcome(self, registry):
        result = LocalEngine(registry).run(outer_script(), inputs={"inp": "x"})
        assert result.completed
        assert result.value("out") == "[[x]]"

    def test_sub_workflow_failure_propagates(self):
        reg = ImplementationRegistry()
        reg.register("stage", lambda ctx: outcome("ghostOutcome"))
        reg.register_script("subflow", inner_script())
        result = LocalEngine(reg, default_retries=0).run(
            outer_script(), inputs={"inp": "x"}
        )
        assert result.status is WorkflowStatus.FAILED

    def test_register_script_needs_unique_or_named_task(self):
        reg = ImplementationRegistry()
        two = inner_script()
        two.add_task(two.tasks["inner"].tasks[0])  # add a second top-level task
        with pytest.raises(Exception):
            reg.register_script("x", two)
        reg.register_script("x", two, task_name="inner")

    def test_online_upgrade_rebinding(self, registry):
        # §3: swap the implementation without touching the script
        result1 = LocalEngine(registry).run(outer_script(), inputs={"inp": "x"})
        registry.register("subflow", lambda ctx: outcome("done", out="direct"))
        result2 = LocalEngine(registry).run(outer_script(), inputs={"inp": "x"})
        assert result1.value("out") == "[[x]]"
        assert result2.value("out") == "direct"


class TestDistributedSubWorkflow:
    def test_worker_runs_script_binding(self, registry):
        system = WorkflowSystem(workers=2, registry=registry)
        system.deploy("outer", format_script(outer_script()))
        iid = system.instantiate("outer", "outer", {"inp": "y"})
        result = system.run_until_terminal(iid)
        assert result["status"] == "completed"
        assert result["objects"]["out"]["value"] == "[[y]]"
