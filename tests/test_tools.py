"""Tests for the tooling layer: DOT export, trace rendering, CLI."""

import pytest

from repro.cli import main
from repro.engine import LocalEngine
from repro.engine.trace import render_summary, render_trace
from repro.lang.dot import to_dot
from repro.workloads import paper_order, paper_trip


class TestDotExport:
    def test_order_app_renders(self):
        dot = to_dot(paper_order.build())
        assert dot.startswith('digraph "processOrderApplication"')
        for task in ("paymentAuthorisation", "checkStock", "dispatch", "paymentCapture"):
            assert f'"{task}"' in dot

    def test_dataflow_solid_notifications_dashed(self):
        dot = to_dot(paper_order.build())
        assert "style=solid" in dot
        assert "style=dashed" in dot

    def test_atomic_task_double_bordered(self):
        # dispatch is atomic (abort outcome) -> Fig. 2's double border
        dot = to_dot(paper_order.build())
        dispatch_line = next(
            line for line in dot.splitlines() if '"processOrderApplication/dispatch"' in line and "label" in line
        )
        assert "peripheries=2" in dispatch_line

    def test_mark_task_dotted(self):
        dot = to_dot(paper_trip.build())
        fr_line = next(
            line
            for line in dot.splitlines()
            if "flightReservation" in line and "label" in line and "Cancel" not in line
        )
        assert "style=dotted" in fr_line

    def test_nested_compounds_become_clusters(self):
        dot = to_dot(paper_trip.build())
        assert dot.count("subgraph cluster_") == 3  # trip, BR, CFR

    def test_named_task_selection(self):
        script = paper_order.build()
        dot = to_dot(script, "processOrderApplication")
        assert "processOrderApplication" in dot

    def test_multiple_roots_require_name(self):
        script = paper_order.build()
        script.add_task(script.tasks["processOrderApplication"].tasks[0])
        with pytest.raises(ValueError):
            to_dot(script)


class TestTraceRendering:
    def result(self):
        return LocalEngine(paper_order.default_registry()).run(
            paper_order.build(), inputs={"order": "o-1"}
        )

    def test_trace_contains_every_event(self):
        result = self.result()
        trace = render_trace(result.log)
        assert len(trace.splitlines()) == len(result.log)
        assert "outcome:orderCompleted" in trace

    def test_trace_shows_objects(self):
        trace = render_trace(self.result().log)
        assert "order='o-1'" in trace

    def test_summary_counts(self):
        summary = render_summary(self.result().log)
        assert "processOrderApplication/dispatch" in summary
        assert "orderCompleted" in summary

    def test_summary_marks_and_repeats(self):
        result = LocalEngine(paper_trip.default_registry()).run(
            paper_trip.build(), inputs={"user": "u"}
        )
        summary = render_summary(result.log)
        assert "hotelReservation" in summary
        lines = [l for l in summary.splitlines() if "hotelReservation" in l]
        assert lines and " 2 " in lines[0] or "2" in lines[0]  # repeats counted


class TestCli:
    @pytest.fixture
    def script_file(self, tmp_path):
        path = tmp_path / "order.wf"
        path.write_text(paper_order.SCRIPT_TEXT, encoding="utf-8")
        return str(path)

    def test_validate_ok(self, script_file, capsys):
        assert main(["validate", script_file]) == 0
        assert "OK:" in capsys.readouterr().out

    def test_validate_bad_script(self, tmp_path, capsys):
        bad = tmp_path / "bad.wf"
        bad.write_text("task t of taskclass Ghost { }", encoding="utf-8")
        assert main(["validate", str(bad)]) == 1
        assert "INVALID" in capsys.readouterr().err

    def test_format_prints_canonical_text(self, script_file, capsys):
        assert main(["format", script_file]) == 0
        out = capsys.readouterr().out
        assert "compoundtask processOrderApplication" in out

    def test_format_in_place(self, script_file):
        assert main(["format", script_file, "--in-place"]) == 0
        with open(script_file, encoding="utf-8") as fh:
            text = fh.read()
        assert text.startswith("class Order;")

    def test_inspect(self, script_file, capsys):
        assert main(["inspect", script_file]) == 0
        out = capsys.readouterr().out
        assert "4 constituents" in out

    def test_dot(self, script_file, capsys):
        assert main(["dot", script_file]) == 0
        assert capsys.readouterr().out.startswith("digraph")

    @pytest.mark.parametrize("demo", ["order", "trip", "service-impact"])
    def test_demo(self, demo, capsys):
        assert main(["demo", demo]) == 0
        out = capsys.readouterr().out
        assert "outcome:" in out
