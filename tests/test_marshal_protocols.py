"""Additional coverage for ORB marshalling protocols: transferable
dataclasses, the __marshal__/__unmarshal__ hook, structural copies of
tuple/dict subclasses (namedtuples and registered containers), and the
zero-copy fast path for deeply immutable values (docs/PROTOCOLS.md §11)."""

import collections
import dataclasses
import typing

import pytest

from repro.orb import MarshalError, is_transferable, marshal, marshal_call, transferable
from repro.orb.marshal import set_fast_path


@transferable
@dataclasses.dataclass(frozen=True)
class Money:
    currency: str
    amount: float


@transferable
class Envelope:
    """Non-dataclass transferable via the explicit protocol."""

    def __init__(self, inner):
        self.inner = inner

    def __marshal__(self):
        return {"inner": self.inner}

    @classmethod
    def __unmarshal__(cls, state):
        return cls(state["inner"])

    def __eq__(self, other):
        return isinstance(other, Envelope) and other.inner == self.inner


class TestTransferableDataclasses:
    def test_registered(self):
        assert is_transferable(Money)

    def test_frozen_immutable_passes_by_reference(self):
        """Zero-copy fast path: a frozen dataclass whose fields are all
        immutable is indistinguishable shared or copied, so marshal returns
        it by reference."""
        original = Money("EUR", 12.5)
        copy = marshal(original)
        assert copy == original
        assert copy is original

    def test_nested_inside_containers(self):
        data = {"payments": [Money("EUR", 1.0), Money("USD", 2.0)]}
        copy = marshal(data)
        assert copy == data
        assert copy["payments"][0] is data["payments"][0]  # immutable leaf
        assert copy["payments"] is not data["payments"]  # mutable list copied

    def test_frozen_with_mutable_field_still_copied(self):
        @transferable
        @dataclasses.dataclass(frozen=True)
        class Basket:
            items: list

        original = Basket([1, 2])
        copy = marshal(original)
        assert copy == original
        assert copy is not original
        assert copy.items is not original.items

    def test_mutable_dataclass_still_copied(self):
        @transferable
        @dataclasses.dataclass
        class Counter:
            n: int

        original = Counter(3)
        copy = marshal(original)
        assert copy == original
        assert copy is not original


class TestZeroCopyFastPath:
    def test_immutable_tuple_by_reference(self):
        value = (1, "a", (2.5, None), frozenset({"x"}))
        assert marshal(value) is value

    def test_tuple_with_mutable_member_copied(self):
        value = (1, [2])
        copy = marshal(value)
        assert copy == value
        assert copy is not value
        assert copy[1] is not value[1]

    def test_fast_path_disabled_restores_structural_copy(self):
        value = (1, (2, 3))
        set_fast_path(False)
        try:
            copy = marshal(value)
            assert copy == value
            assert copy is not value
            assert marshal(Money("EUR", 1.0)) is not Money  # sanity: still works
        finally:
            set_fast_path(True)
        assert marshal(value) is value

    def test_late_registration_invalidates_dispatch_cache(self):
        """A type first marshalled (and rejected) before registration must be
        re-classified after @transferable — the memoized dispatch cache may
        not serve the stale 'unmarshalable' handler."""

        @dataclasses.dataclass(frozen=True)
        class LateComer:
            tag: str

        with pytest.raises(MarshalError):
            marshal(LateComer("early"))

        transferable(LateComer)
        copy = marshal(LateComer("late"))
        assert copy == LateComer("late")

    def test_late_registration_of_dict_subclass(self):
        """An unregistered dict subclass decays to plain dict; registering it
        afterwards must flip the cached handler to type-preserving."""

        class LateHeaders(dict):
            pass

        assert type(marshal(LateHeaders({"a": 1}))) is dict
        transferable(LateHeaders)
        assert type(marshal(LateHeaders({"a": 1}))) is LateHeaders


class TestMarshalProtocol:
    def test_roundtrip_through_protocol(self):
        env = Envelope({"k": [1, 2]})
        copy = marshal(env)
        assert copy == env
        copy.inner["k"].append(3)
        assert env.inner["k"] == [1, 2]  # deep copy

    def test_unregistered_class_rejected(self):
        class Opaque:
            pass

        with pytest.raises(MarshalError):
            marshal([Opaque()])


Point = collections.namedtuple("Point", ["x", "y"])


class TypedPoint(typing.NamedTuple):
    x: int
    payload: list


@transferable
class Headers(dict):
    """Registered dict subclass: the subclass type must survive the copy."""


class AnonymousBag(dict):
    """Unregistered dict subclass: decays to a plain dict on the far side."""


class TestTupleSubclasses:
    def test_namedtuple_deep_copy(self):
        """Regression: namedtuple constructors take fields positionally, so
        ``type(value)(copied_list)`` raised TypeError (missing arguments)."""
        original = Point(1, [2, 3])
        copy = marshal(original)
        assert type(copy) is Point
        assert copy == original
        copy.y.append(4)
        assert original.y == [2, 3]

    def test_typing_namedtuple_deep_copy(self):
        original = TypedPoint(7, ["a"])
        copy = marshal(original)
        assert type(copy) is TypedPoint
        assert copy == original
        assert copy.payload is not original.payload

    def test_namedtuple_nested_in_containers(self):
        data = {"points": (Point(0, []), Point(1, []))}
        copy = marshal(data)
        assert copy == data
        assert type(copy["points"][0]) is Point


class TestDictSubclasses:
    def test_registered_subclass_type_preserved(self):
        """Regression: registered dict subclasses silently decayed to plain
        dicts because the dict branch never consulted the registry."""
        original = Headers({"a": [1]})
        copy = marshal(original)
        assert type(copy) is Headers
        assert copy == {"a": [1]}
        copy["a"].append(2)
        assert original["a"] == [1]

    def test_unregistered_subclass_decays_to_plain_dict(self):
        copy = marshal(AnonymousBag({"k": "v"}))
        assert type(copy) is dict
        assert copy == {"k": "v"}


class TestMarshalCall:
    def test_args_and_kwargs_copied(self):
        args, kwargs = marshal_call((Money("EUR", 3.0),), {"note": "hi"})
        assert args[0] == Money("EUR", 3.0)
        assert kwargs == {"note": "hi"}

    def test_unmarshalable_kwarg_rejected(self):
        class Opaque:
            pass

        with pytest.raises(MarshalError):
            marshal_call((), {"bad": Opaque()})
