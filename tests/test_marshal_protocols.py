"""Additional coverage for ORB marshalling protocols: transferable
dataclasses and the __marshal__/__unmarshal__ hook."""

import dataclasses

import pytest

from repro.orb import MarshalError, is_transferable, marshal, marshal_call, transferable


@transferable
@dataclasses.dataclass(frozen=True)
class Money:
    currency: str
    amount: float


@transferable
class Envelope:
    """Non-dataclass transferable via the explicit protocol."""

    def __init__(self, inner):
        self.inner = inner

    def __marshal__(self):
        return {"inner": self.inner}

    @classmethod
    def __unmarshal__(cls, state):
        return cls(state["inner"])

    def __eq__(self, other):
        return isinstance(other, Envelope) and other.inner == self.inner


class TestTransferableDataclasses:
    def test_registered(self):
        assert is_transferable(Money)

    def test_copied_field_by_field(self):
        original = Money("EUR", 12.5)
        copy = marshal(original)
        assert copy == original
        assert copy is not original

    def test_nested_inside_containers(self):
        data = {"payments": [Money("EUR", 1.0), Money("USD", 2.0)]}
        copy = marshal(data)
        assert copy == data
        assert copy["payments"][0] is not data["payments"][0]


class TestMarshalProtocol:
    def test_roundtrip_through_protocol(self):
        env = Envelope({"k": [1, 2]})
        copy = marshal(env)
        assert copy == env
        copy.inner["k"].append(3)
        assert env.inner["k"] == [1, 2]  # deep copy

    def test_unregistered_class_rejected(self):
        class Opaque:
            pass

        with pytest.raises(MarshalError):
            marshal([Opaque()])


class TestMarshalCall:
    def test_args_and_kwargs_copied(self):
        args, kwargs = marshal_call((Money("EUR", 3.0),), {"note": "hi"})
        assert args[0] == Money("EUR", 3.0)
        assert kwargs == {"note": "hi"}

    def test_unmarshalable_kwarg_rejected(self):
        class Opaque:
            pass

        with pytest.raises(MarshalError):
            marshal_call((), {"bad": Opaque()})
