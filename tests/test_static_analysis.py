"""The whole-script static analyser: registry, typeflow, liveness,
interference, SARIF rendering, CLI exit codes and strict admission.

The seeded race fixture at the bottom is the acceptance case: a script the
interference checker flags (W301) *and* whose raciness a concurrent-engine
stress test demonstrates with a barrier — both tasks really do run at the
same time.
"""

from __future__ import annotations

import json
import threading

import pytest
from jsonschema import validate as jsonschema_validate

from repro.analysis import (
    DIAGNOSTICS,
    DiagnosticRegistry,
    Severity,
    analyze_script,
    check_interference,
    check_liveness,
    check_typeflow,
    to_sarif,
)
from repro.core import ScriptBuilder, from_input, from_output
from repro.core.analysis import analyze_outcomes
from repro.core.errors import SchemaError
from repro.core.schema import Implementation, TaskDecl
from repro.engine import (
    ConcurrentEngine,
    ImplementationRegistry,
    LocalWorkflow,
    enabled_pairs,
    outcome,
)
from repro.lang import format_script
from repro.services.repository import RepositoryService
from repro.txn.store import ObjectStore


def codes(findings):
    return sorted(f.code for f in findings)


# -- the diagnostic registry ---------------------------------------------------


def test_registry_rejects_duplicate_and_retired_codes():
    reg = DiagnosticRegistry()
    reg.register("X001", Severity.ERROR, "t", "d")
    with pytest.raises(ValueError):
        reg.register("X001", Severity.WARNING, "t2", "d2")
    reg.retire("X002", "never shipped")
    with pytest.raises(ValueError):
        reg.register("X002", Severity.ERROR, "t", "d")
    with pytest.raises(ValueError):
        reg.retire("X001", "cannot retire a live code")


def test_registry_require_raises_on_unknown_and_retired():
    with pytest.raises(KeyError):
        DIAGNOSTICS.require("W999")
    for retired in ("W004", "W006"):
        assert retired not in DIAGNOSTICS
        with pytest.raises(KeyError):
            DIAGNOSTICS.require(retired)
    assert set(DIAGNOSTICS.retired()) == {"W004", "W006"}


def test_registry_covers_every_emitted_family():
    live = {spec.code for spec in DIAGNOSTICS.specs()}
    assert {"W001", "W002", "W003", "W005", "W007", "W008"} <= live
    assert {"E101", "E104", "E105", "E106", "E107", "E108"} <= live
    assert {"E200", "E201", "E202", "E203", "E204", "W301"} <= live


def test_rule_index_matches_specs_order():
    for index, spec in enumerate(DIAGNOSTICS.specs()):
        assert DIAGNOSTICS.rule_index(spec.code) == index


# -- typeflow (E1xx) -----------------------------------------------------------


def _chain_builder():
    b = ScriptBuilder()
    b.object_class("Data")
    b.object_class("Other")
    b.taskclass("T").input_set("main", inp="Data").outcome("ok", out="Data")
    b.taskclass("Root").input_set("main", inp="Data").outcome("done", out="Data")
    return b


def test_typeflow_unknown_producer():
    b = _chain_builder()
    c = b.compound("wf", "Root")
    c.task("t", "T").implementation(code="x").input(
        "main", "inp", from_output("ghost", "ok", "out")
    ).up()
    c.output("done").object("out", from_output("t", "ok", "out")).up()
    c.up()
    findings = check_typeflow(b.build(validate=False))
    assert "E101" in codes(findings)


def test_typeflow_class_mismatch():
    b = _chain_builder()
    b.taskclass("U").input_set("main", inp="Other").outcome("ok", out="Other")
    c = b.compound("wf", "Root")
    c.task("t", "T").implementation(code="x").input(
        "main", "inp", from_input("wf", "main", "inp")
    ).up()
    # u expects Other but t.ok carries Data — not a subclass
    c.task("u", "U").implementation(code="x").input(
        "main", "inp", from_output("t", "ok", "out")
    ).up()
    c.output("done").object("out", from_output("t", "ok", "out")).up()
    c.up()
    findings = check_typeflow(b.build(validate=False))
    assert "E104" in codes(findings)


def test_typeflow_repeat_privacy():
    b = _chain_builder()
    b.taskclass("R").input_set("main", inp="Data").outcome(
        "ok", out="Data"
    ).repeat_outcome("again", partial="Data")
    c = b.compound("wf", "Root")
    c.task("t", "R").implementation(code="x").input(
        "main", "inp", from_input("wf", "main", "inp")
    ).up()
    # repeat objects are private to their producer (§4.2)
    c.task("u", "T").implementation(code="x").input(
        "main", "inp", from_output("t", "again", "partial")
    ).up()
    c.output("done").object("out", from_output("t", "ok", "out")).up()
    c.up()
    findings = check_typeflow(b.build(validate=False))
    assert "E105" in codes(findings)


def test_typeflow_checks_template_bodies():
    b = _chain_builder()
    # a template whose body names a taskclass that does not exist
    b.template(
        "broken",
        ("peer",),
        TaskDecl("inner", "NoSuchClass", Implementation.of(code="x")),
    )
    findings = check_typeflow(b.build(validate=False))
    assert any(
        f.code == "E107" and "template" in f.location for f in findings
    )


def test_typeflow_clean_on_valid_script():
    b = _chain_builder()
    c = b.compound("wf", "Root")
    c.task("t", "T").implementation(code="x").input(
        "main", "inp", from_input("wf", "main", "inp")
    ).up()
    c.output("done").object("out", from_output("t", "ok", "out")).up()
    c.up()
    assert check_typeflow(b.build()) == []


# -- liveness / stalls (E2xx) --------------------------------------------------


def _ghost_script():
    """Fig. 7-style defect: an output mapping requiring two mutually
    exclusive outcomes of the same task."""
    b = ScriptBuilder()
    b.object_class("Data")
    b.taskclass("T").input_set("main").outcome("ok", out="Data").outcome("nope")
    b.taskclass("Root").input_set("main").outcome("done", out="Data").outcome(
        "ghostPath"
    )
    c = b.compound("wf", "Root")
    c.task("t", "T").implementation(code="x").notify(
        "main", from_input("wf", "main")
    ).up()
    c.output("done").object("out", from_output("t", "ok", "out")).up()
    c.output("ghostPath").notify(from_output("t", "ok")).notify(
        from_output("t", "nope")
    ).up()
    c.up()
    return b.build()


def test_liveness_unreachable_outcome_ghost_path():
    result = check_liveness(_ghost_script())
    assert result.unreachable_outcomes == ["ghostPath"]
    assert "E202" in codes(result.findings)
    assert sorted(result.reachable_outcomes) == ["done"]


def test_liveness_agrees_with_dynamic_explorer_on_ghost_path():
    script = _ghost_script()
    static = check_liveness(script)
    dynamic = analyze_outcomes(script, "wf")
    assert set(static.reachable_outcomes) == set(dynamic.reachable)
    assert set(static.unreachable_outcomes) == set(dynamic.unreachable)


@pytest.mark.parametrize("workload", ["paper_order", "paper_trip", "paper_service_impact"])
def test_static_agrees_with_dynamic_on_paper_workloads(workload):
    """Acceptance: on all three paper workloads the static verdict matches
    the dynamic explorer exactly — same reachable and unreachable sets."""
    import importlib

    module = importlib.import_module(f"repro.workloads.{workload}")
    script = module.build()
    static = check_liveness(script)
    dynamic = analyze_outcomes(script, None)
    assert set(static.reachable_outcomes) == set(dynamic.reachable)
    assert set(static.unreachable_outcomes) == set(dynamic.unreachable)
    assert static.dead_tasks == []


def test_liveness_dead_cycle():
    b = _chain_builder()
    c = b.compound("wf", "Root")
    c.task("a", "T").implementation(code="x").input(
        "main", "inp", from_input("wf", "main", "inp")
    ).up()
    c.task("b", "T").implementation(code="x").input(
        "main", "inp", from_output("c", "ok", "out")
    ).up()
    c.task("c", "T").implementation(code="x").input(
        "main", "inp", from_output("b", "ok", "out")
    ).up()
    c.output("done").object("out", from_output("a", "ok", "out")).up()
    c.up()
    result = check_liveness(b.build())
    assert result.dead_tasks == ["wf/b", "wf/c"]
    assert codes(result.findings).count("E201") == 2


def test_liveness_guaranteed_stall():
    b = _chain_builder()
    c = b.compound("wf", "Root")
    c.task("a", "T").implementation(code="x").input(
        "main", "inp", from_output("b", "ok", "out")
    ).up()
    c.task("b", "T").implementation(code="x").input(
        "main", "inp", from_output("a", "ok", "out")
    ).up()
    c.output("done").object("out", from_output("b", "ok", "out")).up()
    c.up()
    result = check_liveness(b.build())
    assert "E200" in codes(result.findings)
    assert not result.reachable_outcomes


def test_liveness_unsatisfiable_input_set():
    b = ScriptBuilder()
    b.object_class("Data")
    b.taskclass("T").input_set("main").outcome("ok", out="Data").outcome("nope")
    b.taskclass("Two").input_set("main", inp="Data").input_set(
        "alt"
    ).outcome("ok", out="Data")
    b.taskclass("Root").input_set("main").outcome("done", out="Data")
    c = b.compound("wf", "Root")
    c.task("t", "T").implementation(code="x").notify(
        "main", from_input("wf", "main")
    ).up()
    two = c.task("two", "Two").implementation(code="x")
    two.input("main", "inp", from_output("t", "ok", "out"))
    # 'alt' needs t.ok AND t.nope together: mutually exclusive finals
    two.notify("alt", from_output("t", "ok"))
    two.notify("alt", from_output("t", "nope"))
    two.up()
    c.output("done").object("out", from_output("two", "ok", "out")).up()
    c.up()
    result = check_liveness(b.build())
    assert "E203" in codes(result.findings)
    assert "wf/two" not in result.dead_tasks  # startable via 'main'


def test_liveness_dead_output_mapping_of_nested_compound():
    b = ScriptBuilder()
    b.object_class("Data")
    b.taskclass("T").input_set("main").outcome("ok", out="Data").outcome("nope")
    b.taskclass("Inner").input_set("main").outcome("fine", out="Data").outcome(
        "never"
    )
    b.taskclass("Root").input_set("main").outcome("done", out="Data")
    c = b.compound("wf", "Root")
    inner = c.compound("in", "Inner").notify("main", from_input("wf", "main"))
    inner.task("t", "T").implementation(code="x").notify(
        "main", from_input("in", "main")
    ).up()
    inner.output("fine").object("out", from_output("t", "ok", "out")).up()
    inner.output("never").notify(from_output("t", "ok")).notify(
        from_output("t", "nope")
    ).up()
    inner.up()
    c.output("done").object("out", from_output("in", "fine", "out")).up()
    c.up()
    result = check_liveness(b.build())
    assert any(
        f.code == "E204" and "never" in f.message for f in result.findings
    )


# -- concurrency interference (W3xx) -------------------------------------------


def _fanout_script(n=2, ordered=False):
    """n tasks all consuming the environment's 'inp' object; with
    ``ordered`` each waits for its predecessor's outcome notification."""
    b = ScriptBuilder()
    b.object_class("Data")
    b.taskclass("T").input_set("main", inp="Data").outcome("ok", out="Data")
    b.taskclass("Root").input_set("main", inp="Data").outcome("done", out="Data")
    c = b.compound("wf", "Root")
    for i in range(n):
        t = c.task(f"t{i + 1}", "T").implementation(code=f"impl{i + 1}")
        t.input("main", "inp", from_input("wf", "main", "inp"))
        if ordered and i > 0:
            t.notify("main", from_output(f"t{i}", "ok"))
        t.up()
    c.output("done").object("out", from_output(f"t{n}", "ok", "out")).up()
    c.up()
    return b.build()


def test_interference_flags_parallel_shared_object():
    findings = check_interference(_fanout_script(2))
    assert codes(findings) == ["W301"]
    (finding,) = findings
    assert set(finding.related) == {"wf/t1", "wf/t2"}
    assert "'inp' from <env>" in finding.message


def test_interference_silent_when_ordered():
    # the notification edge orders t1 before t2: no race despite sharing
    assert check_interference(_fanout_script(2, ordered=True)) == []


def test_interference_silent_on_pure_chain(pipeline_script):
    assert check_interference(pipeline_script) == []


def test_observed_enabled_pairs_are_statically_predicted():
    """Every pair the concurrent engine would hand out together must be a
    W301 pair (here every task shares the env object, so may-concurrent
    equals must-report)."""
    script = _fanout_script(3)
    static_pairs = {
        frozenset(f.related) for f in check_interference(script)
    }
    registry = ImplementationRegistry()
    for i in range(3):
        registry.register(
            f"impl{i + 1}", lambda ctx: outcome("ok", out=ctx.value("inp"))
        )
    wf = LocalWorkflow(script, "wf", registry)
    wf.start({"inp": "x"})
    observed = set()
    observed |= enabled_pairs(wf.tree)
    while wf.step():
        observed |= enabled_pairs(wf.tree)
    assert observed  # the fan-out really is concurrent
    assert observed <= static_pairs


# -- SARIF rendering -----------------------------------------------------------

# Subset of the official SARIF 2.1.0 schema (not vendored in this offline
# environment): the structural requirements CI ingestion relies on.
SARIF_SUBSET_SCHEMA = {
    "type": "object",
    "required": ["version", "runs"],
    "properties": {
        "version": {"const": "2.1.0"},
        "$schema": {"type": "string"},
        "runs": {
            "type": "array",
            "minItems": 1,
            "items": {
                "type": "object",
                "required": ["tool", "results"],
                "properties": {
                    "tool": {
                        "type": "object",
                        "required": ["driver"],
                        "properties": {
                            "driver": {
                                "type": "object",
                                "required": ["name"],
                                "properties": {
                                    "name": {"type": "string"},
                                    "rules": {
                                        "type": "array",
                                        "items": {
                                            "type": "object",
                                            "required": ["id"],
                                        },
                                    },
                                },
                            }
                        },
                    },
                    "results": {
                        "type": "array",
                        "items": {
                            "type": "object",
                            "required": ["message"],
                            "properties": {
                                "ruleId": {"type": "string"},
                                "ruleIndex": {
                                    "type": "integer",
                                    "minimum": 0,
                                },
                                "level": {
                                    "enum": [
                                        "none",
                                        "note",
                                        "warning",
                                        "error",
                                    ]
                                },
                                "message": {
                                    "type": "object",
                                    "required": ["text"],
                                },
                                "relatedLocations": {
                                    "type": "array",
                                    "items": {
                                        "type": "object",
                                        "properties": {
                                            "logicalLocations": {
                                                "type": "array",
                                                "items": {
                                                    "type": "object",
                                                    "properties": {
                                                        "fullyQualifiedName": {
                                                            "type": "string"
                                                        },
                                                        "kind": {"type": "string"},
                                                    },
                                                },
                                            },
                                            "message": {
                                                "type": "object",
                                                "required": ["text"],
                                            },
                                        },
                                    },
                                },
                            },
                        },
                    },
                },
            },
        },
    },
}


def _sample_report():
    return analyze_script(_fanout_script(2), source_name="fanout")


def test_sarif_log_is_schema_valid():
    log = to_sarif([_sample_report(), analyze_script(_ghost_script())])
    jsonschema_validate(instance=log, schema=SARIF_SUBSET_SCHEMA)
    # and is valid JSON end to end
    assert json.loads(json.dumps(log))["version"] == "2.1.0"


def test_sarif_rule_indices_are_consistent():
    log = to_sarif(_sample_report())
    run = log["runs"][0]
    rules = run["tool"]["driver"]["rules"]
    assert [r["id"] for r in rules] == sorted(
        spec.code for spec in DIAGNOSTICS.specs()
    )
    assert run["results"], "fan-out fixture must produce findings"
    for result in run["results"]:
        assert rules[result["ruleIndex"]]["id"] == result["ruleId"]


def test_sarif_artifact_locations():
    log = to_sarif(_sample_report(), artifacts={"fanout": "examples/fanout.wf"})
    result = log["runs"][0]["results"][0]
    assert (
        result["locations"][0]["physicalLocation"]["artifactLocation"]["uri"]
        == "examples/fanout.wf"
    )


def test_sarif_pair_findings_carry_related_locations():
    """Pair-shaped findings (races, lock cycles) must expose the second task
    of the pair as a SARIF relatedLocation, not just a properties blob."""
    log = to_sarif(_sample_report(), artifacts={"fanout": "examples/fanout.wf"})
    jsonschema_validate(instance=log, schema=SARIF_SUBSET_SCHEMA)
    paired = [
        r for r in log["runs"][0]["results"] if r.get("properties", {}).get("related")
    ]
    assert paired, "fan-out fixture must produce at least one pair finding"
    for result in paired:
        related = result["properties"]["related"]
        names = [
            loc["logicalLocations"][0]["fullyQualifiedName"]
            for loc in result["relatedLocations"]
        ]
        assert names == related
        for loc in result["relatedLocations"]:
            assert loc["message"]["text"]
            assert (
                loc["physicalLocation"]["artifactLocation"]["uri"]
                == "examples/fanout.wf"
            )


# -- unified report ------------------------------------------------------------


def test_analyze_script_merges_lint_findings():
    b = ScriptBuilder()
    b.object_class("Data")
    b.object_class("Unused")
    b.taskclass("T").input_set("main").outcome("ok", out="Data")
    b.taskclass("Root").input_set("main").outcome("done", out="Data")
    c = b.compound("wf", "Root")
    c.task("t", "T").implementation(code="x").notify(
        "main", from_input("wf", "main")
    ).up()
    c.output("done").object("out", from_output("t", "ok", "out")).up()
    c.up()
    report = analyze_script(b.build())
    assert "W008" in codes(report.findings)  # Unused object class, via linter
    assert report.ok  # warnings only
    assert report.by_code("W008")[0].severity is Severity.WARNING


def test_analyze_script_skips_deep_passes_on_invalid_script():
    b = _chain_builder()
    c = b.compound("wf", "Root")
    c.task("t", "T").implementation(code="x").input(
        "main", "inp", from_output("ghost", "ok", "out")
    ).up()
    c.output("done").object("out", from_output("t", "ok", "out")).up()
    c.up()
    report = analyze_script(b.build(validate=False), include_lint=False)
    assert not report.ok
    assert report.liveness is None


def test_report_renders_text_and_dict():
    report = _sample_report()
    text = report.render_text()
    assert "fanout" in text and "W301" in text
    data = report.as_dict()
    assert data["warnings"] >= 1 and data["errors"] == 0


# -- strict admission ----------------------------------------------------------


def test_strict_admission_rejects_error_findings():
    text = format_script(_ghost_script())
    strict = RepositoryService(
        "repo", ObjectStore("s1"), strict_admission=True
    )
    with pytest.raises(SchemaError, match="E202"):
        strict.store_script("ghost", text)
    assert strict.list_scripts() == []
    lenient = RepositoryService("repo2", ObjectStore("s2"))
    assert lenient.store_script("ghost", text) == 1


def test_strict_admission_accepts_warning_findings():
    text = format_script(_fanout_script(2))
    strict = RepositoryService(
        "repo", ObjectStore("s3"), strict_admission=True
    )
    assert strict.store_script("fanout", text) == 1


# -- CLI: exit codes and formats -----------------------------------------------


class TestCliAnalysis:
    @pytest.fixture
    def order_file(self, tmp_path):
        from repro.workloads import paper_order

        path = tmp_path / "order.wf"
        path.write_text(paper_order.SCRIPT_TEXT, encoding="utf-8")
        return str(path)

    @pytest.fixture
    def ghost_file(self, tmp_path):
        path = tmp_path / "ghost.wf"
        path.write_text(format_script(_ghost_script()), encoding="utf-8")
        return str(path)

    def test_lint_warnings_only_exits_zero(self, order_file, capsys):
        from repro.cli import main

        assert main(["lint", order_file]) == 0
        assert "W301" in capsys.readouterr().out

    def test_lint_errors_exit_one(self, ghost_file, capsys):
        from repro.cli import main

        assert main(["lint", ghost_file]) == 1
        assert "E202" in capsys.readouterr().out

    def test_lint_strict_fails_on_warnings(self, order_file):
        from repro.cli import main

        assert main(["lint", order_file, "--strict"]) == 1

    def test_lint_parse_error_exits_two(self, tmp_path, capsys):
        from repro.cli import main

        bad = tmp_path / "bad.wf"
        bad.write_text("not a script", encoding="utf-8")
        assert main(["lint", str(bad)]) == 2
        assert "PARSE ERROR" in capsys.readouterr().err

    def test_lint_json_format(self, order_file, capsys):
        from repro.cli import main

        assert main(["lint", order_file, "--format", "json"]) == 0
        data = json.loads(capsys.readouterr().out)
        # one W301 race plus the three W401 bare-effect warnings
        assert data[0]["warnings"] == 4

    def test_lint_sarif_to_file(self, order_file, tmp_path):
        from repro.cli import main

        out = tmp_path / "report.sarif"
        assert (
            main(["lint", order_file, "--format", "sarif", "--output", str(out)])
            == 0
        )
        log = json.loads(out.read_text(encoding="utf-8"))
        jsonschema_validate(instance=log, schema=SARIF_SUBSET_SCHEMA)
        assert log["runs"][0]["results"][0]["ruleId"] == "W301"

    def test_lint_extracts_embedded_python_scripts(self, tmp_path, capsys):
        from repro.cli import main
        from repro.workloads import paper_order

        embedded = tmp_path / "example.py"
        embedded.write_text(
            f"SCRIPT = '''{paper_order.SCRIPT_TEXT}'''\n", encoding="utf-8"
        )
        assert main(["lint", str(embedded)]) == 0
        assert "example.py:SCRIPT" in capsys.readouterr().out

    def test_analyze_side_by_side_agreement(self, order_file, capsys):
        from repro.cli import main

        assert main(["analyze", order_file]) == 0
        out = capsys.readouterr().out
        assert "static and dynamic reachability agree" in out
        assert "orderCompleted" in out and "dynamic" in out

    def test_analyze_unreachable_exits_one(self, ghost_file, capsys):
        from repro.cli import main

        assert main(["analyze", ghost_file]) == 1
        out = capsys.readouterr().out
        # both analyses call it unreachable — agreement, not an analyzer bug
        assert "ANALYZER BUG" not in out

    def test_analyze_static_only(self, order_file, capsys):
        from repro.cli import main

        assert main(["analyze", order_file, "--static"]) == 0
        out = capsys.readouterr().out
        assert "W301" in out and "analysis of" not in out


# -- the seeded race fixture (acceptance case) ---------------------------------


def _race_script():
    """Two tasks that may run simultaneously while holding the same 'acct'
    object — the statically detectable race."""
    b = ScriptBuilder()
    b.object_class("Account")
    b.taskclass("Credit").input_set("main", acct="Account").outcome("ok")
    b.taskclass("Debit").input_set("main", acct="Account").outcome("ok")
    b.taskclass("Root").input_set("main", acct="Account").outcome("done")
    c = b.compound("transfer", "Root")
    c.task("credit", "Credit").implementation(code="credit").input(
        "main", "acct", from_input("transfer", "main", "acct")
    ).up()
    c.task("debit", "Debit").implementation(code="debit").input(
        "main", "acct", from_input("transfer", "main", "acct")
    ).up()
    c.output("done").notify(from_output("credit", "ok")).notify(
        from_output("debit", "ok")
    ).up()
    c.up()
    return b.build()


def test_race_fixture_is_flagged_statically():
    findings = check_interference(_race_script())
    assert codes(findings) == ["W301"]
    assert set(findings[0].related) == {"transfer/credit", "transfer/debit"}
    assert "acct" in findings[0].message


def test_race_fixture_really_races_under_concurrent_engine():
    """Both tasks must be in flight at the same instant: each blocks on a
    two-party barrier that only the *other* task can release.  A sequential
    engine would deadlock here (the barrier would time out)."""
    barrier = threading.Barrier(2)
    meetings = []

    def rendezvous(ctx):
        barrier.wait(timeout=10)  # BrokenBarrierError => not concurrent
        meetings.append(ctx.value("acct"))
        return outcome("ok")

    registry = ImplementationRegistry()
    registry.register("credit", rendezvous)
    registry.register("debit", rendezvous)
    result = ConcurrentEngine(registry, parallelism=2).run(
        _race_script(), inputs={"acct": "acct-1"}
    )
    assert result.completed and result.outcome == "done"
    # both implementations passed the barrier holding the same object ref
    assert meetings == ["acct-1", "acct-1"]
