"""Unit tests for the schema model (taskclasses, declarations, templates)."""

import pytest

from repro.core.errors import SchemaError
from repro.core.schema import (
    CompoundTaskDecl,
    GuardKind,
    Implementation,
    InputObjectBinding,
    InputSetBinding,
    InputSetSpec,
    NotificationBinding,
    ObjectDecl,
    OutputKind,
    OutputSpec,
    Script,
    Source,
    TaskClass,
    TaskDecl,
    TaskTemplate,
)


def simple_class(name="TC"):
    return TaskClass(
        name,
        (InputSetSpec("main", (ObjectDecl("inp", "Data"),)),),
        (OutputSpec("done", OutputKind.OUTCOME, (ObjectDecl("out", "Data"),)),),
    )


class TestTaskClass:
    def test_lookups(self):
        tc = simple_class()
        assert tc.input_set("main").object("inp").class_name == "Data"
        assert tc.output("done").kind is OutputKind.OUTCOME
        assert tc.input_set("nope") is None
        assert tc.output("nope") is None

    def test_duplicate_input_set_rejected(self):
        with pytest.raises(SchemaError):
            TaskClass("T", (InputSetSpec("main"), InputSetSpec("main")))

    def test_duplicate_output_rejected(self):
        with pytest.raises(SchemaError):
            TaskClass(
                "T",
                outputs=(
                    OutputSpec("done", OutputKind.OUTCOME),
                    OutputSpec("done", OutputKind.ABORT),
                ),
            )

    def test_duplicate_object_in_set_rejected(self):
        with pytest.raises(SchemaError):
            TaskClass(
                "T",
                (InputSetSpec("main", (ObjectDecl("x", "A"), ObjectDecl("x", "B"))),),
            )

    def test_atomic_iff_abort_outcome(self):
        atomic = TaskClass("T", outputs=(OutputSpec("oops", OutputKind.ABORT),))
        plain = TaskClass("T", outputs=(OutputSpec("done", OutputKind.OUTCOME),))
        assert atomic.is_atomic and not plain.is_atomic

    def test_atomic_class_cannot_declare_marks(self):
        # §4.2: an atomic task produces outputs only after commit
        with pytest.raises(SchemaError):
            TaskClass(
                "T",
                outputs=(
                    OutputSpec("oops", OutputKind.ABORT),
                    OutputSpec("early", OutputKind.MARK),
                ),
            )

    def test_outputs_of_kind_and_final_outputs(self):
        tc = TaskClass(
            "T",
            outputs=(
                OutputSpec("done", OutputKind.OUTCOME),
                OutputSpec("again", OutputKind.REPEAT),
                OutputSpec("early", OutputKind.MARK),
            ),
        )
        assert [o.name for o in tc.outputs_of_kind(OutputKind.MARK)] == ["early"]
        assert [o.name for o in tc.final_outputs()] == ["done"]


class TestSources:
    def test_guarded_source_requires_name(self):
        with pytest.raises(SchemaError):
            Source("t", "x", GuardKind.OUTPUT, None)

    def test_unguarded_source_rejects_guard_name(self):
        with pytest.raises(SchemaError):
            Source("t", "x", GuardKind.ANY, "oops")

    def test_notification_flag(self):
        assert Source("t", None, GuardKind.OUTPUT, "done").is_notification
        assert not Source("t", "x", GuardKind.OUTPUT, "done").is_notification

    def test_input_object_binding_requires_sources(self):
        with pytest.raises(SchemaError):
            InputObjectBinding("x", ())

    def test_input_object_binding_rejects_notification_sources(self):
        with pytest.raises(SchemaError):
            InputObjectBinding("x", (Source("t", None, GuardKind.OUTPUT, "d"),))

    def test_notification_binding_rejects_object_sources(self):
        with pytest.raises(SchemaError):
            NotificationBinding((Source("t", "x", GuardKind.OUTPUT, "d"),))


class TestImplementation:
    def test_of_and_get(self):
        impl = Implementation.of(code="refX", priority="3")
        assert impl.code == "refX"
        assert impl.get("priority") == "3"
        assert impl.get("missing", "d") == "d"

    def test_as_dict(self):
        assert Implementation.of(code="c").as_dict() == {"code": "c"}

    def test_empty_implementation(self):
        assert Implementation().code is None


class TestCompound:
    def test_duplicate_constituent_rejected(self):
        child = TaskDecl("t", "TC")
        with pytest.raises(SchemaError):
            CompoundTaskDecl("c", "CC", tasks=(child, TaskDecl("t", "TC")))

    def test_constituent_shadowing_compound_rejected(self):
        with pytest.raises(SchemaError):
            CompoundTaskDecl("c", "CC", tasks=(TaskDecl("c", "TC"),))

    def test_task_lookup(self):
        child = TaskDecl("t", "TC")
        compound = CompoundTaskDecl("c", "CC", tasks=(child,))
        assert compound.task("t") is child
        assert compound.task("nope") is None

    def test_is_compound_flags(self):
        assert CompoundTaskDecl("c", "CC").is_compound
        assert not TaskDecl("t", "TC").is_compound


class TestScript:
    def test_duplicate_taskclass_rejected(self):
        script = Script()
        script.add_taskclass(simple_class())
        with pytest.raises(SchemaError):
            script.add_taskclass(simple_class())

    def test_duplicate_task_rejected(self):
        script = Script()
        script.add_task(TaskDecl("t", "TC"))
        with pytest.raises(SchemaError):
            script.add_task(TaskDecl("t", "TC"))

    def test_taskclass_of_unknown_raises(self):
        script = Script()
        with pytest.raises(SchemaError):
            script.taskclass_of(TaskDecl("t", "Ghost"))

    def test_walk_tasks_yields_paths(self):
        script = Script()
        inner = TaskDecl("leaf", "TC")
        script.add_task(CompoundTaskDecl("root", "CC", tasks=(inner,)))
        paths = [path for path, _ in script.walk_tasks()]
        assert paths == ["root", "root/leaf"]


class TestTemplates:
    def make_template(self):
        body = TaskDecl(
            "body",
            "TC",
            Implementation.of(code="c"),
            (
                InputSetBinding(
                    "main",
                    (
                        InputObjectBinding(
                            "inp", (Source("p1", "out", GuardKind.OUTPUT, "done"),)
                        ),
                    ),
                ),
            ),
        )
        return TaskTemplate("tmpl", ("p1",), body)

    def test_instantiation_substitutes_parameters(self):
        template = self.make_template()
        decl = template.instantiate("inst", ("realTask",))
        assert decl.name == "inst"
        source = decl.input_sets[0].objects[0].sources[0]
        assert source.task_name == "realTask"

    def test_wrong_arity_rejected(self):
        with pytest.raises(SchemaError):
            self.make_template().instantiate("inst", ("a", "b"))

    def test_self_reference_renamed(self):
        body = TaskDecl(
            "body",
            "TC",
            input_sets=(
                InputSetBinding(
                    "main",
                    (
                        InputObjectBinding(
                            "inp", (Source("body", "out", GuardKind.OUTPUT, "retry"),)
                        ),
                    ),
                ),
            ),
        )
        template = TaskTemplate("tmpl", (), body)
        decl = template.instantiate("inst", ())
        assert decl.input_sets[0].objects[0].sources[0].task_name == "inst"

    def test_duplicate_parameters_rejected(self):
        with pytest.raises(SchemaError):
            TaskTemplate("t", ("p", "p"), TaskDecl("b", "TC"))

    def test_script_instantiate_registers_task(self):
        script = Script()
        script.add_template(self.make_template())
        decl = script.instantiate_template("inst", "tmpl", ("x",))
        assert script.tasks["inst"] is decl

    def test_script_instantiate_unknown_template(self):
        with pytest.raises(SchemaError):
            Script().instantiate_template("inst", "ghost", ())
