"""Overload robustness (docs/PROTOCOLS.md §13): bounded admission, the
delay-gradient controller, priority shedding, the traffic generator, and
the no-silent-drop guarantee under chaos.
"""

import pytest

from repro.lang import format_script
from repro.orb import Overloaded
from repro.overload import (
    QUEUE,
    REJECT,
    SHED,
    START,
    AdmissionController,
    CRITICALITY_CLASSES,
    OverloadConfig,
    criticality_of,
)
from repro.services import WorkflowSystem
from repro.services.execution import _PENDING_ACK_CAP
from repro.workloads import (
    TrafficSpec,
    arrival_schedule,
    cohort_script,
    run_traffic,
    traffic_registry,
)

TERMINAL = ("completed", "aborted", "failed")


def tight_system(
    *,
    queue_capacity=2,
    window=1,
    workers=1,
    service_time=15.0,
    seed=0,
    **overrides,
):
    cfg = OverloadConfig(
        queue_capacity=queue_capacity,
        initial_window=window,
        min_window=min(window, 8),
        **overrides,
    )
    return WorkflowSystem(
        workers=workers,
        registry=traffic_registry(),
        seed=seed,
        overload=cfg,
        worker_service_time=service_time,
    )


def deploy_cohort(system, cohort=1, length=2):
    """Deploy one cohort pipeline; returns (script_name, root_task)."""
    script, root = cohort_script(cohort, length)
    name = f"traffic-c{cohort}"
    system.deploy(name, format_script(script))
    return name, root


def drive(system, iids, max_time=3_000.0, step=10.0):
    service = system.execution
    deadline = system.clock.now + max_time
    while system.clock.now < deadline:
        if all(
            service.runtimes[iid].tree.status.value in TERMINAL for iid in iids
        ):
            return
        system.clock.advance(step)


class TestCriticality:
    def test_declared_on_root_implementation(self):
        for cohort, expected in ((0, "high"), (1, "normal"), (2, "low")):
            script, root = cohort_script(cohort, 2)
            assert criticality_of(script, root) == expected

    def test_unknown_or_absent_defaults_to_normal(self):
        script, root = cohort_script(0, 2)
        assert criticality_of(script, "no-such-task") == "normal"
        assert set(CRITICALITY_CLASSES) == {"low", "normal", "high"}


class TestAdmissionController:
    def cfg(self, **kw):
        params = dict(
            queue_capacity=4, initial_window=2, min_window=1,
            sojourn_target=10.0, control_interval=5.0,
        )
        params.update(kw)
        return OverloadConfig(**params)

    def test_start_within_window_then_queue_then_reject(self):
        ctrl = AdmissionController(self.cfg(queue_capacity=2))
        assert ctrl.decide("normal", 0.0) == START
        ctrl.on_start("a", 0.0)
        ctrl.on_start("b", 0.0)
        assert ctrl.decide("normal", 1.0) == QUEUE
        ctrl.enqueue("c", "normal", 1.0)
        ctrl.enqueue("d", "normal", 1.0)
        assert ctrl.decide("normal", 2.0) == REJECT

    def test_promotion_fills_freed_slots_fifo(self):
        ctrl = AdmissionController(self.cfg())
        ctrl.on_start("a", 0.0)
        ctrl.on_start("b", 0.0)
        ctrl.enqueue("c", "normal", 1.0)
        ctrl.enqueue("d", "low", 2.0)
        assert ctrl.promote_ready(3.0) == []  # window still full
        ctrl.release("a", 3.0)
        promoted = ctrl.promote_ready(4.0)
        assert [(iid, crit) for iid, crit, _ in promoted] == [("c", "normal")]
        assert promoted[0][2] == pytest.approx(3.0)  # sojourn observed

    def test_pressure_escalation_and_priority_order(self):
        ctrl = AdmissionController(self.cfg(initial_window=1))
        ctrl.on_start("a", 0.0)
        assert ctrl.allow_hedge()
        # standing queue: head age drives the controller past shed_all_at
        ctrl.enqueue("q", "normal", 0.0)
        ctrl.control(60.0)
        assert ctrl.pressure == 3
        assert not ctrl.allow_hedge()
        assert ctrl.decide("high", 61.0) == SHED  # any class goes
        ctrl.pressure = 2
        assert ctrl.decide("low", 61.0) == SHED
        assert ctrl.decide("normal", 61.0) == QUEUE
        ctrl.pressure = 1
        assert not ctrl.allow_hedge()
        assert ctrl.decide("low", 61.0) == QUEUE

    def test_evict_low_only_at_pressure_two(self):
        ctrl = AdmissionController(self.cfg(initial_window=1))
        ctrl.on_start("a", 0.0)
        ctrl.enqueue("n", "normal", 0.0)
        ctrl.enqueue("l", "low", 0.0)
        assert ctrl.evict_low(1.0) == []
        ctrl.pressure = 2
        assert ctrl.evict_low(1.0) == [("l", "low")]
        assert list(ctrl.queue) == ["n"]

    def test_window_shrinks_multiplicatively_and_regrows(self):
        ctrl = AdmissionController(
            self.cfg(initial_window=10, min_window=2, queue_capacity=8)
        )
        for i in range(10):
            ctrl.on_start(f"a{i}", 0.0)
        ctrl.enqueue("q", "normal", 0.0)
        ctrl.control(60.0)  # head waited 60 >> target 10
        assert ctrl.window == 8  # int(10 * 0.8)
        ctrl.control(120.0)
        assert ctrl.window == 6  # keeps shrinking while delay stands
        ctrl.forget("q")
        ctrl.control(180.0)  # idle interval: relax and regrow
        assert ctrl.pressure == 0
        assert ctrl.window == 7

    def test_retry_after_deterministic_and_pressure_scaled(self):
        a = AdmissionController(self.cfg(queue_capacity=4))
        b = AdmissionController(self.cfg(queue_capacity=4))
        for ctrl in (a, b):
            ctrl.enqueue("x", "normal", 0.0)
            ctrl.enqueue("y", "normal", 0.0)
        assert a.retry_after(5.0) == b.retry_after(5.0)
        base = a.retry_after(5.0)
        a.pressure = 2
        assert a.retry_after(5.0) > base

    def test_rebuild_readmits_survivors_and_clears_pressure(self):
        ctrl = AdmissionController(self.cfg(initial_window=2))
        ctrl.on_start("a", 0.0)
        ctrl.enqueue("q", "normal", 0.0)
        ctrl.pressure = 3
        ctrl.rebuild(["a", "b", "c"], 100.0)
        assert ctrl.queue == {}
        assert ctrl.in_flight == {"a", "b", "c"}
        assert ctrl.pressure == 0
        assert ctrl.window >= 3  # every rebuilt instance fits the window


class TestBoundedAdmission:
    def test_full_queue_refuses_with_deterministic_retry_after(self):
        hints = []
        for _ in range(2):
            system = tight_system(retry_after_base=10.0)
            name, root = deploy_cohort(system)
            for i in range(3):  # 1 starts, 2 queue
                system.instantiate(name, root, {"inp": f"k{i}"})
            with pytest.raises(Overloaded) as exc:
                system.instantiate(name, root, {"inp": "k3"})
            assert exc.value.retry_after > 0
            hints.append(exc.value.retry_after)
            assert system.execution.stats["overload_rejections"] == 1
        assert hints[0] == hints[1]  # same history, same hint

    def test_queued_instances_start_when_window_frees(self):
        system = tight_system()
        name, root = deploy_cohort(system)
        iids = [system.instantiate(name, root, {"inp": f"k{i}"}) for i in range(3)]
        report = system.execution.admission.report()
        assert report["in_flight"] == 1 and report["queue_depth"] == 2
        drive(system, iids)
        service = system.execution
        for iid in iids:
            assert service.runtimes[iid].tree.status.value == "completed"
        report = service.admission.report()
        assert report["promoted"] == 2
        assert report["queue_depth"] == 0 and report["in_flight"] == 0


class TestShedding:
    def shed_one(self, system, cohort=1):
        """Fill the window, force max pressure, submit one arrival."""
        name, root = deploy_cohort(system, cohort=cohort)
        blocker = system.instantiate(name, root, {"inp": "hot"})
        system.execution.admission.pressure = 3
        victim = system.instantiate(name, root, {"inp": "late"})
        return blocker, victim

    def test_shed_is_journaled_decisive_failure(self):
        system = tight_system()
        _, victim = self.shed_one(system)
        service = system.execution
        status = system.status(victim)
        assert status["status"] == "failed"
        assert status["error"].startswith("overloaded")
        entries = service.export_instance(victim)["journal"]
        assert any(e["type"] == "overloaded" for e in entries)
        assert service.stats["shed"] == 1
        assert service.resilience_report()["overload"]["shed_normal"] == 1

    def test_shed_survives_crash_and_replay(self):
        system = tight_system()
        _, victim = self.shed_one(system)
        before = system.status(victim)
        system.execution_node.crash()
        system.execution_node.recover()
        after = system.status(victim)
        assert after["status"] == "failed"
        assert after["error"] == before["error"]

    def test_started_work_is_never_shed(self):
        system = tight_system()
        blocker, _ = self.shed_one(system)
        drive(system, [blocker])
        assert system.execution.runtimes[blocker].tree.status.value == "completed"

    def test_shed_event_reaches_the_trace(self):
        system = tight_system()
        _, victim = self.shed_one(system)
        assert "shed" in system.execution.trace(victim)

    def test_disabled_config_admits_everything(self):
        system = WorkflowSystem(
            workers=1, registry=traffic_registry(), seed=0,
            overload=OverloadConfig.disabled(), worker_service_time=5.0,
        )
        name, root = deploy_cohort(system)
        iids = [system.instantiate(name, root, {"inp": f"k{i}"}) for i in range(6)]
        assert system.execution.admission.report()["enabled"] is False
        drive(system, iids)
        for iid in iids:
            assert system.execution.runtimes[iid].tree.status.value == "completed"


class TestPendingAcksBounded:
    def test_hard_cap_evicts_oldest(self):
        system = tight_system(queue_capacity=8, window=4, service_time=5.0)
        service = system.execution
        for i in range(_PENDING_ACK_CAP + 500):
            service._pending_acks[(f"ghost-{i}", "t", 0, "w")] = float(i)
        name, root = deploy_cohort(system)
        iid = system.instantiate(name, root, {"inp": "k"})
        drive(system, [iid])
        assert service.runtimes[iid].tree.status.value == "completed"
        assert len(service._pending_acks) <= _PENDING_ACK_CAP


class TestTrafficGenerator:
    def spec(self, **kw):
        params = dict(rate=0.5, duration=60.0, drain=240.0, seed=11, slo=60.0)
        params.update(kw)
        return TrafficSpec(**params)

    def test_schedule_is_deterministic_and_in_horizon(self):
        spec = self.spec()
        first = arrival_schedule(spec)
        second = arrival_schedule(spec)
        assert first == second
        assert first, "schedule must not be empty"
        assert all(0 < a.at < spec.duration for a in first)
        assert [a.at for a in first] == sorted(a.at for a in first)
        assert {a.criticality for a in first} <= set(CRITICALITY_CLASSES)

    def test_burst_schedule_offers_more_than_poisson(self):
        poisson = arrival_schedule(self.spec())
        burst = arrival_schedule(self.spec(arrival="burst"))
        assert len(burst) > len(poisson)

    def test_same_seed_same_fingerprint(self):
        reports = []
        for _ in range(2):
            system = tight_system(
                queue_capacity=8, window=4, workers=2, service_time=1.0, seed=11
            )
            reports.append(run_traffic(system, self.spec()))
        assert reports[0].fingerprint() == reports[1].fingerprint()
        assert reports[0].offered > 0
        assert reports[0].unfinished == 0

    def test_different_seed_different_fingerprint(self):
        fingerprints = []
        for seed in (11, 12):
            system = tight_system(
                queue_capacity=8, window=4, workers=2, service_time=1.0, seed=seed
            )
            fingerprints.append(run_traffic(system, self.spec(seed=seed)).fingerprint())
        assert fingerprints[0] != fingerprints[1]

    def test_every_offered_arrival_is_accounted_for(self):
        system = tight_system(
            queue_capacity=4, window=2, workers=1, service_time=4.0, seed=3
        )
        report = run_traffic(system, self.spec(rate=1.0, seed=3))
        assert report.offered == (
            report.admitted + report.refused + report.lost
        )
        assert report.admitted == (
            report.completed + report.shed + report.failed + report.unfinished
        )


class TestReconfigureUnderTraffic:
    def test_live_reconfiguration_while_generator_runs(self):
        from repro.core import Implementation, ReplaceImplementation

        spec = TrafficSpec(rate=0.5, duration=120.0, drain=500.0, seed=5)
        system = tight_system(
            queue_capacity=32, window=4, workers=2, service_time=2.0, seed=5
        )
        script0, root0 = cohort_script(0, spec.script_length)
        new_text = format_script(
            ReplaceImplementation(
                f"{root0}/t{spec.script_length}",
                Implementation.of(code="stage", tier="upgraded"),
            ).apply_checked(script0)
        )
        proxy = system.execution_proxy()
        reconfigured = []

        def attempt() -> None:
            service = system.primary_execution()
            if service is not None:
                for iid in sorted(service.runtimes):
                    runtime = service.runtimes[iid]
                    if runtime.tree.status.value != "running":
                        continue
                    if root0 not in runtime.tree.script.tasks:
                        continue  # another cohort's instance
                    try:
                        proxy.reconfigure(iid, new_text)
                    except Exception:
                        continue  # e.g. the target task already finished
                    reconfigured.append(iid)
                    return
            system.clock.call_after(10.0, attempt, label="test:reconfig")

        system.clock.call_after(30.0, attempt, label="test:reconfig")
        report = run_traffic(system, spec)

        assert reconfigured, "no live instance was ever reconfigured"
        iid = reconfigured[0]
        service = system.execution
        runtime = service.runtimes[iid]
        # applied exactly once: visible in the live tree and journaled once
        upgraded = runtime.tree.script.tasks[root0].task(f"t{spec.script_length}")
        assert upgraded.implementation.get("tier") == "upgraded"
        entries = service.export_instance(iid)["journal"]
        assert sum(1 for e in entries if e["type"] == "reconfig") == 1
        # nothing lost while reconfiguration raced the generator
        assert report.lost == 0
        assert report.unfinished == 0
        assert report.offered == report.admitted + report.refused


class TestChaosNoSilentDrop:
    def test_load_spike_with_worker_crash(self):
        from repro.sim.harness import SimHarness
        from repro.sim.nemesis import CrashAtTime, LoadSpike, NemesisSchedule

        schedule = NemesisSchedule(
            [
                LoadSpike(at=50.0, duration=100.0, rate=1.0),
                CrashAtTime(at=80.0, node="worker-node-1", downtime=40.0),
            ],
            name="spike+worker-crash",
        )
        harness = SimHarness(
            schedule=schedule, workload="order", seed=3, instances=2,
            service_time=2.0,
            overload=OverloadConfig(
                queue_capacity=8, initial_window=8, min_window=2
            ),
        )
        report = harness.run()
        assert report.ok, report.violations
        assert report.spike["accepted"] > 0
        assert report.spike["refused"] > 0  # backpressure actually engaged

    def test_spike_runs_are_reproducible(self):
        from repro.sim.harness import SimHarness
        from repro.sim.nemesis import LoadSpike, NemesisSchedule

        def once():
            harness = SimHarness(
                schedule=NemesisSchedule(
                    [LoadSpike(at=25.0, duration=50.0, rate=0.8)], name="spike"
                ),
                workload="order", seed=7, instances=1, service_time=1.0,
                overload=OverloadConfig(
                    queue_capacity=4, initial_window=4, min_window=2
                ),
            )
            return harness.run()

        first, second = once(), once()
        assert first.ok and second.ok
        assert first.fingerprint() == second.fingerprint()

    def test_schedule_round_trips_load_spike(self):
        from repro.sim.nemesis import LoadSpike, NemesisSchedule

        schedule = NemesisSchedule(
            [LoadSpike(at=10.0, duration=20.0, rate=2.0)], name="s"
        )
        again = NemesisSchedule.from_json(schedule.to_json())
        assert again.faults == schedule.faults
        assert schedule.network_quiet_at() == 30.0
