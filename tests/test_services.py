"""Integration tests for the distributed workflow system (paper Fig. 4):
repository, execution service, workers, crash recovery, reconfiguration."""

import pytest

from repro.core.errors import SchemaError, ValidationReport
from repro.net import FaultPlan, LatencyModel
from repro.services import WorkflowSystem
from repro.workloads import paper_order, paper_trip


def order_system(**kwargs):
    system = WorkflowSystem(**kwargs)
    paper_order.default_registry(registry=system.registry)
    system.deploy("order", paper_order.SCRIPT_TEXT)
    return system


class TestRepository:
    def test_store_and_get_script(self):
        system = WorkflowSystem()
        repo = system.repository_proxy()
        assert repo.store_script("order", paper_order.SCRIPT_TEXT) == 1
        assert repo.get_script("order") == paper_order.SCRIPT_TEXT

    def test_invalid_script_rejected(self):
        system = WorkflowSystem()
        repo = system.repository_proxy()
        with pytest.raises((SchemaError, ValidationReport, Exception)):
            repo.store_script("bad", "task t of taskclass Ghost { }")
        assert "bad" not in repo.list_scripts()

    def test_versioning(self):
        system = WorkflowSystem()
        repo = system.repository_proxy()
        repo.store_script("order", paper_order.SCRIPT_TEXT)
        v2 = repo.store_script("order", paper_order.SCRIPT_TEXT + "\n// v2\n")
        assert v2 == 2
        assert repo.versions("order") == 2
        assert "// v2" in repo.get_script("order")
        assert "// v2" not in repo.get_script("order", 1)

    def test_list_scripts(self):
        system = WorkflowSystem()
        repo = system.repository_proxy()
        repo.store_script("order", paper_order.SCRIPT_TEXT)
        repo.store_script("trip", paper_trip.SCRIPT_TEXT)
        assert repo.list_scripts() == ["order", "trip"]

    def test_inspect_gives_structure(self):
        system = WorkflowSystem()
        repo = system.repository_proxy()
        repo.store_script("order", paper_order.SCRIPT_TEXT)
        info = repo.inspect("order")
        assert info["tasks"]["processOrderApplication"]["tasks"] == 4
        assert "Dispatch" in info["taskclasses"]

    def test_remove_script(self):
        system = WorkflowSystem()
        repo = system.repository_proxy()
        repo.store_script("order", paper_order.SCRIPT_TEXT)
        assert repo.remove_script("order") is True
        assert repo.list_scripts() == []
        assert repo.remove_script("order") is False

    def test_repository_survives_node_crash(self):
        system = WorkflowSystem()
        repo = system.repository_proxy()
        repo.store_script("order", paper_order.SCRIPT_TEXT)
        system.repository_node.crash()
        system.repository_node.recover()
        assert repo.get_script("order") == paper_order.SCRIPT_TEXT


class TestHappyPathExecution:
    def test_order_completes(self):
        system = order_system(workers=2)
        iid = system.instantiate("order", paper_order.ROOT_TASK, {"order": "o-1"})
        result = system.run_until_terminal(iid)
        assert result["status"] == "completed"
        assert result["outcome"] == "orderCompleted"
        assert result["objects"]["dispatchNote"]["value"] == "note:stock:o-1"

    def test_status_reports_progress(self):
        system = order_system()
        iid = system.instantiate("order", paper_order.ROOT_TASK, {"order": "o-1"})
        status = system.status(iid)
        assert status["status"] in ("running", "completed")
        system.run_until_terminal(iid)
        assert system.status(iid)["status"] == "completed"

    def test_multiple_concurrent_instances(self):
        system = order_system(workers=3)
        iids = [
            system.instantiate("order", paper_order.ROOT_TASK, {"order": f"o-{i}"})
            for i in range(5)
        ]
        for iid in iids:
            assert system.run_until_terminal(iid)["status"] == "completed"
        assert system.execution_proxy().list_instances() == sorted(iids)

    def test_work_spread_across_workers(self):
        system = order_system(workers=3)
        for i in range(6):
            iid = system.instantiate("order", paper_order.ROOT_TASK, {"order": f"o-{i}"})
            system.run_until_terminal(iid)
        busy = [w for w in system.workers if w.executed]
        assert len(busy) >= 2

    def test_trip_app_with_marks_runs_distributed(self):
        system = WorkflowSystem(workers=3)
        paper_trip.default_registry(registry=system.registry)
        system.deploy("trip", paper_trip.SCRIPT_TEXT)
        iid = system.instantiate("trip", paper_trip.ROOT_TASK, {"user": "bob"})
        result = system.run_until_terminal(iid, max_time=50_000)
        assert result["outcome"] == "tripArranged"
        assert [m["name"] for m in result["marks"]] == ["toPay"]


class TestFaultTolerance:
    def test_execution_node_crash_recovers_and_completes(self):
        system = order_system(workers=2)
        iid = system.instantiate("order", paper_order.ROOT_TASK, {"order": "o-1"})
        FaultPlan(system.clock).crash_at(
            system.execution_node, when=2.0, down_for=50.0
        ).arm()
        result = system.run_until_terminal(iid, max_time=10_000)
        assert result["status"] == "completed"
        assert system.execution.stats["recoveries"] == 1

    def test_worker_crash_redispatches_elsewhere(self):
        system = order_system(workers=2, dispatch_timeout=20.0, sweep_interval=5.0)
        iid = system.instantiate("order", paper_order.ROOT_TASK, {"order": "o-1"})
        FaultPlan(system.clock).crash_at(
            system.worker_nodes[0], when=0.5, down_for=500.0
        ).arm()
        result = system.run_until_terminal(iid, max_time=10_000)
        assert result["status"] == "completed"
        # the adaptive dispatcher moves work off a dead worker via a hedge,
        # a failover or a timed-out redispatch, depending on timing
        stats = system.execution.stats
        moved = stats["redispatches"] + stats["hedges"] + stats["failovers"]
        assert moved >= 1

    def test_message_loss_tolerated(self):
        system = order_system(workers=2, loss_rate=0.25, seed=11,
                              dispatch_timeout=15.0, sweep_interval=5.0)
        iid = system.instantiate("order", paper_order.ROOT_TASK, {"order": "o-1"})
        result = system.run_until_terminal(iid, max_time=20_000)
        assert result["status"] == "completed"
        assert system.network.stats.dropped_loss > 0

    def test_repeated_crashes_still_complete(self):
        system = order_system(workers=2)
        iid = system.instantiate("order", paper_order.ROOT_TASK, {"order": "o-1"})
        plan = FaultPlan(system.clock)
        plan.crash_at(system.execution_node, when=2.0, down_for=20.0)
        plan.crash_at(system.execution_node, when=60.0, down_for=20.0)
        plan.crash_at(system.worker_nodes[1], when=5.0, down_for=100.0)
        plan.arm()
        result = system.run_until_terminal(iid, max_time=20_000)
        assert result["status"] == "completed"
        assert system.execution.stats["recoveries"] == 2

    def test_partition_heals_and_completes(self):
        system = order_system(workers=2, dispatch_timeout=15.0, sweep_interval=5.0)
        iid = system.instantiate("order", paper_order.ROOT_TASK, {"order": "o-1"})
        system.network.partition(
            {system.execution_node.name},
            {n.name for n in system.worker_nodes},
        )
        system.clock.call_at(40.0, system.network.heal)
        result = system.run_until_terminal(iid, max_time=20_000)
        assert result["status"] == "completed"

    def test_duplicate_replies_deduplicated(self):
        # aggressive re-dispatch under load: replies may arrive twice, but
        # each execution is applied exactly once
        system = order_system(workers=2, dispatch_timeout=2.0, sweep_interval=1.0,
                              latency=LatencyModel(3.0, 1.0), seed=5)
        iid = system.instantiate("order", paper_order.ROOT_TASK, {"order": "o-1"})
        result = system.run_until_terminal(iid, max_time=20_000)
        assert result["status"] == "completed"
        assert result["outcome"] == "orderCompleted"

    def test_recovery_replay_reaches_same_state(self):
        # run to completion, then force a recovery and compare results
        system = order_system(workers=2)
        iid = system.instantiate("order", paper_order.ROOT_TASK, {"order": "o-1"})
        before = system.run_until_terminal(iid)
        system.execution_node.crash()
        system.execution_node.recover()
        after = system.execution.result(iid)
        assert after["outcome"] == before["outcome"]
        assert after["objects"] == before["objects"]

    def test_ablation_durable_false_loses_instance_on_crash(self):
        system = order_system(workers=2, durable=False)
        iid = system.instantiate("order", paper_order.ROOT_TASK, {"order": "o-1"})
        FaultPlan(system.clock).crash_at(
            system.execution_node, when=1.0, down_for=10.0
        ).arm()
        result = system.run_until_terminal(iid, max_time=3_000)
        assert result["status"] == "lost"

    def test_durable_false_without_crash_still_works(self):
        system = order_system(workers=2, durable=False)
        iid = system.instantiate("order", paper_order.ROOT_TASK, {"order": "o-1"})
        result = system.run_until_terminal(iid)
        assert result["status"] == "completed"


class TestDistributedAdministration:
    def test_force_abort_through_service(self):
        system = WorkflowSystem(workers=1)
        paper_order.default_registry(registry=system.registry)
        # make dispatch hang forever by binding a code that stalls the task:
        # simplest hang = a workflow whose dispatch dependency never fires,
        # so force-abort the WAITing dispatch task instead
        system.registry.register(
            "refCheckStock",
            lambda ctx: __import__("repro.engine", fromlist=["outcome"]).outcome(
                "stockNotAvailable"
            ),
        )
        system.deploy("order", paper_order.SCRIPT_TEXT)
        iid = system.instantiate("order", paper_order.ROOT_TASK, {"order": "o"})
        result = system.run_until_terminal(iid, max_time=2_000)
        assert result["outcome"] == "orderCancelled"

    def test_reconfigure_running_instance_via_service(self):
        from repro.workloads import diamond
        from repro.lang import format_script
        from repro.core import AddTask, Implementation
        from repro.core.schema import (
            GuardKind,
            InputObjectBinding,
            InputSetBinding,
            Source,
            TaskDecl,
        )

        script, registry, root, inputs = diamond()
        system = WorkflowSystem(workers=1, registry=registry)
        registry.register(
            "join2",
            lambda ctx: __import__("repro.engine", fromlist=["outcome"]).outcome(
                "done", out="j2"
            ),
        )
        system.deploy("diamond", format_script(script))
        iid = system.instantiate("diamond", root, inputs)
        t5 = TaskDecl(
            "t5",
            "Join",
            Implementation.of(code="join2"),
            (
                InputSetBinding(
                    "main",
                    (
                        InputObjectBinding(
                            "left", (Source("t2", "out", GuardKind.OUTPUT, "done"),)
                        ),
                        InputObjectBinding(
                            "right", (Source("t3", "out", GuardKind.OUTPUT, "done"),)
                        ),
                    ),
                ),
            ),
        )
        new_script = AddTask("fig1", t5).apply_checked(script)
        system.execution_proxy().reconfigure(iid, format_script(new_script))
        result = system.run_until_terminal(iid, max_time=5_000)
        assert result["status"] == "completed"

    def test_reconfigure_survives_crash_via_journal(self):
        from repro.workloads import diamond
        from repro.lang import format_script
        from repro.core import AddTask, Implementation
        from repro.core.schema import (
            GuardKind,
            InputObjectBinding,
            InputSetBinding,
            Source,
            TaskDecl,
        )
        from repro.engine import outcome as mk_outcome

        script, registry, root, inputs = diamond()
        registry.register("join2", lambda ctx: mk_outcome("done", out="j2"))
        system = WorkflowSystem(workers=1, registry=registry)
        system.deploy("diamond", format_script(script))
        iid = system.instantiate("diamond", root, inputs)
        t5 = TaskDecl(
            "t5",
            "Join",
            Implementation.of(code="join2"),
            (
                InputSetBinding(
                    "main",
                    (
                        InputObjectBinding(
                            "left", (Source("t2", "out", GuardKind.OUTPUT, "done"),)
                        ),
                        InputObjectBinding(
                            "right", (Source("t3", "out", GuardKind.OUTPUT, "done"),)
                        ),
                    ),
                ),
            ),
        )
        new_script = AddTask("fig1", t5).apply_checked(script)
        system.execution_proxy().reconfigure(iid, format_script(new_script))
        system.execution_node.crash()
        system.execution_node.recover()
        # the replayed instance must know about t5
        runtime = system.execution.runtimes[iid]
        assert runtime.tree.script.tasks["fig1"].task("t5") is not None
        result = system.run_until_terminal(iid, max_time=5_000)
        assert result["status"] == "completed"


class TestRepeatRoundExecutionIdentity:
    """Regression: after a compound repeat rebuilds its constituents, their
    machine.starts counters reset — journal keys must still be unique, or
    round-2 replies are dropped as duplicates (found by the chaos suite)."""

    def trip_system(self):
        from repro.workloads import paper_trip

        system = WorkflowSystem(workers=2)
        paper_trip.default_registry(
            hotel_rounds_until_success=2,
            hotel_attempts_needed=1,
            hotel_max_tries=3,
            registry=system.registry,
        )
        system.deploy("trip", paper_trip.SCRIPT_TEXT)
        return system

    def test_br_retry_round_completes_distributed(self):
        system = self.trip_system()
        iid = system.instantiate("trip", paper_trip.ROOT_TASK, {"user": "rounds"})
        result = system.run_until_terminal(iid, max_time=100_000)
        assert result["status"] == "completed"
        assert result["outcome"] == "tripArranged"
        # dataAcquisition ran in both rounds: two distinct journal results
        runtime = system.execution.runtimes[iid]
        da_keys = [
            k
            for k in runtime.journal_keys
            if k[0] == "result" and k[1].endswith("dataAcquisition")
        ]
        assert len(da_keys) == 2
        assert len({k[2] for k in da_keys}) == 2  # distinct execution indices

    def test_recovery_mid_second_round(self):
        system = self.trip_system()
        iid = system.instantiate("trip", paper_trip.ROOT_TASK, {"user": "rounds"})
        # run partway: let round 1 fail and round 2 begin, then crash
        system.clock.advance(40.0)
        system.execution_node.crash()
        system.execution_node.recover()
        result = system.run_until_terminal(iid, max_time=100_000)
        assert result["status"] == "completed"
        assert result["outcome"] == "tripArranged"
