"""Tests for dynamic reconfiguration: schema changes and live instances."""

import pytest

from repro.core import (
    AddDependency,
    AddTask,
    Implementation,
    ReconfigurationError,
    RemoveDependency,
    RemoveTask,
    ReplaceImplementation,
    ScriptBuilder,
    Source,
    apply_changes,
    from_input,
    from_output,
)
from repro.core.schema import GuardKind, TaskDecl, InputSetBinding, InputObjectBinding
from repro.engine import ImplementationRegistry, LocalEngine, WorkflowStatus, outcome
from repro.workloads import diamond


def diamond_script():
    return diamond()[0]


def make_t5():
    """The paper's own scenario: add t5 with dependencies from t2 and t4."""
    return TaskDecl(
        "t5",
        "Join",
        Implementation.of(code="join"),
        (
            InputSetBinding(
                "main",
                (
                    InputObjectBinding(
                        "left", (Source("t2", "out", GuardKind.OUTPUT, "done"),)
                    ),
                    InputObjectBinding(
                        "right", (Source("t4", "out", GuardKind.OUTPUT, "done"),)
                    ),
                ),
            ),
        ),
    )


class TestSchemaChanges:
    def test_add_task_extends_compound(self):
        script = diamond_script()
        new = AddTask("fig1", make_t5()).apply_checked(script)
        assert new.tasks["fig1"].task("t5") is not None
        assert script.tasks["fig1"].task("t5") is None  # original untouched

    def test_add_duplicate_task_rejected(self):
        script = diamond_script()
        dup = TaskDecl("t2", "Produce", Implementation.of(code="produce"))
        with pytest.raises(ReconfigurationError):
            AddTask("fig1", dup).apply(script)

    def test_add_task_with_bad_sources_rejected_atomically(self):
        script = diamond_script()
        bad = TaskDecl(
            "t5",
            "Join",
            Implementation.of(code="join"),
            (
                InputSetBinding(
                    "main",
                    (
                        InputObjectBinding(
                            "left", (Source("ghost", "out", GuardKind.OUTPUT, "done"),)
                        ),
                        InputObjectBinding(
                            "right", (Source("t4", "out", GuardKind.OUTPUT, "done"),)
                        ),
                    ),
                ),
            ),
        )
        with pytest.raises(ReconfigurationError):
            AddTask("fig1", bad).apply_checked(script)

    def test_remove_task_without_dependents(self):
        script = AddTask("fig1", make_t5()).apply_checked(diamond_script())
        back = RemoveTask("fig1", "t5").apply_checked(script)
        assert back.tasks["fig1"].task("t5") is None

    def test_remove_task_with_dependents_rejected(self):
        script = diamond_script()
        with pytest.raises(ReconfigurationError) as info:
            RemoveTask("fig1", "t1").apply(script)
        assert "t2" in str(info.value)

    def test_remove_unknown_task_rejected(self):
        with pytest.raises(ReconfigurationError):
            RemoveTask("fig1", "ghost").apply(diamond_script())

    def test_add_notification_dependency_is_local(self):
        # §2 modularity: only the consumer's declaration changes
        script = diamond_script()
        change = AddDependency(
            "fig1/t2",
            "main",
            None,
            (Source("t3", None, GuardKind.OUTPUT, "done"),),
        )
        new = change.apply_checked(script)
        t2 = new.tasks["fig1"].task("t2")
        assert len(t2.input_sets[0].notifications) == 2
        # t3 (the producer) is untouched
        assert new.tasks["fig1"].task("t3") == script.tasks["fig1"].task("t3")

    def test_remove_notification_dependency(self):
        script = diamond_script()
        change = RemoveDependency("fig1/t2", "main", notification_index=0)
        new = change.apply(script)
        assert new.tasks["fig1"].task("t2").input_sets[0].notifications == ()

    def test_remove_unknown_object_dependency_rejected(self):
        with pytest.raises(ReconfigurationError):
            RemoveDependency("fig1/t2", "main", object_name="ghost").apply(
                diamond_script()
            )

    def test_replace_implementation(self):
        script = diamond_script()
        change = ReplaceImplementation("fig1/t1", Implementation.of(code="produce2"))
        new = change.apply_checked(script)
        assert new.tasks["fig1"].task("t1").implementation.code == "produce2"

    def test_batch_apply_all_or_nothing(self):
        script = diamond_script()
        changes = [
            AddTask("fig1", make_t5()),
            ReplaceImplementation("fig1/ghost", Implementation.of(code="x")),
        ]
        with pytest.raises(ReconfigurationError):
            apply_changes(script, changes)

    def test_path_into_simple_task_rejected(self):
        with pytest.raises(ReconfigurationError):
            AddTask("fig1/t1", make_t5()).apply(diamond_script())


class TestLiveReconfiguration:
    def test_add_t5_to_running_instance(self):
        # the paper's §3 scenario, on a *running* instance
        script, registry, root, inputs = diamond()
        executed = []
        registry.register(
            "join2",
            lambda ctx: executed.append(ctx.task_path)
            or outcome("done", out="joined"),
        )
        engine = LocalEngine(registry)
        wf = engine.workflow(script)
        wf.start(inputs)
        wf.step()  # root compound start + t1
        t5 = TaskDecl(
            "t5",
            "Join",
            Implementation.of(code="join2"),
            (
                InputSetBinding(
                    "main",
                    (
                        InputObjectBinding(
                            "left", (Source("t2", "out", GuardKind.OUTPUT, "done"),)
                        ),
                        InputObjectBinding(
                            "right", (Source("t4", "out", GuardKind.OUTPUT, "done"),)
                        ),
                    ),
                ),
            ),
        )
        from repro.core import ReplaceOutputMapping, apply_changes
        from repro.core.schema import OutputBinding, OutputObjectBinding

        # the compound's `done` outcome must now wait for t5, else fig1
        # terminates the moment t4 finishes and t5 never runs
        rewire = ReplaceOutputMapping(
            "fig1",
            OutputBinding(
                "done",
                (
                    OutputObjectBinding(
                        "out", (Source("t5", "out", GuardKind.OUTPUT, "done"),)
                    ),
                ),
            ),
        )
        new_script = apply_changes(wf.tree.script, [AddTask("fig1", t5), rewire])
        wf.reconfigure(new_script)
        result = wf.run_to_completion()
        # the workflow still completes, and t5 ran with inputs from t2 and t4
        assert result.completed
        assert executed == ["fig1/t5"]
        assert result.value("out") == "joined"

    def test_added_task_sees_prior_events(self):
        # add a consumer AFTER its producer already finished: the scope
        # history replay must still satisfy it
        script, registry, root, inputs = diamond()
        ran = []
        registry.register(
            "late", lambda ctx: ran.append(ctx.value("left")) or outcome("done", out="l")
        )
        wf = LocalEngine(registry).workflow(script)
        wf.start(inputs)
        wf.run_to_completion()  # everything already done
        late = TaskDecl(
            "late",
            "Consume",
            Implementation.of(code="late"),
            (
                InputSetBinding(
                    "main",
                    (
                        InputObjectBinding(
                            "inp", (Source("t1", "out", GuardKind.OUTPUT, "done"),)
                        ),
                    ),
                ),
            ),
        )
        # the compound already terminated -> adding is legal but the task can
        # never run; verify on a *live* compound instead
        wf2 = LocalEngine(registry).workflow(script)
        wf2.start(inputs)
        wf2.step()  # t1 done
        wf2.step()
        new_script = AddTask("fig1", late).apply_checked(wf2.tree.script)
        wf2.reconfigure(new_script)
        result = wf2.run_to_completion()
        assert result.completed

    def test_removing_started_task_rejected_live(self):
        script, registry, root, inputs = diamond()
        wf = LocalEngine(registry).workflow(script)
        wf.start(inputs)
        wf.step()  # t1 starts and finishes
        # build a script without t1 (and without its dependents, to pass
        # static validation) -- still refused because t1 already started
        bad = ScriptBuilder()
        with pytest.raises(ReconfigurationError):
            new_script = RemoveTask("fig1", "t1").apply(wf.tree.script)

    def test_implementation_swap_on_live_instance(self):
        script, registry, root, inputs = diamond()
        swapped = []
        registry.register(
            "join-new",
            lambda ctx: swapped.append(1) or outcome("done", out="NEW"),
        )
        wf = LocalEngine(registry).workflow(script)
        wf.start(inputs)
        wf.step()  # t1 only
        new_script = ReplaceImplementation(
            "fig1/t4", Implementation.of(code="join-new")
        ).apply_checked(wf.tree.script)
        wf.reconfigure(new_script)
        result = wf.run_to_completion()
        assert result.completed
        assert swapped == [1]
        assert result.value("out") == "NEW"

    def test_taskclass_change_rejected_live(self):
        script, registry, root, inputs = diamond()
        wf = LocalEngine(registry).workflow(script)
        wf.start(inputs)
        import dataclasses

        decl = script.tasks["fig1"]
        changed_child = dataclasses.replace(decl.task("t1"), taskclass_name="Consume")
        new_tasks = tuple(
            changed_child if t.name == "t1" else t for t in decl.tasks
        )
        from repro.core.schema import Script as SchemaScript

        new_script = SchemaScript(
            classes=dict(script.classes),
            taskclasses=dict(script.taskclasses),
            tasks={"fig1": dataclasses.replace(decl, tasks=new_tasks)},
        )
        with pytest.raises(ReconfigurationError):
            wf.reconfigure(new_script)
