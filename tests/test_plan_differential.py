"""Differential property tests: the compiled-plan engine path must produce a
byte-identical event log to the interpretive path on every compilable script.

Two script families drive the comparison: random DAGs from the workload
generators (structural diversity: fan-in alternatives, notification edges,
varying depth) and the adversarial ``Wild`` chain from
``test_properties_engine`` (behavioural diversity: aborts, repeats, crash
retries — the paths where trackers are reset and replayed)."""

from hypothesis import given, settings, strategies as st

from repro.engine import LocalEngine
from repro.workloads import generators

from tests.test_properties_engine import adversarial_script, behaviours, make_registry

settings.register_profile("repro-plan-diff", deadline=None)
settings.load_profile("repro-plan-diff")


def canonical_log(log):
    return [
        (
            entry.seq,
            entry.time,
            entry.scope_path,
            entry.producer_path,
            entry.event.producer,
            entry.event.kind.value,
            entry.event.name,
            entry.event.seq,
            tuple(
                (name, ref.class_name, ref.value, ref.produced_by, ref.via)
                for name, ref in entry.event.objects.items()
            ),
        )
        for entry in log.entries
    ]


def run_both(script, registry, root, inputs):
    plan_run = LocalEngine(registry, use_plan=True, max_repeats=10, max_steps=5_000).run(
        script, root, inputs=inputs
    )
    interp_run = LocalEngine(
        registry, use_plan=False, max_repeats=10, max_steps=5_000
    ).run(script, root, inputs=inputs)
    return plan_run, interp_run


@given(st.integers(2, 16), st.integers(1, 3), st.integers(0, 1_000))
def test_random_dags_byte_identical(n, max_deps, seed):
    script, registry, root, inputs = generators.random_dag(n, max_deps=max_deps, seed=seed)
    plan_run, interp_run = run_both(script, registry, root, inputs)
    assert canonical_log(plan_run.log) == canonical_log(interp_run.log)
    assert plan_run.status == interp_run.status
    assert plan_run.outcome == interp_run.outcome


@given(st.integers(1, 5), st.lists(behaviours, min_size=1, max_size=5))
def test_adversarial_chains_byte_identical(n, plans):
    """Aborts, repeats and crashes exercise tracker reset/replay; the plan
    path must fold the identical history to the identical state."""
    script = adversarial_script(n)
    registry = make_registry(n, plans)
    plan_run, interp_run = run_both(script, registry, None, {"inp": "s"})
    assert canonical_log(plan_run.log) == canonical_log(interp_run.log)
    assert plan_run.status == interp_run.status
    assert plan_run.outcome == interp_run.outcome
    assert plan_run.stats["steps"] == interp_run.stats["steps"]
