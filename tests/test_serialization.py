"""Unit tests for plain-data serialization of durable workflow state."""

from repro.core.schema import OutputKind
from repro.core.values import ObjectRef
from repro.engine.context import TaskResult
from repro.services import (
    ref_from_plain,
    ref_to_plain,
    refs_from_plain,
    refs_to_plain,
    result_from_plain,
    result_to_plain,
    taskclass_from_plain,
    taskclass_to_plain,
)
from repro.workloads import paper_trip


class TestRefs:
    def test_ref_roundtrip(self):
        ref = ObjectRef("Order", {"id": 7}, "wf/task", "done")
        assert ref_from_plain(ref_to_plain(ref)) == ref

    def test_ref_without_provenance(self):
        ref = ObjectRef("Order", "x")
        assert ref_from_plain(ref_to_plain(ref)) == ref

    def test_refs_map_roundtrip(self):
        refs = {"a": ObjectRef("A", 1), "b": ObjectRef("B", [1, 2])}
        assert refs_from_plain(refs_to_plain(refs)) == refs


class TestResults:
    def test_result_roundtrip_plain_values(self):
        result = TaskResult(OutputKind.OUTCOME, "done", {"out": "value"})
        back = result_from_plain(result_to_plain(result))
        assert back.kind is OutputKind.OUTCOME
        assert back.name == "done"
        assert back.objects == {"out": "value"}

    def test_result_roundtrip_ref_values(self):
        ref = ObjectRef("Data", 42, "p", "done")
        result = TaskResult(OutputKind.REPEAT, "again", {"carry": ref})
        back = result_from_plain(result_to_plain(result))
        assert back.objects["carry"] == ref

    def test_every_output_kind_roundtrips(self):
        for kind in OutputKind:
            result = TaskResult(kind, "name", {})
            assert result_from_plain(result_to_plain(result)).kind is kind


class TestTaskClasses:
    def test_simple_taskclass_roundtrip(self):
        script = paper_trip.build()
        for taskclass in script.taskclasses.values():
            back = taskclass_from_plain(taskclass_to_plain(taskclass))
            assert back == taskclass

    def test_roundtrip_preserves_atomicity(self):
        script = paper_trip.build()
        br = script.taskclasses["BusinessReservation"]
        assert taskclass_from_plain(taskclass_to_plain(br)).is_atomic
