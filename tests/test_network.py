"""Unit tests for the simulated network."""

import pytest

from repro.net.clock import EventClock, SimulationError
from repro.net.network import LatencyModel, Message, Network


def make(loss=0.0, jitter=0.0, seed=0):
    clock = EventClock()
    return clock, Network(clock, LatencyModel(1.0, jitter), loss, seed)


class TestDelivery:
    def test_message_delivered_to_receiver(self):
        clock, net = make()
        got = []
        net.attach("b", got.append)
        net.send("a", "b", "hello")
        clock.run()
        assert len(got) == 1
        assert got[0].payload == "hello"
        assert got[0].source == "a"

    def test_latency_applied(self):
        clock, net = make()
        times = []
        net.attach("b", lambda m: times.append(clock.now))
        net.send("a", "b", "x")
        clock.run()
        assert times == [1.0]

    def test_jitter_within_bounds(self):
        clock, net = make(jitter=2.0, seed=42)
        times = []
        net.attach("b", lambda m: times.append(clock.now - m.sent_at))
        for _ in range(50):
            net.send("a", "b", "x")
        clock.run()
        assert all(1.0 <= t <= 3.0 for t in times)

    def test_message_to_unattached_endpoint_dropped(self):
        clock, net = make()
        net.send("a", "ghost", "x")
        clock.run()
        assert net.stats.dropped_dead == 1

    def test_detached_receiver_loses_in_flight_message(self):
        clock, net = make()
        got = []
        net.attach("b", got.append)
        net.send("a", "b", "x")
        net.detach("b")
        clock.run()
        assert got == []
        assert net.stats.dropped_dead == 1

    def test_stats_count_sent_and_delivered(self):
        clock, net = make()
        net.attach("b", lambda m: None)
        for _ in range(3):
            net.send("a", "b", "x")
        clock.run()
        assert net.stats.sent == 3
        assert net.stats.delivered == 3


class TestLoss:
    def test_zero_loss_delivers_everything(self):
        clock, net = make(loss=0.0)
        got = []
        net.attach("b", got.append)
        for _ in range(100):
            net.send("a", "b", "x")
        clock.run()
        assert len(got) == 100

    def test_loss_rate_drops_roughly_that_fraction(self):
        clock, net = make(loss=0.5, seed=1)
        got = []
        net.attach("b", got.append)
        for _ in range(1000):
            net.send("a", "b", "x")
        clock.run()
        assert 350 < len(got) < 650
        assert net.stats.dropped_loss == 1000 - len(got)

    def test_loss_is_deterministic_under_seed(self):
        counts = []
        for _ in range(2):
            clock, net = make(loss=0.3, seed=99)
            got = []
            net.attach("b", got.append)
            for _ in range(200):
                net.send("a", "b", "x")
            clock.run()
            counts.append(len(got))
        assert counts[0] == counts[1]

    def test_invalid_loss_rate_rejected(self):
        clock = EventClock()
        with pytest.raises(SimulationError):
            Network(clock, loss_rate=1.0)


class TestPartitions:
    def test_partition_blocks_both_directions(self):
        clock, net = make()
        got = []
        net.attach("a", got.append)
        net.attach("b", got.append)
        net.partition({"a"}, {"b"})
        net.send("a", "b", "x")
        net.send("b", "a", "y")
        clock.run()
        assert got == []
        assert net.stats.dropped_partition == 2

    def test_partition_does_not_affect_third_parties(self):
        clock, net = make()
        got = []
        net.attach("c", got.append)
        net.partition({"a"}, {"b"})
        net.send("a", "c", "x")
        clock.run()
        assert len(got) == 1

    def test_heal_restores_connectivity(self):
        clock, net = make()
        got = []
        net.attach("b", got.append)
        net.partition({"a"}, {"b"})
        net.heal()
        net.send("a", "b", "x")
        clock.run()
        assert len(got) == 1

    def test_heal_specific_pair(self):
        clock, net = make()
        net.partition({"a"}, {"b", "c"})
        net.heal({"a"}, {"b"})
        assert not net.partitioned("a", "b")
        assert net.partitioned("a", "c")

    def test_heal_single_group_only_touches_that_group(self):
        # regression: heal(group) used to silently clear *all* partitions,
        # letting partial-heal experiments pass vacuously
        clock, net = make()
        net.partition({"a"}, {"b"})
        net.partition({"c"}, {"d"})
        net.heal({"a"})
        assert not net.partitioned("a", "b")
        assert net.partitioned("c", "d")

    def test_heal_single_group_via_keyword(self):
        clock, net = make()
        net.partition({"a"}, {"b"})
        net.partition({"c"}, {"d"})
        net.heal(group_b={"d"})
        assert net.partitioned("a", "b")
        assert not net.partitioned("c", "d")

    def test_heal_single_group_heals_every_touching_edge(self):
        clock, net = make()
        net.partition({"a"}, {"b", "c"})
        net.partition({"b"}, {"c"})
        net.heal({"b"})
        assert net.partitioned("a", "c")
        assert not net.partitioned("a", "b")
        assert not net.partitioned("b", "c")

    def test_partition_forming_mid_flight_drops_message(self):
        clock, net = make()
        got = []
        net.attach("b", got.append)
        net.send("a", "b", "x")
        net.partition({"a"}, {"b"})
        clock.run()
        assert got == []

class TestDuplication:
    def test_dup_rate_injects_extra_copies(self):
        clock = EventClock()
        net = Network(clock, LatencyModel(1.0), seed=4, dup_rate=0.5)
        got = []
        net.attach("b", got.append)
        for _ in range(200):
            net.send("a", "b", "x")
        clock.run()
        assert net.stats.duplicated > 0
        assert len(got) == 200 + net.stats.duplicated
        assert net.stats.delivered == len(got)

    def test_zero_dup_rate_never_duplicates(self):
        clock = EventClock()
        net = Network(clock, LatencyModel(1.0), seed=4, dup_rate=0.0)
        got = []
        net.attach("b", got.append)
        for _ in range(100):
            net.send("a", "b", "x")
        clock.run()
        assert net.stats.duplicated == 0
        assert len(got) == 100

    def test_invalid_dup_rate_rejected(self):
        clock = EventClock()
        with pytest.raises(SimulationError):
            Network(clock, dup_rate=1.0)


class TestReordering:
    def test_reorder_window_delivers_out_of_send_order(self):
        clock = EventClock()
        net = Network(clock, LatencyModel(1.0), seed=7, reorder_window=10.0)
        got = []
        net.attach("b", lambda m: got.append(m.payload))
        for n in range(50):
            net.send("a", "b", n)
        clock.run()
        assert net.stats.reordered > 0
        assert sorted(got) == list(range(50))  # nothing lost...
        assert got != sorted(got)              # ...but order was scrambled

    def test_negative_reorder_window_rejected(self):
        clock = EventClock()
        with pytest.raises(SimulationError):
            Network(clock, reorder_window=-1.0)


class TestIncarnations:
    def test_message_to_crashed_incarnation_dropped_stale(self):
        # a datagram stamped for incarnation 0 must not leak into the
        # endpoint's recovered (incarnation 1) self
        clock, net = make()
        got = []
        net.attach("b", got.append, incarnation=0)
        net.send("a", "b", "for-old-self")
        net.detach("b")
        net.attach("b", got.append, incarnation=1)
        clock.run()
        assert got == []
        assert net.stats.dropped_stale == 1

    def test_same_incarnation_still_delivered_after_reattach(self):
        clock, net = make()
        got = []
        net.attach("b", got.append, incarnation=3)
        net.send("a", "b", "x")
        net.detach("b")
        net.attach("b", got.append, incarnation=3)
        clock.run()
        assert len(got) == 1

    def test_incarnation_query(self):
        clock, net = make()
        assert net.incarnation("b") == 0
        net.attach("b", lambda m: None, incarnation=5)
        assert net.incarnation("b") == 5
