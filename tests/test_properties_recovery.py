"""Property-based cross-checks for the recovery/deadlock analyzers (E4xx)
and the runtime sanitizer.

Three obligations over generated workloads:

* *robustness*: the analyser never raises on randomly shaped lock scripts
  (arbitrary per-task acquisition orders over a shared object pool);
* *deadlock soundness*: when implementations genuinely lock their declared
  inputs in declaration order under the concurrent engine, every dynamic
  lock finding the sanitizer records — inversions and real
  ``DeadlockError`` cycles — is predicted by a static E403;
* *duplicate soundness*: under seeded transient failures the engine's
  automatic retries (§3) re-run implementations; every non-atomic task that
  executed more than once is a static W401 location (dynamic ⊆ static).
"""

from __future__ import annotations

import threading

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis import Sanitizer, analyze_script
from repro.core import ScriptBuilder, from_input, from_output
from repro.engine import ImplementationRegistry, LocalEngine, outcome
from repro.engine.concurrent import ConcurrentEngine
from repro.txn.locks import DeadlockError, LockManager, LockMode

settings.register_profile(
    "repro-recovery", deadline=None, suppress_health_check=[HealthCheck.too_slow]
)
settings.load_profile("repro-recovery")

POOL = ("w", "x", "y", "z")


def ordered_subset(objs, min_size=1):
    """An ordered subset of ``objs`` — the task's lock-acquisition order."""
    return st.permutations(list(objs)).flatmap(
        lambda perm: st.integers(min_size, len(perm)).map(
            lambda size: tuple(perm[:size])
        )
    )


def build_lock_script(orders):
    """One atomic constituent per acquisition order, all binding environment
    objects in exactly that order (so static profiles == runtime lock
    orders), with no notification edges — every pair is may-concurrent."""
    b = ScriptBuilder()
    b.object_classes("Data")
    for idx, order in enumerate(orders, 1):
        (b.taskclass(f"T{idx}")
            .input_set("main", **{o: "Data" for o in order})
            .outcome("ok", out="Data")
            .abort_outcome("fail"))
    all_objs = sorted({o for order in orders for o in order})
    (b.taskclass("Root")
        .input_set("main", **{o: "Data" for o in all_objs})
        .outcome("done", out="Data"))
    wf = b.compound("wf", "Root")
    for idx, order in enumerate(orders, 1):
        t = wf.task(f"t{idx}", f"T{idx}").implementation(code=f"impl{idx}")
        for o in order:
            t.input("main", o, from_input("wf", "main", o))
        t.up()
    wf.output("done").object("out", from_output("t1", "ok", "out")).up()
    wf.up()
    return b.build()


@st.composite
def lock_fleets(draw):
    pool = POOL[: draw(st.integers(2, 4))]
    return [draw(ordered_subset(pool)) for _ in range(draw(st.integers(2, 5)))]


@st.composite
def lock_pairs(draw):
    pool = POOL[: draw(st.integers(2, 4))]
    return [draw(ordered_subset(pool, min_size=2)) for _ in range(2)]


@given(lock_fleets())
@settings(max_examples=100)
def test_analyzer_never_raises_on_random_lock_scripts(orders):
    report = analyze_script(build_lock_script(orders))
    for finding in report.by_code("E403"):
        assert len(set(finding.related)) == 2  # a cycle names two tasks


@given(lock_pairs())
@settings(max_examples=60)
def test_runtime_lock_findings_are_statically_predicted(orders):
    """Barrier-rendezvous both constituents after their first acquisition,
    then let them contend for the rest: whatever the lockset sanitizer
    observes must be covered by the static E403 analysis."""
    script = build_lock_script(orders)
    report = analyze_script(script, include_lint=False)
    sanitizer = Sanitizer()
    manager = LockManager()
    sanitizer.attach_locks(manager)
    barrier = threading.Barrier(2, timeout=2.0)
    deadlocks = []

    def rendezvous():
        try:
            barrier.wait()
        except threading.BrokenBarrierError:
            pass

    def locker(txn, order):
        # ``acquire(wait=True)`` never blocks — it enqueues a waiter and
        # returns.  A real two-phase locker would stop at the first
        # un-granted lock, so only keep acquiring while every earlier lock
        # in the declared order was actually granted.
        def impl(ctx):
            sanitizer.bind_txn(txn, ctx.task_path)
            held_first = manager.try_acquire(txn, order[0], LockMode.EXCLUSIVE)
            try:
                if not held_first:
                    manager.acquire(txn, order[0], LockMode.EXCLUSIVE, wait=True)
            except DeadlockError:
                deadlocks.append(ctx.task_path)
            rendezvous()  # both attempted their first lock before proceeding
            if held_first:
                try:
                    for obj in order[1:]:
                        if manager.try_acquire(txn, obj, LockMode.EXCLUSIVE):
                            continue
                        manager.acquire(txn, obj, LockMode.EXCLUSIVE, wait=True)
                        break  # now waiting: stop acquiring later locks
                except DeadlockError:
                    deadlocks.append(ctx.task_path)
            rendezvous()  # both done attempting before anyone releases
            manager.release_all(txn)
            return outcome("ok", out="v")

        return impl

    registry = ImplementationRegistry()
    for idx, order in enumerate(orders, 1):
        registry.register(f"impl{idx}", locker(f"txn-{idx}", order))
    engine = ConcurrentEngine(registry, parallelism=2, sanitizer=sanitizer)
    inputs = {o: f"v-{o}" for order in orders for o in order}
    result = engine.run(script, "wf", inputs=inputs)
    assert result.completed, result.error
    assert sanitizer.check_coverage(report) == []
    if deadlocks:
        assert report.by_code("E403"), "a real deadlock demands a static E403"


# -- duplicate effects under automatic retries ---------------------------------


@st.composite
def retry_shapes(draw):
    n = draw(st.integers(2, 5))
    atomic = [draw(st.booleans()) for _ in range(n)]
    failing = [draw(st.booleans()) for _ in range(n)]
    return n, atomic, failing


def build_retry_script(n, atomic):
    b = ScriptBuilder()
    b.object_classes("Data")
    b.taskclass("Bare").input_set("main", inp="Data").outcome("ok", out="Data")
    (b.taskclass("Atomic").input_set("main", inp="Data")
        .outcome("ok", out="Data").abort_outcome("fail"))
    b.taskclass("Root").input_set("main", inp="Data").outcome("done", out="Data")
    wf = b.compound("wf", "Root")
    for i in range(1, n + 1):
        cls = "Atomic" if atomic[i - 1] else "Bare"
        t = (wf.task(f"t{i}", cls).implementation(code=f"impl{i}")
            .input("main", "inp", from_input("wf", "main", "inp")))
        if i > 1:  # chain: completion requires every task (and so every retry)
            t.notify("main", from_output(f"t{i - 1}", "ok"))
        t.up()
    wf.output("done").object("out", from_output(f"t{n}", "ok", "out")).up()
    wf.up()
    return b.build()


@given(retry_shapes())
@settings(max_examples=100)
def test_retry_duplicates_are_statically_predicted(shape):
    """Seeded chaos: a random subset of tasks fails its first attempt, the
    engine's system retry re-runs the implementation, and the bare (i.e.
    non-atomic) tasks that ran twice must all be W401 locations."""
    n, atomic, failing = shape
    script = build_retry_script(n, atomic)
    report = analyze_script(script, include_lint=False)
    w401 = {f.location for f in report.by_code("W401")}
    counts = {}

    def impl_for(fails_first):
        def impl(ctx):
            counts[ctx.task_path] = counts.get(ctx.task_path, 0) + 1
            if fails_first and counts[ctx.task_path] == 1:
                raise RuntimeError("transient fault")
            return outcome("ok", out=ctx.value("inp"))

        return impl

    registry = ImplementationRegistry()
    for i in range(1, n + 1):
        registry.register(f"impl{i}", impl_for(failing[i - 1]))
    result = LocalEngine(registry, default_retries=2).run(
        script, "wf", inputs={"inp": "seed"}
    )
    assert result.completed, result.error
    duplicated = {path for path, count in counts.items() if count >= 2}
    bare_duplicated = {
        path for path in duplicated if not atomic[int(path.rsplit("t", 1)[1]) - 1]
    }
    assert bare_duplicated <= w401
    if any(f and not a for f, a in zip(failing, atomic)):
        assert bare_duplicated, "a failing bare task must have re-run"
