"""Unit tests for simulated nodes and services."""

import pytest

from repro.net.clock import EventClock
from repro.net.network import LatencyModel, Network
from repro.net.node import Node, NodeCrashed, Service


class Recorder(Service):
    def __init__(self, name="svc"):
        super().__init__(name)
        self.messages = []
        self.started = 0
        self.recovered = 0

    def on_start(self):
        self.started += 1

    def on_message(self, message):
        self.messages.append(message.payload)

    def on_recover(self):
        self.recovered += 1


@pytest.fixture
def world():
    clock = EventClock()
    net = Network(clock, LatencyModel(1.0))
    return clock, net


class TestServices:
    def test_install_calls_on_start(self, world):
        clock, net = world
        node = Node("a", clock, net)
        svc = node.install(Recorder())
        assert svc.started == 1
        assert svc.node is node

    def test_duplicate_service_rejected(self, world):
        clock, net = world
        node = Node("a", clock, net)
        node.install(Recorder("x"))
        with pytest.raises(Exception):
            node.install(Recorder("x"))

    def test_addressed_message_routed_to_named_service(self, world):
        clock, net = world
        a, b = Node("a", clock, net), Node("b", clock, net)
        svc1, svc2 = b.install(Recorder("one")), b.install(Recorder("two"))
        a.send("b", {"service": "two", "data": 1})
        clock.run()
        assert svc1.messages == []
        assert len(svc2.messages) == 1

    def test_unaddressed_message_broadcast(self, world):
        clock, net = world
        a, b = Node("a", clock, net), Node("b", clock, net)
        svc1, svc2 = b.install(Recorder("one")), b.install(Recorder("two"))
        a.send("b", "plain")
        clock.run()
        assert svc1.messages == ["plain"]
        assert svc2.messages == ["plain"]


class TestCrashRecover:
    def test_crashed_node_cannot_send(self, world):
        clock, net = world
        node = Node("a", clock, net)
        node.crash()
        with pytest.raises(NodeCrashed):
            node.send("b", "x")

    def test_crashed_node_does_not_receive(self, world):
        clock, net = world
        a, b = Node("a", clock, net), Node("b", clock, net)
        svc = b.install(Recorder())
        b.crash()
        a.send("b", "x")
        clock.run()
        assert svc.messages == []

    def test_recover_calls_on_recover(self, world):
        clock, net = world
        node = Node("a", clock, net)
        svc = node.install(Recorder())
        node.crash()
        node.recover()
        assert svc.recovered == 1

    def test_recovered_node_receives_again(self, world):
        clock, net = world
        a, b = Node("a", clock, net), Node("b", clock, net)
        svc = b.install(Recorder())
        b.crash()
        b.recover()
        a.send("b", "x")
        clock.run()
        assert svc.messages == ["x"]

    def test_crash_is_idempotent(self, world):
        clock, net = world
        node = Node("a", clock, net)
        node.crash()
        node.crash()
        assert node.crash_count == 1

    def test_stable_store_survives_crash(self, world):
        clock, net = world
        node = Node("a", clock, net)
        node.stable_store["k"] = "v"
        node.crash()
        node.recover()
        assert node.stable_store["k"] == "v"


class TestTimers:
    def test_timer_fires_on_live_node(self, world):
        clock, net = world
        node = Node("a", clock, net)
        seen = []
        node.call_after(5.0, lambda: seen.append(clock.now))
        clock.run()
        assert seen == [5.0]

    def test_timer_suppressed_if_node_crashed(self, world):
        clock, net = world
        node = Node("a", clock, net)
        seen = []
        node.call_after(5.0, lambda: seen.append(1))
        node.crash()
        clock.run()
        assert seen == []

    def test_timer_from_before_crash_suppressed_after_recovery(self, world):
        clock, net = world
        node = Node("a", clock, net)
        seen = []
        node.call_after(5.0, lambda: seen.append(1))
        clock.call_at(1.0, node.crash)
        clock.call_at(2.0, node.recover)
        clock.run()
        assert seen == []  # epoch changed: old timers are dead
