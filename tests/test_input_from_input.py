"""The paper's §4.3 dataflow example, end to end.

"In the example below a task instance t1 is specifying that its input object
reference i1 can be satisfied by any of: task t2's input object i3 from the
input set main, task t3's output object o1 if t3's outcome is oc1 or task
t3's output object o2 if t3's outcome is oc2."
"""

import pytest

from repro.engine import ImplementationRegistry, LocalEngine, outcome
from repro.lang import compile_script

SCRIPT = """
class C;

taskclass TC1
{
    inputs { input main { i1 of class C; i2 of class C } };
    outputs { outcome done { r of class C } }
};

taskclass TC2
{
    inputs { input main { i3 of class C } };
    outputs { outcome oc9 { } }
};

taskclass TC3
{
    inputs { input main { seed of class C } };
    outputs
    {
        outcome oc1 { o1 of class C };
        outcome oc2 { o2 of class C }
    }
};

taskclass TC4
{
    inputs { input main { seed of class C } };
    outputs { outcome oc1 { o1 of class C } }
};

taskclass Root
{
    inputs { input main { seed of class C } };
    outputs { outcome done { r of class C } }
};

compoundtask wf of taskclass Root
{
    task t2 of taskclass TC2
    {
        implementation { "code" is "t2" };
        inputs { input main { inputobject i3 from
            { seed of task wf if input main } } }
    };
    task t3 of taskclass TC3
    {
        implementation { "code" is "t3" };
        inputs { input main { inputobject seed from
            { seed of task wf if input main } } }
    };
    task t4 of taskclass TC4
    {
        implementation { "code" is "t4" };
        inputs { input main { inputobject seed from
            { seed of task wf if input main } } }
    };
    task t1 of taskclass TC1
    {
        implementation { "code" is "t1" };
        inputs
        {
            input main
            {
                inputobject i1 from
                {
                    i3 of task t2 if input main;
                    o1 of task t3 if output oc1;
                    o2 of task t3 if output oc2
                };
                inputobject i2 from
                {
                    o1 of task t4 if output oc1
                }
            }
        }
    };
    outputs
    {
        outcome done { outputobject r from { r of task t1 if output done } }
    }
};
"""


def registry(t3_outcome="oc1"):
    reg = ImplementationRegistry()
    reg.register("t2", lambda ctx: outcome("oc9"))
    reg.register(
        "t3",
        lambda ctx: outcome("oc1", o1="o1-value")
        if t3_outcome == "oc1"
        else outcome("oc2", o2="o2-value"),
    )
    reg.register("t4", lambda ctx: outcome("oc1", o1="t4-o1"))
    reg.register(
        "t1",
        lambda ctx: outcome("done", r=f"i1={ctx.value('i1')} i2={ctx.value('i2')}"),
    )
    return reg


class TestPaperSection43Example:
    def test_script_compiles(self):
        compile_script(SCRIPT)

    def test_i1_taken_from_t2s_input(self):
        """The first-listed alternative is t2's *input object* i3 — t1 gets
        the very value the environment fed into t2, as soon as t2 starts."""
        script = compile_script(SCRIPT)
        result = LocalEngine(registry()).run(script, inputs={"seed": "SEED"})
        assert result.completed
        # i1 came from t2's input (the seed), i2 from t4's o1
        assert result.value("r") == "i1=SEED i2=t4-o1"

    def test_alternatives_fall_back_to_t3_outputs(self):
        """With t2 removed from the running set (its source renamed away),
        t1 falls back to t3's outcome objects, whichever outcome occurred."""
        # build a variant where t2's alternative can never fire: t2 consumes
        # a different input set name that the compound never provides
        variant = SCRIPT.replace("i3 of task t2 if input main", "o1 of task t3 if output oc1")
        script = compile_script(variant)
        result = LocalEngine(registry("oc2")).run(script, inputs={"seed": "S"})
        assert result.completed
        assert result.value("r") == "i1=o2-value i2=t4-o1"

    def test_provenance_of_input_from_input(self):
        script = compile_script(SCRIPT)
        result = LocalEngine(registry()).run(script, inputs={"seed": "SEED"})
        from repro.core.selection import EventKind

        t1_input = result.log.first("wf/t1", EventKind.INPUT)
        i1 = t1_input.event.objects["i1"]
        assert i1.value == "SEED"
