"""Tests for Arjuna-style nested transactions (§2: atomic tasks "possibly
containing nested transactions within")."""

import pytest

from repro.txn import (
    ObjectStore,
    TransactionAborted,
    TransactionManager,
    TransactionState,
)
from repro.txn.ids import ObjectId, TransactionId
from repro.txn.locks import LockManager, LockMode


@pytest.fixture
def store():
    return ObjectStore("s")


@pytest.fixture
def tm(store):
    return TransactionManager("tm", decision_store=store)


class TestNestedBasics:
    def test_child_sees_parent_writes(self, store, tm):
        parent = tm.begin()
        parent.write(store, "x", 1)
        child = parent.begin_nested()
        assert child.read(store, "x") == 1
        child.abort()
        parent.abort()

    def test_child_commit_merges_into_parent(self, store, tm):
        parent = tm.begin()
        child = parent.begin_nested()
        child.write(store, "x", "from-child")
        child.commit()
        assert parent.read(store, "x") == "from-child"
        assert not store.exists("x")  # still provisional
        parent.commit()
        assert store.read_committed("x") == "from-child"

    def test_child_abort_discards_only_child_writes(self, store, tm):
        parent = tm.begin()
        parent.write(store, "kept", 1)
        child = parent.begin_nested()
        child.write(store, "dropped", 2)
        child.abort()
        parent.commit()
        assert store.read_committed("kept") == 1
        assert not store.exists("dropped")

    def test_grandchild_nesting(self, store, tm):
        top = tm.begin()
        child = top.begin_nested()
        grandchild = child.begin_nested()
        grandchild.write(store, "x", "deep")
        grandchild.commit()
        assert child.read(store, "x") == "deep"
        child.commit()
        top.commit()
        assert store.read_committed("x") == "deep"

    def test_child_overwrite_wins_over_parent(self, store, tm):
        parent = tm.begin()
        parent.write(store, "x", "old")
        child = parent.begin_nested()
        child.write(store, "x", "new")
        child.commit()
        parent.commit()
        assert store.read_committed("x") == "new"


class TestNestingDiscipline:
    def test_parent_unusable_while_child_open(self, store, tm):
        parent = tm.begin()
        child = parent.begin_nested()
        with pytest.raises(TransactionAborted):
            parent.write(store, "x", 1)
        child.abort()
        parent.write(store, "x", 1)  # usable again
        parent.commit()

    def test_parent_commit_refused_while_child_open(self, store, tm):
        parent = tm.begin()
        parent.begin_nested()
        with pytest.raises(TransactionAborted):
            parent.commit()
        parent.abort()

    def test_parent_abort_cascades_to_child(self, store, tm):
        parent = tm.begin()
        child = parent.begin_nested()
        child.write(store, "x", 1)
        parent.abort()
        assert child.state is TransactionState.ABORTED
        assert not store.exists("x")

    def test_closed_child_cannot_be_reused(self, store, tm):
        parent = tm.begin()
        child = parent.begin_nested()
        child.commit()
        with pytest.raises(TransactionAborted):
            child.write(store, "x", 1)
        parent.abort()


class TestNestedLocking:
    def test_child_locks_under_top_survive_child_abort(self, store, tm):
        parent = tm.begin()
        child = parent.begin_nested()
        child.write(store, "x", 1)
        child.abort()
        # another transaction still cannot touch x: the lock is retained by
        # the top-level transaction (conservative inheritance)
        other = tm.begin()
        with pytest.raises(TransactionAborted):
            other.write(store, "x", 2)
        parent.abort()
        retry = tm.begin()
        retry.write(store, "x", 3)
        retry.commit()
        assert store.read_committed("x") == 3

    def test_child_can_touch_what_parent_holds(self, store, tm):
        parent = tm.begin()
        parent.write(store, "x", 1)
        child = parent.begin_nested()
        child.write(store, "x", 2)  # no self-conflict with the ancestor
        child.commit()
        parent.commit()
        assert store.read_committed("x") == 2

    def test_transfer_all_moves_locks(self):
        locks = LockManager()
        child, parent = TransactionId(2), TransactionId(1)
        locks.try_acquire(child, ObjectId("a"), LockMode.EXCLUSIVE)
        locks.try_acquire(child, ObjectId("b"), LockMode.SHARED)
        locks.transfer_all(child, parent)
        assert locks.held_by(child) == set()
        assert locks.mode_of(parent, ObjectId("a")) is LockMode.EXCLUSIVE
        assert locks.mode_of(parent, ObjectId("b")) is LockMode.SHARED

    def test_transfer_does_not_downgrade_parent_exclusive(self):
        locks = LockManager()
        child, parent = TransactionId(2), TransactionId(1)
        locks.try_acquire(parent, ObjectId("a"), LockMode.EXCLUSIVE)
        locks.try_acquire(child, ObjectId("b"), LockMode.SHARED)
        locks.transfer_all(child, parent)
        assert locks.mode_of(parent, ObjectId("a")) is LockMode.EXCLUSIVE


class TestNestedDurability:
    def test_only_top_commit_is_durable(self, store, tm):
        parent = tm.begin()
        child = parent.begin_nested()
        child.write(store, "x", 1)
        child.commit()
        store.crash()  # nothing was forced yet
        assert not store.exists("x")

    def test_crash_after_top_commit_keeps_merged_writes(self, store, tm):
        parent = tm.begin()
        child = parent.begin_nested()
        child.write(store, "x", 1)
        child.commit()
        parent.write(store, "y", 2)
        parent.commit()
        store.crash()
        assert store.read_committed("x") == 1
        assert store.read_committed("y") == 2
