"""Property-based cross-checks between the static analyser and the engines.

Two soundness obligations, exercised over generated workloads:

* *liveness*: anything the real engine actually does must be statically
  possible — a completed run's outcome is never "unreachable", a task that
  ran is never "dead";
* *interference*: any pair of tasks the engine would hand out in one
  ``drain_ready()`` cycle while sharing an object reference must be a
  ``W301`` pair (the static may-concurrent relation over-approximates the
  engine's real enablement relation).

Plus robustness: the analyser never raises an internal error on anything
the front end compiles (generators reused from the front-end fuzzer).
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis import analyze_script, check_interference, check_liveness
from repro.core import ScriptBuilder, from_input, from_output
from repro.core.errors import ParseError, SchemaError, ValidationReport
from repro.core.selection import EventKind
from repro.engine import (
    ImplementationRegistry,
    LocalEngine,
    LocalWorkflow,
    enabled_pairs,
    outcome,
)
from repro.lang import compile_script

from tests.test_fuzz_frontend import fragments
from tests.test_properties_engine import (
    adversarial_script,
    behaviours,
    make_registry,
)

settings.register_profile(
    "repro-analysis", deadline=None, suppress_health_check=[HealthCheck.too_slow]
)
settings.load_profile("repro-analysis")


@given(st.lists(fragments, max_size=60).map(" ".join))
def test_analyzer_never_raises_on_compilable_fuzz_output(text):
    try:
        script = compile_script(text)
    except (ParseError, ValidationReport, SchemaError):
        return  # front end rejected it; nothing to analyse
    analyze_script(script)


@given(st.integers(1, 5), st.lists(behaviours, min_size=1, max_size=5))
def test_executed_behaviour_is_statically_possible(n, plans):
    """The static may-analysis over-approximates the engine: whatever one
    concrete run did cannot have been declared impossible."""
    script = adversarial_script(n)
    liveness = check_liveness(script)
    assert liveness.dead_tasks == []
    result = LocalEngine(make_registry(n, plans), max_repeats=10, max_steps=5_000).run(
        script, inputs={"inp": "s"}
    )
    if result.completed:
        # the engine terminated in a declared outcome, so the stall analysis
        # cannot have called the workflow guaranteed-stalled, nor the
        # reached outcome unreachable
        assert "E200" not in {f.code for f in liveness.findings}
        assert result.outcome in liveness.reachable_outcomes
        assert result.outcome not in liveness.unreachable_outcomes
    started = {
        entry.producer_path
        for entry in result.log.entries
        if entry.event.kind is EventKind.INPUT
        and entry.producer_path.startswith("wf/")
    }
    for path in started:
        assert liveness.may_start(path)


@st.composite
def fanout_shapes(draw):
    """n tasks all holding the environment's object, plus a random set of
    notification edges i -> j (i < j) that order some of them."""
    n = draw(st.integers(2, 5))
    edges = [
        (i, j)
        for j in range(2, n + 1)
        for i in range(1, j)
        if draw(st.booleans())
    ]
    return n, edges


def build_fanout(n, edges):
    b = ScriptBuilder()
    b.object_class("Data")
    b.taskclass("T").input_set("main", inp="Data").outcome("ok", out="Data")
    b.taskclass("Root").input_set("main", inp="Data").outcome("done", out="Data")
    c = b.compound("wf", "Root")
    for j in range(1, n + 1):
        t = c.task(f"t{j}", "T").implementation(code="impl")
        t.input("main", "inp", from_input("wf", "main", "inp"))
        for i, k in edges:
            if k == j:
                t.notify("main", from_output(f"t{i}", "ok"))
        t.up()
    c.output("done").object("out", from_output(f"t{n}", "ok", "out")).up()
    c.up()
    return b.build()


def _unordered_pairs(n, edges):
    """Ground truth for the fan-out shape: {i, j} can be simultaneously
    enabled by ``drain_ready()`` iff neither transitively precedes the other
    (run every predecessor of both, leave both unexecuted)."""
    ancestors = {j: set() for j in range(1, n + 1)}
    for i, j in sorted(edges):  # edges go low -> high, one pass suffices
        ancestors[j] |= ancestors[i] | {i}
    return {
        frozenset((f"wf/t{i}", f"wf/t{j}"))
        for i in range(1, n + 1)
        for j in range(i + 1, n + 1)
        if i not in ancestors[j] and j not in ancestors[i]
    }


@given(fanout_shapes())
def test_interference_is_exact_on_fanout_shapes(shape):
    """Both directions of the W301 contract (all tasks here share the
    environment object, so every concurrent pair is racy):

    * *sound*: every simultaneously enabled pair one engine run exposes is
      reported;
    * *precise*: every reported pair is genuinely concurrently-enabled per
      ``drain_ready()`` semantics — some schedule co-enables it (equivalent,
      for these shapes, to neither task transitively preceding the other).
    """
    n, edges = shape
    script = build_fanout(n, edges)
    static_pairs = {frozenset(f.related) for f in check_interference(script)}
    assert static_pairs == _unordered_pairs(n, edges)
    registry = ImplementationRegistry()
    registry.register("impl", lambda ctx: outcome("ok", out=ctx.value("inp")))
    wf = LocalWorkflow(script, "wf", registry)
    wf.start({"inp": "x"})
    observed = enabled_pairs(wf.tree)
    while wf.step():
        observed |= enabled_pairs(wf.tree)
    assert observed <= static_pairs
