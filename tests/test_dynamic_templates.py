"""Tests for dynamic template expansion (§5.3's "dynamic task" pattern) and
the per-task monitoring view."""

import pytest

from repro.core import (
    AddTemplateInstances,
    ReconfigurationError,
    ReplaceOutputMapping,
    ScriptBuilder,
    apply_changes,
    from_input,
    from_output,
)
from repro.core.schema import (
    GuardKind,
    Implementation,
    InputObjectBinding,
    InputSetBinding,
    OutputBinding,
    OutputObjectBinding,
    Source,
    TaskDecl,
    TaskTemplate,
)
from repro.engine import ImplementationRegistry, LocalEngine, outcome
from repro.services import WorkflowSystem
from repro.workloads import paper_order


def fanout_script():
    """A compound with one query task, plus a template for stamping more."""
    b = ScriptBuilder()
    b.object_class("Data")
    b.taskclass("Query").input_set("main", request="Data").outcome(
        "quote", flight="Data"
    ).outcome("noQuote")
    b.taskclass("Root").input_set("main", request="Data").outcome(
        "found", flight="Data"
    )
    c = b.compound("search", "Root")
    c.task("q1", "Query").implementation(code="refQ1").input(
        "main", "request", from_input("search", "main", "request")
    ).up()
    c.output("found").object("flight", from_output("q1", "quote", "flight")).up()
    c.up()
    template_body = TaskDecl(
        "query",
        "Query",
        Implementation.of(code="refDynamic"),
        (
            InputSetBinding(
                "main",
                (
                    InputObjectBinding(
                        "request",
                        (Source("search", "request", GuardKind.INPUT, "main"),),
                    ),
                ),
            ),
        ),
    )
    script = b.build(validate=False)
    script.add_template(TaskTemplate("QueryTemplate", (), template_body))
    from repro.core import check

    return check(script)


class TestAddTemplateInstances:
    def test_static_expansion(self):
        script = fanout_script()
        change = AddTemplateInstances(
            "search", "QueryTemplate", (("q2", ()), ("q3", ()))
        )
        new_script = change.apply_checked(script)
        search = new_script.tasks["search"]
        assert {t.name for t in search.tasks} == {"q1", "q2", "q3"}
        assert search.task("q2").implementation.code == "refDynamic"

    def test_duplicate_name_rejected(self):
        script = fanout_script()
        with pytest.raises(ReconfigurationError):
            AddTemplateInstances("search", "QueryTemplate", (("q1", ()),)).apply(script)

    def test_unknown_template_rejected(self):
        with pytest.raises(ReconfigurationError):
            AddTemplateInstances("search", "Ghost", (("q2", ()),)).apply(fanout_script())

    def test_dynamic_fanout_on_running_instance(self):
        """q1 has no quote; at run time two more queries are stamped from the
        template and the output rewired to accept any of them."""
        script = fanout_script()
        registry = ImplementationRegistry()
        registry.register("refQ1", lambda ctx: outcome("noQuote"))
        registry.register(
            "refDynamic", lambda ctx: outcome("quote", flight=f"flight-of-{ctx.task_path}")
        )
        wf = LocalEngine(registry).workflow(script)
        wf.start({"request": "LHR->AMS"})
        wf.run_to_completion()  # q1 found nothing; the compound is stuck
        assert wf.status.value == "stalled"

        grow = AddTemplateInstances("search", "QueryTemplate", (("q2", ()), ("q3", ())))
        rewire = ReplaceOutputMapping(
            "search",
            OutputBinding(
                "found",
                (
                    OutputObjectBinding(
                        "flight",
                        (
                            Source("q1", "flight", GuardKind.OUTPUT, "quote"),
                            Source("q2", "flight", GuardKind.OUTPUT, "quote"),
                            Source("q3", "flight", GuardKind.OUTPUT, "quote"),
                        ),
                    ),
                ),
            ),
        )
        wf.reconfigure(apply_changes(wf.tree.script, [grow, rewire]))
        result = wf.run_to_completion()
        assert result.completed
        assert result.value("flight") == "flight-of-search/q2"


class TestTasksView:
    def test_tasks_view_shows_states(self):
        system = WorkflowSystem(workers=2)
        paper_order.default_registry(registry=system.registry)
        system.deploy("order", paper_order.SCRIPT_TEXT)
        iid = system.instantiate("order", paper_order.ROOT_TASK, {"order": "o"})
        system.run_until_terminal(iid)
        rows = {row["path"]: row for row in system.execution_proxy().tasks(iid)}
        assert rows["processOrderApplication"]["state"] == "completed"
        assert rows["processOrderApplication"]["outcome"] == "orderCompleted"
        assert rows["processOrderApplication/dispatch"]["starts"] == 1
        assert rows["processOrderApplication/dispatch"]["compound"] is False

    def test_tasks_view_mid_run(self):
        system = WorkflowSystem(workers=1)
        paper_order.default_registry(registry=system.registry)
        system.deploy("order", paper_order.SCRIPT_TEXT)
        iid = system.instantiate("order", paper_order.ROOT_TASK, {"order": "o"})
        rows = {row["path"]: row for row in system.execution_proxy().tasks(iid)}
        assert rows["processOrderApplication"]["state"] == "executing"
        in_flight = [p for p, r in rows.items() if r["in_flight"]]
        assert in_flight  # something has been dispatched
