"""Tests for the execution service's monitoring and maintenance operations."""

from repro.net import FaultPlan
from repro.services import WorkflowSystem
from repro.workloads import paper_order


def started_system():
    system = WorkflowSystem(workers=2)
    paper_order.default_registry(registry=system.registry)
    system.deploy("order", paper_order.SCRIPT_TEXT)
    iid = system.instantiate("order", paper_order.ROOT_TASK, {"order": "o-1"})
    return system, iid


class TestTrace:
    def test_trace_of_finished_instance(self):
        system, iid = started_system()
        system.run_until_terminal(iid)
        trace = system.execution_proxy().trace(iid)
        assert "orderCompleted" in trace
        assert "dispatch" in trace

    def test_trace_of_running_instance(self):
        system, iid = started_system()
        trace = system.execution_proxy().trace(iid)
        assert "input:main" in trace  # at least the root start is visible


class TestCompaction:
    def test_compact_shrinks_the_log(self):
        system, iid = started_system()
        system.run_until_terminal(iid)
        before = len(system.execution_store.wal)
        after = system.execution_proxy().compact()
        assert after < before

    def test_recovery_works_after_compaction(self):
        system, iid = started_system()
        result = system.run_until_terminal(iid)
        system.execution_proxy().compact()
        system.execution_node.crash()
        system.execution_node.recover()
        again = system.execution.result(iid)
        assert again["outcome"] == result["outcome"]
        assert again["objects"] == result["objects"]

    def test_compaction_mid_run_preserves_progress(self):
        system, iid = started_system()
        system.clock.advance(3.0)  # partial progress
        system.execution_proxy().compact()
        FaultPlan(system.clock).crash_at(
            system.execution_node, when=system.clock.now + 1.0, down_for=20.0
        ).arm()
        result = system.run_until_terminal(iid, max_time=10_000)
        assert result["status"] == "completed"

    def test_compact_on_volatile_system_is_noop(self):
        system = WorkflowSystem(workers=1, durable=False)
        paper_order.default_registry(registry=system.registry)
        system.deploy("order", paper_order.SCRIPT_TEXT)
        iid = system.instantiate("order", paper_order.ROOT_TASK, {"order": "o"})
        system.run_until_terminal(iid)
        assert system.execution_proxy().compact() == 0
