"""Unit tests for stores, transactions, 2PC and recovery."""

import pytest

from repro.txn import (
    AtomicObject,
    NoSuchObject,
    ObjectStore,
    RetriesExhausted,
    TransactionAborted,
    TransactionManager,
    TransactionState,
    recover_with_coordinator,
)


@pytest.fixture
def store():
    return ObjectStore("s1")


@pytest.fixture
def tm(store):
    return TransactionManager("tm", decision_store=store)


class TestStore:
    def test_read_missing_raises(self, store):
        with pytest.raises(NoSuchObject):
            store.read_committed("nope")

    def test_get_committed_default(self, store):
        assert store.get_committed("nope", 42) == 42

    def test_get_committed_many_preserves_order_and_defaults(self, store, tm):
        with tm.begin() as txn:
            txn.write(store, "a", 1)
            txn.write(store, "c", 3)
        assert store.get_committed_many(["a", "b", "c"]) == [1, None, 3]
        assert store.get_committed_many(["b"], default=0) == [0]
        assert store.get_committed_many([]) == []

    def test_get_committed_many_matches_per_key_reads(self, store, tm):
        with tm.begin() as txn:
            for i in range(8):
                txn.write(store, f"journal:{i}", {"n": i})
        keys = [f"journal:{i}" for i in range(10)]
        assert store.get_committed_many(keys) == [
            store.get_committed(k) for k in keys
        ]

    def test_crash_loses_unforced_state_only(self, store, tm):
        with tm.begin() as txn:
            txn.write(store, "x", 1)
        store.crash()
        assert store.read_committed("x") == 1

    def test_snapshot_is_a_copy(self, store, tm):
        with tm.begin() as txn:
            txn.write(store, "x", 1)
        snap = store.snapshot()
        snap["x"] = 99
        assert store.read_committed("x") == 1

    def test_checkpoint_preserves_state(self, store, tm):
        for i in range(5):
            with tm.begin() as txn:
                txn.write(store, "x", i)
        store.checkpoint()
        store.crash()
        assert store.read_committed("x") == 4


class TestTransactions:
    def test_commit_installs_writes(self, store, tm):
        txn = tm.begin()
        txn.write(store, "x", "v")
        txn.commit()
        assert store.read_committed("x") == "v"
        assert txn.state is TransactionState.COMMITTED

    def test_abort_discards_writes(self, store, tm):
        txn = tm.begin()
        txn.write(store, "x", "v")
        txn.abort()
        assert not store.exists("x")

    def test_read_own_writes(self, store, tm):
        txn = tm.begin()
        txn.write(store, "x", 1)
        assert txn.read(store, "x") == 1
        txn.abort()

    def test_isolation_uncommitted_invisible(self, store, tm):
        txn = tm.begin()
        txn.write(store, "x", 1)
        assert not store.exists("x")
        txn.commit()

    def test_write_write_conflict_aborts_second(self, store, tm):
        t1 = tm.begin()
        t1.write(store, "x", 1)
        t2 = tm.begin()
        with pytest.raises(TransactionAborted):
            t2.write(store, "x", 2)
        assert t2.state is TransactionState.ABORTED
        t1.commit()
        assert store.read_committed("x") == 1

    def test_read_read_no_conflict(self, store, tm):
        with tm.begin() as setup:
            setup.write(store, "x", 0)
        t1, t2 = tm.begin(), tm.begin()
        assert t1.read(store, "x") == 0
        assert t2.read(store, "x") == 0
        t1.commit()
        t2.commit()

    def test_locks_released_on_commit(self, store, tm):
        t1 = tm.begin()
        t1.write(store, "x", 1)
        t1.commit()
        t2 = tm.begin()
        t2.write(store, "x", 2)
        t2.commit()
        assert store.read_committed("x") == 2

    def test_context_manager_commits_on_success(self, store, tm):
        with tm.begin() as txn:
            txn.write(store, "x", 1)
        assert store.read_committed("x") == 1

    def test_context_manager_aborts_on_exception(self, store, tm):
        with pytest.raises(RuntimeError):
            with tm.begin() as txn:
                txn.write(store, "x", 1)
                raise RuntimeError("boom")
        assert not store.exists("x")

    def test_operations_after_commit_rejected(self, store, tm):
        txn = tm.begin()
        txn.commit()
        with pytest.raises(TransactionAborted):
            txn.write(store, "x", 1)

    def test_crash_before_commit_loses_writes(self, store, tm):
        txn = tm.begin()
        txn.write(store, "x", 1)
        store.crash()  # node dies mid-transaction
        assert not store.exists("x")

    def test_stats_track_outcomes(self, store, tm):
        with tm.begin() as txn:
            txn.write(store, "x", 1)
        bad = tm.begin()
        bad.abort()
        assert tm.stats["committed"] == 1
        assert tm.stats["aborted"] == 1


class TestRunWithRetries:
    def test_run_retries_conflicts(self, store, tm):
        with tm.begin() as setup:
            setup.write(store, "x", 0)
        blocker = tm.begin()
        blocker.write(store, "x", 99)
        calls = []

        def body(txn):
            calls.append(1)
            if len(calls) == 1:
                # first attempt hits the blocker's lock
                return txn.read(store, "x")
            return txn.read(store, "x")

        # release the blocker after the first conflict by running it inline:
        try:
            tm.run(lambda txn: txn.write(store, "x", 1), retries=0)
        except RetriesExhausted:
            pass
        blocker.commit()
        assert tm.run(lambda txn: txn.read(store, "x")) == 99

    def test_run_raises_after_retry_budget(self, store, tm):
        blocker = tm.begin()
        blocker.write(store, "x", 1)
        with pytest.raises(RetriesExhausted):
            tm.run(lambda txn: txn.write(store, "x", 2), retries=2)
        assert tm.stats["retried"] == 3

    def test_run_propagates_application_errors(self, store, tm):
        with pytest.raises(ValueError):
            tm.run(lambda txn: (_ for _ in ()).throw(ValueError("app")))


class TestTwoPhaseCommit:
    def test_commit_spans_two_stores(self, tm):
        s1, s2 = ObjectStore("s1"), ObjectStore("s2")
        txn = tm.begin()
        txn.write(s1, "x", 1)
        txn.write(s2, "y", 2)
        txn.commit()
        assert s1.read_committed("x") == 1
        assert s2.read_committed("y") == 2

    def test_participants_log_prepare(self, tm):
        s1, s2 = ObjectStore("s1"), ObjectStore("s2")
        txn = tm.begin()
        txn.write(s1, "x", 1)
        txn.write(s2, "y", 2)
        txn.commit()
        kinds1 = [r.kind for r in s1.wal.durable_records()]
        assert "PREPARE" in kinds1 and "COMMIT" in kinds1

    def test_in_doubt_participant_resolves_commit(self, tm):
        s1, s2 = ObjectStore("s1"), ObjectStore("s2")
        txn = tm.begin()
        txn.write(s1, "x", 1)
        txn.write(s2, "y", 2)
        txn.commit()
        # simulate s2 crashing right after PREPARE: rebuild it from a log
        # that has no COMMIT record
        s2b = ObjectStore("s2b")
        tid = txn.tid
        s2b.log_updates(tid, {"y": 2})
        s2b.prepare(tid)
        s2b.crash()
        assert list(s2b.in_doubt()) == [tid]
        decisions = recover_with_coordinator(s2b, tm)
        assert decisions[tid] is True
        assert s2b.read_committed("y") == 2

    def test_in_doubt_without_decision_presumed_abort(self, store):
        lonely = TransactionManager("other", decision_store=ObjectStore("d"))
        s = ObjectStore("s")
        from repro.txn import TransactionId

        tid = TransactionId(77, "gone")
        s.log_updates(tid, {"x": 1})
        s.prepare(tid)
        decisions = recover_with_coordinator(s, lonely)
        assert decisions[tid] is False
        assert not s.exists("x")


class TestAtomicObject:
    def test_initial_value_durable(self, store, tm):
        counter = AtomicObject(store, "c", initial=0)
        store.crash()
        assert counter.peek() == 0

    def test_modify_read_modify_write(self, store, tm):
        counter = AtomicObject(store, "c", initial=10)
        with tm.begin() as txn:
            new = counter.modify(txn, lambda v: v + 5)
        assert new == 15
        assert counter.peek() == 15

    def test_existing_object_not_reinitialised(self, store, tm):
        AtomicObject(store, "c", initial=1)
        again = AtomicObject(store, "c", initial=99)
        assert again.peek() == 1

    def test_peek_missing_returns_none(self, store):
        obj = AtomicObject(store, "ghost", create=False)
        assert obj.peek() is None
