"""Unit tests for the strict-2PL lock manager."""

import pytest

from repro.txn.ids import ObjectId, TransactionId
from repro.txn.locks import DeadlockError, LockConflict, LockManager, LockMode

T1, T2, T3 = TransactionId(1), TransactionId(2), TransactionId(3)
A, B = ObjectId("a"), ObjectId("b")


@pytest.fixture
def locks():
    return LockManager()


class TestBasicModes:
    def test_exclusive_acquire(self, locks):
        assert locks.try_acquire(T1, A, LockMode.EXCLUSIVE)
        assert locks.mode_of(T1, A) is LockMode.EXCLUSIVE

    def test_shared_locks_compatible(self, locks):
        assert locks.try_acquire(T1, A, LockMode.SHARED)
        assert locks.try_acquire(T2, A, LockMode.SHARED)

    def test_exclusive_blocks_shared(self, locks):
        locks.try_acquire(T1, A, LockMode.EXCLUSIVE)
        assert not locks.try_acquire(T2, A, LockMode.SHARED)

    def test_shared_blocks_exclusive(self, locks):
        locks.try_acquire(T1, A, LockMode.SHARED)
        assert not locks.try_acquire(T2, A, LockMode.EXCLUSIVE)

    def test_reacquire_same_mode_is_noop(self, locks):
        locks.try_acquire(T1, A, LockMode.SHARED)
        assert locks.try_acquire(T1, A, LockMode.SHARED)

    def test_upgrade_by_sole_holder(self, locks):
        locks.try_acquire(T1, A, LockMode.SHARED)
        assert locks.try_acquire(T1, A, LockMode.EXCLUSIVE)
        assert locks.mode_of(T1, A) is LockMode.EXCLUSIVE

    def test_upgrade_refused_with_other_sharers(self, locks):
        locks.try_acquire(T1, A, LockMode.SHARED)
        locks.try_acquire(T2, A, LockMode.SHARED)
        assert not locks.try_acquire(T1, A, LockMode.EXCLUSIVE)

    def test_exclusive_holder_may_downgrade_request(self, locks):
        locks.try_acquire(T1, A, LockMode.EXCLUSIVE)
        assert locks.try_acquire(T1, A, LockMode.SHARED)
        # holding exclusive already covers shared
        assert locks.mode_of(T1, A) is LockMode.EXCLUSIVE


class TestConflictsAndRelease:
    def test_acquire_raises_lock_conflict(self, locks):
        locks.try_acquire(T1, A, LockMode.EXCLUSIVE)
        with pytest.raises(LockConflict) as info:
            locks.acquire(T2, A, LockMode.SHARED)
        assert info.value.holders == {T1}

    def test_release_all_frees_objects(self, locks):
        locks.try_acquire(T1, A, LockMode.EXCLUSIVE)
        locks.try_acquire(T1, B, LockMode.SHARED)
        locks.release_all(T1)
        assert locks.try_acquire(T2, A, LockMode.EXCLUSIVE)
        assert locks.try_acquire(T2, B, LockMode.EXCLUSIVE)

    def test_held_by_tracks_objects(self, locks):
        locks.try_acquire(T1, A, LockMode.SHARED)
        locks.try_acquire(T1, B, LockMode.EXCLUSIVE)
        assert locks.held_by(T1) == {A, B}

    def test_release_grants_to_fifo_waiter(self, locks):
        locks.try_acquire(T1, A, LockMode.EXCLUSIVE)
        locks.acquire(T2, A, LockMode.EXCLUSIVE, wait=True)
        grants = locks.release_all(T1)
        assert (T2, A) in grants
        assert locks.mode_of(T2, A) is LockMode.EXCLUSIVE

    def test_release_grants_multiple_compatible_shared_waiters(self, locks):
        locks.try_acquire(T1, A, LockMode.EXCLUSIVE)
        locks.acquire(T2, A, LockMode.SHARED, wait=True)
        locks.acquire(T3, A, LockMode.SHARED, wait=True)
        grants = locks.release_all(T1)
        assert {(T2, A), (T3, A)} <= set(grants)


class TestDeadlock:
    def test_two_party_deadlock_detected(self, locks):
        locks.try_acquire(T1, A, LockMode.EXCLUSIVE)
        locks.try_acquire(T2, B, LockMode.EXCLUSIVE)
        locks.acquire(T1, B, LockMode.EXCLUSIVE, wait=True)  # T1 waits on T2
        with pytest.raises(DeadlockError):
            locks.acquire(T2, A, LockMode.EXCLUSIVE, wait=True)

    def test_three_party_cycle_detected(self, locks):
        C = ObjectId("c")
        locks.try_acquire(T1, A, LockMode.EXCLUSIVE)
        locks.try_acquire(T2, B, LockMode.EXCLUSIVE)
        locks.try_acquire(T3, C, LockMode.EXCLUSIVE)
        locks.acquire(T1, B, LockMode.EXCLUSIVE, wait=True)
        locks.acquire(T2, C, LockMode.EXCLUSIVE, wait=True)
        with pytest.raises(DeadlockError):
            locks.acquire(T3, A, LockMode.EXCLUSIVE, wait=True)

    def test_waiting_without_cycle_is_fine(self, locks):
        locks.try_acquire(T1, A, LockMode.EXCLUSIVE)
        locks.acquire(T2, A, LockMode.EXCLUSIVE, wait=True)  # no cycle
        assert locks.mode_of(T2, A) is None  # still waiting

    def test_release_clears_waits_for_edges(self, locks):
        locks.try_acquire(T1, A, LockMode.EXCLUSIVE)
        locks.acquire(T2, A, LockMode.EXCLUSIVE, wait=True)
        locks.release_all(T2)  # waiter gives up
        locks.release_all(T1)
        assert locks.try_acquire(T3, A, LockMode.EXCLUSIVE)
