"""Tests for outcome-reachability analysis."""

import pytest

from repro.core import ScriptBuilder, from_input, from_output
from repro.core.analysis import analyze_outcomes
from repro.workloads import paper_order, paper_service_impact, paper_trip


class TestPaperApps:
    def test_order_app_outcomes_all_reachable(self):
        analysis = analyze_outcomes(paper_order.build())
        assert analysis.unreachable == []
        assert set(analysis.reachable) == {"orderCompleted", "orderCancelled"}
        assert analysis.cases_explored == 8  # 2*2*2*1 final outputs... (2,2,2,1)

    def test_order_witness_is_replayable(self):
        analysis = analyze_outcomes(paper_order.build())
        witness = analysis.reachable["orderCancelled"]
        # the witness must include at least one failing choice
        assert any(
            name in ("notAuthorised", "stockNotAvailable", "dispatchFailed")
            for name in witness.values()
        )

    def test_service_impact_all_reachable(self):
        analysis = analyze_outcomes(paper_service_impact.build())
        assert analysis.unreachable == []
        assert len(analysis.reachable) == 3

    def test_trip_app_reachable_with_stalls_reported(self):
        analysis = analyze_outcomes(paper_trip.build())
        assert analysis.unreachable == []
        # some fixed-outcome assignments loop forever (hotel always fails ->
        # BR retries identically): reported as stalls, with a witness
        assert analysis.stalls > 0
        assert analysis.stall_witness is not None


class TestDefectDetection:
    def test_unreachable_outcome_detected(self):
        """An output mapping that references the wrong outcome name is valid
        (the outcome exists) but unreachable in combination."""
        b = ScriptBuilder()
        b.object_class("Data")
        b.taskclass("T").input_set("main").outcome("ok", out="Data").outcome("nope")
        (
            b.taskclass("Root")
            .input_set("main")
            .outcome("done", out="Data")
            .outcome("ghostPath")
        )
        c = b.compound("wf", "Root")
        c.task("t", "T").implementation(code="x").notify(
            "main", from_input("wf", "main")
        ).up()
        c.output("done").object("out", from_output("t", "ok", "out")).up()
        # ghostPath requires BOTH of t's outcomes — impossible
        c.output("ghostPath").notify(from_output("t", "ok")).notify(
            from_output("t", "nope")
        ).up()
        c.up()
        analysis = analyze_outcomes(b.build())
        assert analysis.unreachable == ["ghostPath"]
        assert "done" in analysis.reachable

    def test_stalling_assignment_found(self):
        b = ScriptBuilder()
        b.object_class("Data")
        b.taskclass("T").input_set("main").outcome("ok", out="Data").outcome("silent")
        b.taskclass("Root").input_set("main").outcome("done", out="Data")
        c = b.compound("wf", "Root")
        c.task("t", "T").implementation(code="x").notify(
            "main", from_input("wf", "main")
        ).up()
        c.output("done").object("out", from_output("t", "ok", "out")).up()
        c.up()
        analysis = analyze_outcomes(b.build())
        assert analysis.stalls == 1  # `silent` leads nowhere
        assert analysis.stall_witness == {"wf/t": "silent"}

    def test_case_cap_truncates(self):
        analysis = analyze_outcomes(paper_trip.build(), max_cases=10)
        assert analysis.truncated
        assert analysis.cases_explored == 10


class TestCliAnalyze:
    def test_analyze_command(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "order.wf"
        path.write_text(paper_order.SCRIPT_TEXT, encoding="utf-8")
        assert main(["analyze", str(path)]) == 0
        out = capsys.readouterr().out
        assert "reachable   orderCompleted" in out

    def test_analyze_flags_unreachable(self, tmp_path, capsys):
        from repro.cli import main

        text = """
        class Data;
        taskclass T { inputs { input main { } };
                      outputs { outcome ok { }; outcome nope { } } };
        taskclass Root { inputs { input main { } };
                         outputs { outcome done { }; outcome never { } } };
        compoundtask wf of taskclass Root {
            task t of taskclass T {
                implementation { "code" is "x" };
                inputs { input main { notification from { task wf if input main } } }
            };
            outputs {
                outcome done { notification from { task t if output ok } };
                outcome never {
                    notification from { task t if output ok };
                    notification from { task t if output nope }
                }
            }
        };
        """
        path = tmp_path / "dead.wf"
        path.write_text(text, encoding="utf-8")
        assert main(["analyze", str(path)]) == 1
        assert "UNREACHABLE never" in capsys.readouterr().out
