"""Tests for the concurrent engine: equivalence with the sequential
reference engine, genuine parallel dispatch, and the supporting machinery
(drain_ready claims, thread-safe budget, cooperative task timeouts)."""

from __future__ import annotations

import threading
import time

import pytest

from repro.core import ScriptBuilder, TaskTimeout, from_input, from_output
from repro.engine import (
    ConcurrentEngine,
    ConcurrentWorkflow,
    ImplementationRegistry,
    LocalEngine,
    WorkflowStatus,
    outcome,
    pending,
    repeat,
)
from repro.workloads import generators, paper_order, paper_service_impact, paper_trip
from tests.conftest import build_pipeline_script, stage_registry


def fingerprint(result):
    """Everything the language semantics promise: outcome, output objects,
    marks — engine-independent (the event log interleaving is not)."""
    return (
        result.status,
        result.outcome,
        {name: ref.value for name, ref in result.objects.items()},
        [
            (name, {k: v.value for k, v in objects.items()})
            for name, objects in result.marks
        ],
    )


class TestSequentialEquivalence:
    @pytest.mark.parametrize(
        "module,inputs",
        [
            (paper_order, {"order": "order-1"}),
            (paper_trip, {"user": "demo-user"}),
            (paper_service_impact, {"alarmsSource": "alarm-feed"}),
        ],
        ids=["order", "trip", "service-impact"],
    )
    def test_paper_examples_identical(self, module, inputs):
        script = module.build()
        registry = module.default_registry()
        sequential = LocalEngine(registry).run(script, inputs=inputs)
        concurrent = ConcurrentEngine(registry, parallelism=4).run(script, inputs=inputs)
        assert fingerprint(concurrent) == fingerprint(sequential)

    @pytest.mark.parametrize("seed", range(5))
    def test_random_dags_identical_across_seeds(self, seed):
        script, registry, root, inputs = generators.random_dag(24, max_deps=3, seed=seed)
        sequential = LocalEngine(registry).run(script, root, inputs=inputs)
        concurrent = ConcurrentEngine(registry, parallelism=4).run(
            script, root, inputs=inputs
        )
        rerun = ConcurrentEngine(registry, parallelism=4).run(script, root, inputs=inputs)
        assert fingerprint(concurrent) == fingerprint(sequential)
        assert fingerprint(rerun) == fingerprint(sequential)

    def test_fan_out_identical(self):
        script, registry, root, inputs = generators.fan(8)
        sequential = LocalEngine(registry).run(script, root, inputs=inputs)
        concurrent = ConcurrentEngine(registry, parallelism=4).run(
            script, root, inputs=inputs
        )
        assert fingerprint(concurrent) == fingerprint(sequential)
        assert concurrent.stats["steps"] == sequential.stats["steps"]

    def test_pipeline_still_honours_dependency_order(self):
        script = build_pipeline_script(4)
        result = ConcurrentEngine(stage_registry(), parallelism=4).run(
            script, inputs={"inp": "x"}
        )
        assert result.completed
        assert result.value("out") == "x++++"
        assert result.log.started_order() == [
            "pipeline",
            "pipeline/t1",
            "pipeline/t2",
            "pipeline/t3",
            "pipeline/t4",
        ]


class TestParallelDispatch:
    def test_independent_tasks_overlap(self):
        script, _, root, inputs = generators.fan(6)
        registry = ImplementationRegistry()
        lock = threading.Lock()
        active = {"now": 0, "peak": 0}

        def sleepy(ctx):
            with lock:
                active["now"] += 1
                active["peak"] = max(active["peak"], active["now"])
            time.sleep(0.03)
            with lock:
                active["now"] -= 1
            first = next(iter(ctx.inputs.values()), None)
            return outcome("done", out=first.value if first else "x")

        registry.register("stage", sleepy)
        result = ConcurrentEngine(registry, parallelism=4).run(script, root, inputs=inputs)
        assert result.completed
        assert active["peak"] >= 2  # the fan's workers genuinely overlapped

    def test_parallelism_one_degrades_to_sequential_loop(self):
        script = build_pipeline_script(3)
        result = ConcurrentEngine(stage_registry(), parallelism=1).run(
            script, inputs={"inp": "x"}
        )
        assert result.completed
        assert result.value("out") == "x+++"

    def test_step_budget_enforced(self):
        script, registry, root, inputs = generators.fan(8)
        result = ConcurrentEngine(registry, parallelism=4, max_steps=3).run(
            script, root, inputs=inputs
        )
        assert result.status is WorkflowStatus.FAILED
        assert "max_steps=3" in result.error

    def test_system_retries_still_work(self):
        script = build_pipeline_script(2)
        registry = ImplementationRegistry()

        def flaky(ctx):
            if ctx.attempt < 3:
                raise RuntimeError(f"transient #{ctx.attempt}")
            return outcome("done", out=f"{ctx.value('inp')}+")

        registry.register("stage", flaky)
        result = ConcurrentEngine(registry, parallelism=4).run(script, inputs={"inp": "x"})
        assert result.completed
        assert result.value("out") == "x++"

    def test_repeat_outcomes_still_loop(self):
        b = ScriptBuilder()
        b.object_class("Data")
        (
            b.taskclass("Looper")
            .input_set("main", inp="Data")
            .outcome("done", out="Data")
            .repeat_outcome("again", carry="Data")
        )
        b.taskclass("Root").input_set("main", inp="Data").outcome("done", out="Data")
        c = b.compound("wf", "Root")
        c.task("loop", "Looper").implementation(code="loop").input(
            "main",
            "inp",
            from_output("loop", "again", "carry"),
            from_input("wf", "main", "inp"),
        ).up()
        c.output("done").object("out", from_output("loop", "done", "out")).up()
        c.up()

        def loop(ctx):
            if ctx.repeats < 3:
                return repeat("again", carry=f"{ctx.value('inp')}+")
            return outcome("done", out=ctx.value("inp"))

        registry = ImplementationRegistry().register("loop", loop)
        result = ConcurrentEngine(registry, parallelism=4).run(b.build(), inputs={"inp": "s"})
        assert result.completed
        assert result.value("out") == "s+++"

    def test_pending_external_stalls_and_resumes(self):
        script = build_pipeline_script(2)
        registry = ImplementationRegistry()
        registry.register("stage", lambda ctx: pending("waiting for a human"))
        wf = ConcurrentEngine(registry, parallelism=4).workflow(script)
        assert isinstance(wf, ConcurrentWorkflow)
        wf.start({"inp": "x"})
        first = wf.run_to_completion()
        assert first.status is WorkflowStatus.STALLED
        wf.complete_external("pipeline/t1", "done", out="by-hand")
        registry.register("stage", lambda ctx: outcome("done", out=f"{ctx.value('inp')}+"))
        result = wf.run_to_completion()
        assert result.completed
        assert result.value("out") == "by-hand+"


class TestTaskTimeout:
    def test_cooperative_timeout_aborts_task(self):
        b = ScriptBuilder()
        b.object_class("Data")
        (
            b.taskclass("Slow")
            .input_set("main", inp="Data")
            .outcome("done", out="Data")
            .abort_outcome("tooSlow")
        )
        b.taskclass("Root").input_set("main", inp="Data").abort_outcome("gaveUp")
        c = b.compound("wf", "Root")
        c.task("slow", "Slow").implementation(
            code="slow", timeout="0.01", retries="0"
        ).input("main", "inp", from_input("wf", "main", "inp")).up()
        c.output("gaveUp").notify(from_output("slow", "tooSlow")).up()
        c.up()

        seen = {}

        def slow(ctx):
            seen["timeout"] = ctx.timeout
            time.sleep(0.03)
            ctx.check_timeout()  # cooperative check: raises TaskTimeout
            return outcome("done", out="never")

        registry = ImplementationRegistry().register("slow", slow)
        result = ConcurrentEngine(registry, parallelism=2).run(b.build(), inputs={"inp": "x"})
        # the timeout failed the task; retries=0 surfaced its abort outcome
        assert result.status is WorkflowStatus.ABORTED
        assert result.outcome == "gaveUp"
        assert seen["timeout"] == pytest.approx(0.01)

    def test_timeout_visible_in_context_and_sequential_engine(self):
        b = ScriptBuilder()
        b.object_class("Data")
        b.taskclass("Quick").input_set("main", inp="Data").outcome("done", out="Data")
        b.taskclass("Root").input_set("main", inp="Data").outcome("done", out="Data")
        c = b.compound("wf", "Root")
        c.task("quick", "Quick").implementation(code="quick", timeout="5").input(
            "main", "inp", from_input("wf", "main", "inp")
        ).up()
        c.output("done").object("out", from_output("quick", "done", "out")).up()
        c.up()

        def quick(ctx):
            assert ctx.timeout == pytest.approx(5.0)
            assert ctx.remaining() is not None and ctx.remaining() > 0
            assert not ctx.timed_out
            ctx.check_timeout()  # within budget: no-op
            return outcome("done", out="fast")

        registry = ImplementationRegistry().register("quick", quick)
        result = LocalEngine(registry).run(b.build(), inputs={"inp": "x"})
        assert result.completed
        assert result.value("out") == "fast"

    def test_check_timeout_raises_tasktimeout(self):
        from repro.engine.context import TaskContext

        ctx = TaskContext(
            task_path="wf/slow",
            taskclass=build_pipeline_script(1).taskclasses["Stage"],
            input_set="main",
            inputs={},
            properties={},
            timeout=0.001,
        )
        time.sleep(0.005)
        assert ctx.timed_out
        with pytest.raises(TaskTimeout):
            ctx.check_timeout()


class TestDrainReady:
    def test_drain_claims_and_begin_releases(self):
        script, registry, root, inputs = generators.fan(4)
        wf = LocalEngine(registry).workflow(script, root)
        wf.start(inputs)
        # execute the source so the four workers become ready together
        assert wf.step()
        drained = wf.tree.drain_ready()
        assert sorted(n.local_name for n in drained) == ["w1", "w2", "w3", "w4"]
        assert all(n.claimed for n in drained)
        # claimed nodes cannot be drained twice
        assert wf.tree.drain_ready() == []
        for node in drained:
            begun = wf.tree.try_begin_execution(node)
            assert begun is not None
            assert not node.claimed

    def test_drain_respects_limit(self):
        script, registry, root, inputs = generators.fan(4)
        wf = LocalEngine(registry).workflow(script, root)
        wf.start(inputs)
        assert wf.step()
        batch = wf.tree.drain_ready(limit=2)
        assert len(batch) == 2
        assert len(wf.tree.drain_ready()) == 2  # the rest, on the next drain
