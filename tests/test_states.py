"""Unit tests for the Fig. 3 task state machine."""

import pytest

from repro.core.schema import ObjectDecl, OutputKind, OutputSpec, TaskClass
from repro.core.states import IllegalTransition, TaskState, TaskStateMachine


def rich_class(atomic=False):
    outputs = [
        OutputSpec("done", OutputKind.OUTCOME, (ObjectDecl("out", "Data"),)),
        OutputSpec("again", OutputKind.REPEAT),
    ]
    if atomic:
        outputs.append(OutputSpec("failed", OutputKind.ABORT))
    else:
        outputs.append(OutputSpec("early", OutputKind.MARK))
    return TaskClass("T", outputs=tuple(outputs))


def machine(atomic=False):
    return TaskStateMachine("wf/t", rich_class(atomic))


class TestHappyPath:
    def test_initial_state_is_wait(self):
        assert machine().state is TaskState.WAIT

    def test_start_moves_to_executing(self):
        m = machine()
        m.start()
        assert m.state is TaskState.EXECUTING
        assert m.starts == 1

    def test_complete_in_outcome(self):
        m = machine()
        m.start()
        m.complete("done")
        assert m.state is TaskState.COMPLETED
        assert m.outcome == "done"
        assert m.terminal

    def test_history_records_transitions(self):
        m = machine()
        m.start()
        m.complete("done")
        labels = [t.label for t in m.history]
        assert labels == ["start", "outcome:done"]


class TestAborts:
    def test_abort_from_wait(self):
        m = machine(atomic=True)
        m.abort("failed")
        assert m.state is TaskState.ABORTED
        assert m.outcome == "failed"

    def test_abort_from_executing(self):
        m = machine(atomic=True)
        m.start()
        m.abort("failed")
        assert m.state is TaskState.ABORTED

    def test_abort_after_termination_rejected(self):
        m = machine(atomic=True)
        m.start()
        m.complete("done")
        with pytest.raises(IllegalTransition):
            m.abort("failed")

    def test_abort_name_must_be_abort_kind(self):
        m = machine(atomic=True)
        m.start()
        with pytest.raises(IllegalTransition):
            m.abort("done")

    def test_reset_for_retry_after_abort(self):
        m = machine(atomic=True)
        m.abort("failed")
        m.reset_for_retry()
        assert m.state is TaskState.WAIT
        assert m.outcome is None

    def test_reset_for_retry_requires_aborted(self):
        with pytest.raises(IllegalTransition):
            machine().reset_for_retry()


class TestMarks:
    def test_mark_keeps_executing(self):
        m = machine()
        m.start()
        m.mark("early")
        assert m.state is TaskState.EXECUTING
        assert m.marked
        assert m.marks_emitted == ["early"]

    def test_mark_from_wait_rejected(self):
        with pytest.raises(IllegalTransition):
            machine().mark("early")

    def test_same_mark_twice_rejected(self):
        m = machine()
        m.start()
        m.mark("early")
        with pytest.raises(IllegalTransition):
            m.mark("early")

    def test_mark_forfeits_abort(self):
        # §4.2: a task which produced a mark can't subsequently abort
        tc = TaskClass(
            "T",
            outputs=(
                OutputSpec("done", OutputKind.OUTCOME),
                OutputSpec("early", OutputKind.MARK),
            ),
        )
        m = TaskStateMachine("t", tc)
        m.start()
        m.mark("early")
        assert not m.can_abort

    def test_mark_name_must_be_mark_kind(self):
        m = machine()
        m.start()
        with pytest.raises(IllegalTransition):
            m.mark("done")

    def test_unknown_output_rejected(self):
        m = machine()
        m.start()
        with pytest.raises(IllegalTransition):
            m.complete("ghost")


class TestRepeats:
    def test_repeat_returns_to_wait(self):
        m = machine()
        m.start()
        m.repeat("again")
        assert m.state is TaskState.WAIT
        assert m.repeats == 1

    def test_repeat_resets_marks_for_next_execution(self):
        m = machine()
        m.start()
        m.mark("early")
        m.repeat("again")
        m.start()
        m.mark("early")  # allowed again in a new execution
        assert m.marks_emitted == ["early"]
        assert m.starts == 2

    def test_repeat_restores_abort_rights(self):
        m = machine()
        m.start()
        m.mark("early")
        m.repeat("again")
        assert m.can_abort

    def test_repeat_name_must_be_repeat_kind(self):
        m = machine()
        m.start()
        with pytest.raises(IllegalTransition):
            m.repeat("done")


class TestSystemRetry:
    def test_system_retry_returns_to_wait_silently(self):
        m = machine()
        m.start()
        m.system_retry()
        assert m.state is TaskState.WAIT
        assert m.outcome is None

    def test_system_retry_forbidden_after_mark(self):
        m = machine()
        m.start()
        m.mark("early")
        with pytest.raises(IllegalTransition):
            m.system_retry()

    def test_system_retry_requires_executing(self):
        with pytest.raises(IllegalTransition):
            machine().system_retry()


class TestPersistence:
    def test_snapshot_restore_roundtrip(self):
        m = machine()
        m.start()
        m.mark("early")
        snap = m.snapshot()
        m2 = machine()
        m2.restore(snap)
        assert m2.state is TaskState.EXECUTING
        assert m2.marked and m2.marks_emitted == ["early"]
        assert m2.starts == 1

    def test_restored_machine_continues(self):
        m = machine()
        m.start()
        snap = m.snapshot()
        m2 = machine()
        m2.restore(snap)
        m2.complete("done")
        assert m2.terminal
