"""Hot-standby replication of the execution service: lease arbitration,
fencing epochs, log shipping, and lease-fenced failover
(docs/PROTOCOLS.md §12)."""

import pytest

from repro.net.clock import EventClock
from repro.net.network import LatencyModel, Network
from repro.net.node import Node
from repro.orb.broker import CommFailure, Fenced
from repro.replication import FailureDetector, LeaseService, Role
from repro.services import WorkflowSystem
from repro.services.worker import TaskWorker, WorkRequest
from repro.txn.store import ObjectStore
from repro.workloads import paper_order, paper_trip


def lease_fixture(duration=30.0):
    clock = EventClock()
    network = Network(clock, LatencyModel(1.0, 0.0), 0.0, 0)
    node = Node("lease-node", clock, network)
    store = ObjectStore("lease-store")
    service = LeaseService("lease", store, duration=duration)
    node.install(service)
    return clock, service


def replicated_system(replicas=3, workload=paper_order, name="order",
                      **kwargs):
    kwargs.setdefault("lease_duration", 30.0)
    kwargs.setdefault("repl_interval", 5.0)
    system = WorkflowSystem(replicas=replicas, **kwargs)
    workload.default_registry(registry=system.registry)
    system.deploy(name, workload.SCRIPT_TEXT)
    return system


class TestLeaseService:
    def test_bootstrap_grant_advances_epoch(self):
        _, lease = lease_fixture()
        grant = lease.acquire("r1")
        assert grant["granted"] and grant["holder"] == "r1"
        assert grant["epoch"] == 1
        assert "r1" in grant["isr"]

    def test_held_unexpired_lease_refused(self):
        clock, lease = lease_fixture(duration=30.0)
        lease.acquire("r1")
        clock.advance(10.0)
        refusal = lease.acquire("r2")
        assert not refusal["granted"]
        assert refusal["holder"] == "r1"

    def test_expired_lease_passes_to_isr_member(self):
        clock, lease = lease_fixture(duration=30.0)
        first = lease.acquire("r1")
        lease.enlist("r2", first["epoch"])
        clock.advance(31.0)
        grant = lease.acquire("r2")
        assert grant["granted"]
        assert grant["epoch"] == 2  # every grant advances the fencing epoch

    def test_expired_lease_refused_to_lagging_replica(self):
        clock, lease = lease_fixture(duration=30.0)
        lease.acquire("r1")  # ISR = [r1]
        clock.advance(31.0)
        refusal = lease.acquire("r2")  # never enlisted: durable prefix suspect
        assert not refusal["granted"]
        assert "in-sync" in refusal["reason"]

    def test_regrant_to_same_holder_still_advances_epoch(self):
        clock, lease = lease_fixture(duration=30.0)
        first = lease.acquire("r1")
        clock.advance(31.0)
        second = lease.acquire("r1")
        assert second["granted"]
        assert second["epoch"] == first["epoch"] + 1

    def test_renew_extends_only_for_current_holder(self):
        clock, lease = lease_fixture(duration=30.0)
        grant = lease.acquire("r1")
        clock.advance(10.0)
        assert lease.renew("r1", grant["epoch"])["granted"]
        assert not lease.renew("r2", grant["epoch"])["granted"]
        assert not lease.renew("r1", grant["epoch"] + 7)["granted"]

    def test_renew_after_expiry_forces_reacquire(self):
        clock, lease = lease_fixture(duration=30.0)
        grant = lease.acquire("r1")
        clock.advance(31.0)
        refusal = lease.renew("r1", grant["epoch"])
        assert not refusal["granted"]
        assert "re-acquire" in refusal["reason"]

    def test_demote_and_enlist_edit_the_isr(self):
        _, lease = lease_fixture()
        grant = lease.acquire("r1")
        lease.enlist("r2", grant["epoch"])
        assert "r2" in lease.lease_info()["isr"]
        lease.demote("r2", grant["epoch"])
        assert "r2" not in lease.lease_info()["isr"]
        # a stale primary cannot edit the membership it no longer owns
        assert not lease.demote("r1", grant["epoch"] - 1)

    def test_isr_survives_arbiter_crash(self):
        clock, lease = lease_fixture()
        grant = lease.acquire("r1")
        lease.enlist("r2", grant["epoch"])
        lease.store.crash()
        lease.store.recover()
        info = lease.lease_info()
        assert info["holder"] == "r1"
        assert sorted(info["isr"]) == ["r1", "r2"]


class TestFailureDetector:
    def test_suspects_after_misses(self):
        detector = FailureDetector()
        for t in range(10):
            detector.missed("r1", float(t))
        assert detector.suspected("r1", 10.0)
        detector.renewal("r1", 11.0)
        assert not detector.suspected("r1", 11.0)


class TestWorkerFencing:
    def _request(self, epoch):
        return WorkRequest(
            instance_id="wf-1", task_path="t", execution_index=0,
            taskclass={"name": "T",
                       "input_sets": [{"name": "main", "objects": []}],
                       "outputs": []},
            code=None, input_set="main", inputs={}, properties={}, attempt=0,
            repeats=0, reply_to="execution-node", epoch=epoch,
        ).to_plain()

    def test_stale_epoch_refused_without_executing(self):
        worker = TaskWorker("w1", registry=None)
        worker.fence_epoch = 5
        reply = worker.execute(self._request(epoch=3))
        assert reply["fenced"] and not reply["ok"]
        assert reply["epoch"] == 5
        assert worker.executed == []

    def test_higher_epoch_raises_the_fence(self):
        worker = TaskWorker("w1", registry=None)
        worker.execute(self._request(epoch=4))
        assert worker.fence_epoch == 4
        reply = worker.execute(self._request(epoch=2))
        assert reply.get("fenced")


class TestReplicatedHappyPath:
    def test_bootstrap_elects_first_replica(self):
        system = replicated_system(replicas=3)
        roles = [r.role for r in system.execution_replicas]
        assert roles[0] is Role.PRIMARY
        assert roles[1:] == [Role.STANDBY, Role.STANDBY]
        assert system.execution_replicas[0].epoch == 1
        assert system.primary_execution() is system.execution_replicas[0]

    def test_workflow_completes_and_standbys_tail(self):
        system = replicated_system(replicas=3)
        iid = system.instantiate("order", paper_order.ROOT_TASK,
                                 {"order": "o-1"})
        result = system.run_until_terminal(iid)
        assert result["status"] == "completed"
        system.clock.advance(20.0)  # a couple of replication ticks
        primary = system.execution_replicas[0]
        assert primary.replication_settled()
        target = primary.store.wal.last_durable_lsn
        for standby in system.execution_replicas[1:]:
            status = standby.repl_status()
            assert status["tail"]["lsn"] == target
            # the warm image is ready to serve, not just the raw journal
            assert iid in standby.runtimes
            assert standby.runtimes[iid].tree.status.value == "completed"

    def test_demoted_replica_fences_client_calls(self):
        system = replicated_system(replicas=2)
        standby = system.execution_replicas[1]
        from repro.orb.proxy import Proxy

        proxy = Proxy(system.broker, system.client_node, standby.name)
        with pytest.raises(Fenced):
            proxy.list_instances()

    def test_replicate_rejects_stale_epoch(self):
        system = replicated_system(replicas=2)
        system.clock.advance(10.0)
        standby = system.execution_replicas[1]
        reply = standby.replicate({
            "epoch": 0, "writer": "ghost", "reset": False,
            "from_lsn": 0, "last_lsn": 0, "records": [],
        })
        assert not reply["ok"] and reply.get("fenced")


class TestFailover:
    def _run_to_terminal(self, system, iid, max_time=2_000.0):
        return system.run_until_terminal(iid, max_time=max_time)

    def test_standby_promotes_after_primary_crash(self):
        system = replicated_system(replicas=3)
        iid = system.instantiate("order", paper_order.ROOT_TASK,
                                 {"order": "o-1"})
        system.clock.advance(6.0)  # one replication tick: standbys enlisted
        old = system.execution_replicas[0]
        old_epoch = old.epoch
        system.execution_node.crash()
        result = self._run_to_terminal(system, iid)
        assert result["status"] == "completed"
        new = system.primary_execution()
        assert new is not None and new is not old
        assert new.epoch > old_epoch
        assert new.repl_stats["promotions"] == 1

    def test_resurrected_stale_primary_demotes_and_resyncs(self):
        system = replicated_system(replicas=2)
        iid = system.instantiate("order", paper_order.ROOT_TASK,
                                 {"order": "o-1"})
        system.clock.advance(6.0)
        old = system.execution_replicas[0]
        system.execution_node.crash()
        result = self._run_to_terminal(system, iid)
        assert result["status"] == "completed"
        new = system.primary_execution()
        system.execution_node.recover()
        system.clock.advance(120.0)
        assert old.role is Role.STANDBY  # fenced down, not split-brain
        assert old._max_epoch_seen >= new.epoch
        assert old.repl_status()["tail"]["lsn"] == \
            new.store.wal.last_durable_lsn
        # the instance is visible from the resynced standby's warm image too
        assert iid in old.runtimes

    def test_failover_preserves_journal_exactly_once(self):
        from repro.sim import oracles

        system = replicated_system(replicas=3, workload=paper_trip,
                                   name="trip")
        iid = system.instantiate("trip", paper_trip.ROOT_TASK,
                                 {"user": "u-1"})
        system.clock.advance(6.0)
        system.execution_node.crash()
        result = self._run_to_terminal(system, iid)
        assert result["status"] == "completed"
        new = system.primary_execution()
        assert oracles.check_journal_integrity(new.store) == []
        assert oracles.check_replay_agreement(new) == []
        stores = [r.store for r in system.execution_replicas]
        assert oracles.check_epoch_fencing(stores) == []

    def test_instantiate_rides_out_failover(self):
        system = replicated_system(replicas=2)
        system.clock.advance(6.0)
        system.execution_node.crash()
        # the client-facing helper retries across the lease turnover
        iid = system.instantiate("order", paper_order.ROOT_TASK,
                                 {"order": "o-2"})
        result = self._run_to_terminal(system, iid)
        assert result["status"] == "completed"
        assert system.primary_execution() is system.execution_replicas[1]

    def test_no_failover_without_standbys(self):
        system = replicated_system(replicas=1)
        iid = system.instantiate("order", paper_order.ROOT_TASK,
                                 {"order": "o-1"})
        system.execution_node.crash()
        system.clock.advance(120.0)
        assert system.primary_execution() is None
        system.execution_node.recover()
        result = self._run_to_terminal(system, iid)
        assert result["status"] == "completed"  # classic single-node recovery


class TestSettledGating:
    def test_settled_false_while_a_peer_lags(self):
        system = replicated_system(replicas=2)
        primary, standby = system.execution_replicas
        iid = system.instantiate("order", paper_order.ROOT_TASK,
                                 {"order": "o-1"})
        system.clock.advance(6.0)
        assert primary.replication_settled()
        # silence the standby: pushes fail, the primary demotes it from the
        # ISR and keeps serving (availability over replication factor)
        system.replica_nodes[1].crash()
        system.run_until_terminal(iid)
        assert primary.is_primary()
        assert standby.name not in primary.isr
        assert primary.replication_settled()  # settled over the shrunk ISR

    def test_journal_error_path_flushes_buffer(self):
        """Satellite regression: an exception raised between buffering a
        journal entry and the next barrier must flush the buffer, not
        strand it (``_journal_guard``)."""
        system = replicated_system(replicas=0)
        iid = system.instantiate("order", paper_order.ROOT_TASK,
                                 {"order": "o-1"})
        system.run_until_terminal(iid)
        service = system.execution
        journaled = service.store.get_committed(f"instance:{iid}:meta")
        before = journaled["journal_len"]
        # an illegal reconfiguration raises inside the guarded region after
        # the runtime was touched; the guard must leave the durable journal
        # consistent with the (unchanged) tree
        with pytest.raises(Exception):
            service.reconfigure(iid, "not a script at all {{{")
        meta = service.store.get_committed(f"instance:{iid}:meta")
        assert meta["journal_len"] == before
        assert not service._jbuf  # the guard drained the batch buffer
