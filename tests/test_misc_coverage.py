"""Miscellaneous coverage: result helpers, repository versions, broker stats,
trace glyphs, workflow-result accessors."""

import pytest

from repro.core.errors import SchemaError
from repro.engine import LocalEngine, WorkflowStatus, render_trace
from repro.services import WorkflowSystem
from repro.workloads import paper_order, paper_trip


class TestWorkflowResultAccessors:
    def result(self, **kwargs):
        return LocalEngine(paper_order.default_registry(**kwargs)).run(
            paper_order.build(), inputs={"order": "o"}
        )

    def test_value_with_default(self):
        result = self.result(in_stock=False)
        assert result.value("dispatchNote") is None
        assert result.value("dispatchNote", "fallback") == "fallback"

    def test_completed_property(self):
        assert self.result().completed
        assert self.result(in_stock=False).completed  # cancelled is an outcome

    def test_stats_populated(self):
        result = self.result()
        assert result.stats["steps"] == 4
        assert result.stats["nodes"] == 5
        assert result.stats["events"] > 0


class TestTraceGlyphs:
    def test_abort_glyph_present(self):
        result = LocalEngine(paper_order.default_registry(dispatch_ok=False)).run(
            paper_order.build(), inputs={"order": "o"}
        )
        trace = render_trace(result.log)
        assert "✘" in trace  # the dispatch abort

    def test_repeat_and_mark_glyphs_present(self):
        result = LocalEngine(paper_trip.default_registry()).run(
            paper_trip.build(), inputs={"user": "u"}
        )
        trace = render_trace(result.log)
        assert "↻" in trace  # hotel retries
        assert "◆" in trace  # costKnown / toPay marks


class TestRepositoryVersions:
    def test_specific_version_loadable(self):
        system = WorkflowSystem()
        repo = system.repository_proxy()
        repo.store_script("order", paper_order.SCRIPT_TEXT)
        repo.store_script("order", paper_order.SCRIPT_TEXT + "\n// two\n")
        assert "// two" not in repo.get_script("order", 1)
        assert "// two" in repo.get_script("order", 2)

    def test_bad_version_rejected(self):
        system = WorkflowSystem()
        repo = system.repository_proxy()
        repo.store_script("order", paper_order.SCRIPT_TEXT)
        with pytest.raises((SchemaError, Exception)):
            repo.get_script("order", 9)

    def test_missing_script_rejected(self):
        system = WorkflowSystem()
        with pytest.raises((SchemaError, Exception)):
            system.repository_proxy().get_script("nope")

    def test_inspect_includes_lint(self):
        system = WorkflowSystem()
        repo = system.repository_proxy()
        repo.store_script("order", paper_order.SCRIPT_TEXT)
        info = repo.inspect("order")
        assert info["lint"] == []  # the paper app is lint-clean


class TestBrokerAccounting:
    def test_invocations_counted(self):
        system = WorkflowSystem(workers=1)
        paper_order.default_registry(registry=system.registry)
        before = system.broker.stats.invocations
        system.deploy("order", paper_order.SCRIPT_TEXT)
        assert system.broker.stats.invocations == before + 1

    def test_names_listing(self):
        system = WorkflowSystem(workers=2)
        names = system.broker.names()
        assert "repository" in names and "execution" in names
        assert "worker-1" in names and "worker-2" in names


class TestEngineStatuses:
    def test_status_enum_values_are_stable(self):
        # the service layer serializes these strings; renames would break
        # stored state, so pin them
        assert WorkflowStatus.RUNNING.value == "running"
        assert WorkflowStatus.COMPLETED.value == "completed"
        assert WorkflowStatus.ABORTED.value == "aborted"
        assert WorkflowStatus.STALLED.value == "stalled"
        assert WorkflowStatus.FAILED.value == "failed"
