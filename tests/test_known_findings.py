"""Known-findings baseline: the static analyser over every embedded script
in ``examples/`` and the three paper workloads.

``tests/known_findings.json`` pins the expected findings (code + location)
per script.  A new finding on existing scripts — or one silently
disappearing — fails here, so analyser changes must update the baseline
deliberately.  The W301 entries on the order and trip workloads are the
paper's own concurrency: "t2 and t3 can be performed concurrently" (§3) is
exactly the flagged paymentAuthorisation/checkStock pair.
"""

from __future__ import annotations

import glob
import json
from pathlib import Path

import pytest

from repro.analysis import analyze_script, load_scripts
from repro.lang import parse

REPO = Path(__file__).resolve().parent.parent
BASELINE = Path(__file__).resolve().parent / "known_findings.json"


def current_findings():
    paths = sorted(glob.glob(str(REPO / "examples" / "*.py"))) + sorted(
        glob.glob(str(REPO / "src" / "repro" / "workloads" / "paper_*.py"))
    )
    findings = {}
    for name, text in load_scripts(paths):
        report = analyze_script(parse(text), source_name=name)
        findings[name] = [f"{f.code} {f.location}" for f in report.findings]
    return findings


def test_baseline_matches_analyzer_output():
    expected = json.loads(BASELINE.read_text(encoding="utf-8"))
    actual = current_findings()
    assert actual == expected, (
        "static-analysis findings drifted from tests/known_findings.json; "
        "if the change is intentional, regenerate the baseline"
    )


def test_baseline_has_no_errors():
    """Every shipped example and workload must be free of error-severity
    findings (warnings are allowed and pinned above)."""
    for name, entries in current_findings().items():
        assert not [e for e in entries if e.startswith("E")], name


def test_baseline_covers_all_embedded_scripts():
    expected = json.loads(BASELINE.read_text(encoding="utf-8"))
    assert set(expected) == set(current_findings())
    # the paper's §3 concurrency shows up as exactly one order-workload race
    order = expected["paper_order.py:SCRIPT_TEXT"]
    assert [e for e in order if e.startswith("W301")] == [
        "W301 processOrderApplication/paymentAuthorisation "
        "<-> processOrderApplication/checkStock"
    ]
    # the order workload's three non-atomic tasks are exactly the ones whose
    # bare effects a redispatch can duplicate (W401); dispatch is atomic
    assert [e for e in order if e.startswith("W401")] == [
        "W401 processOrderApplication/checkStock",
        "W401 processOrderApplication/paymentAuthorisation",
        "W401 processOrderApplication/paymentCapture",
    ]
