"""Unit + integration tests for the adaptive dispatch resilience layer.

Covers the retry policy (backoff shape, deterministic jitter), per-worker
circuit breakers (state machine), health-aware routing, post-recovery
staggering, the redispatch cap (abandonment), and — end to end — that hedged
duplicate dispatches are never applied twice.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net import FaultPlan, RandomCrasher
from repro.resilience import (
    BreakerConfig,
    BreakerState,
    CircuitBreaker,
    HealthRegistry,
    ResilienceConfig,
    RetryPolicy,
)
from repro.services import WorkflowSystem
from repro.workloads import paper_order


# ---------------------------------------------------------------------------
# RetryPolicy
# ---------------------------------------------------------------------------


class TestRetryPolicy:
    def test_unjittered_backoff_is_monotone_then_capped(self):
        policy = RetryPolicy(base_delay=10.0, multiplier=2.0, max_delay=55.0, jitter=0.0)
        delays = [policy.raw_delay(n) for n in range(6)]
        assert delays == [10.0, 20.0, 40.0, 55.0, 55.0, 55.0]
        assert all(a <= b or a == policy.max_delay for a, b in zip(delays, delays[1:]))

    def test_jittered_delay_stays_inside_band(self):
        policy = RetryPolicy(base_delay=10.0, multiplier=2.0, max_delay=80.0, jitter=0.2)
        for attempt in range(8):
            raw = policy.raw_delay(attempt)
            d = policy.delay("i-1:/a/b:0", attempt)
            assert raw * 0.8 <= d <= raw * 1.2

    def test_zero_jitter_equals_raw(self):
        policy = RetryPolicy(base_delay=7.0, jitter=0.0)
        assert policy.delay("any-key", 3) == policy.raw_delay(3)

    def test_next_attempt_at_is_absolute(self):
        policy = RetryPolicy(base_delay=10.0, jitter=0.0)
        assert policy.next_attempt_at("k", 0, now=100.0) == 110.0

    def test_exhausted_respects_cap_and_none(self):
        capped = RetryPolicy(max_redispatches=3)
        assert not capped.exhausted(2)
        assert capped.exhausted(3)
        unbounded = RetryPolicy(max_redispatches=None)
        assert not unbounded.exhausted(10**6)

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(base_delay=0.0)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.0)

    def test_stagger_in_window_and_deterministic(self):
        policy = RetryPolicy(recovery_stagger=5.0, seed=9)
        offsets = {policy.stagger(f"i-{n}:/t:0:1") for n in range(50)}
        assert all(0.0 <= o < 5.0 for o in offsets)
        assert len(offsets) > 25  # actually spread, not collapsed on one value
        assert policy.stagger("i-1:/t:0:1") == policy.stagger("i-1:/t:0:1")

    def test_stagger_disabled_window(self):
        assert RetryPolicy(recovery_stagger=0.0).stagger("k") == 0.0

    @given(
        seed=st.integers(min_value=0, max_value=2**31),
        key=st.text(min_size=1, max_size=40),
        attempt=st.integers(min_value=0, max_value=20),
    )
    @settings(max_examples=200, deadline=None)
    def test_jitter_is_deterministic_under_fixed_seed(self, seed, key, attempt):
        a = RetryPolicy(base_delay=10.0, jitter=0.3, seed=seed)
        b = RetryPolicy(base_delay=10.0, jitter=0.3, seed=seed)
        assert a.delay(key, attempt) == b.delay(key, attempt)
        raw = a.raw_delay(attempt)
        assert raw * 0.7 <= a.delay(key, attempt) <= raw * 1.3

    @given(key=st.text(min_size=1, max_size=40))
    @settings(max_examples=100, deadline=None)
    def test_schedule_matches_per_attempt_delays(self, key):
        policy = RetryPolicy(base_delay=5.0, jitter=0.15, seed=3)
        assert policy.schedule(key, 6) == [policy.delay(key, n) for n in range(6)]


# ---------------------------------------------------------------------------
# CircuitBreaker
# ---------------------------------------------------------------------------


class TestCircuitBreaker:
    def make(self, threshold=3, cooldown=60.0, probes=1):
        return CircuitBreaker(
            BreakerConfig(failure_threshold=threshold, cooldown=cooldown,
                          half_open_probes=probes),
            name="w",
        )

    def test_starts_closed_and_allows(self):
        b = self.make()
        assert b.state(0.0) is BreakerState.CLOSED
        assert b.allow(0.0)

    def test_trips_after_threshold_consecutive_failures(self):
        b = self.make(threshold=3)
        assert b.record_failure(1.0) is None
        assert b.record_failure(2.0) is None
        assert b.record_failure(3.0) is BreakerState.OPEN
        assert b.state(3.0) is BreakerState.OPEN
        assert not b.allow(3.0)
        assert b.trips == 1

    def test_success_resets_failure_streak(self):
        b = self.make(threshold=3)
        b.record_failure(1.0)
        b.record_failure(2.0)
        b.record_success(2.5)
        b.record_failure(3.0)
        assert b.state(3.0) is BreakerState.CLOSED  # streak was broken

    def test_half_open_after_cooldown_admits_limited_probes(self):
        b = self.make(threshold=1, cooldown=10.0, probes=1)
        b.record_failure(0.0)
        assert b.state(5.0) is BreakerState.OPEN
        assert b.state(10.0) is BreakerState.HALF_OPEN
        assert b.allow(10.0)        # the single probe slot
        assert not b.allow(10.0)    # slot consumed

    def test_probe_success_closes(self):
        b = self.make(threshold=1, cooldown=10.0)
        b.record_failure(0.0)
        b.allow(10.0)
        assert b.record_success(11.0) is BreakerState.CLOSED
        assert b.state(11.0) is BreakerState.CLOSED
        assert b.allow(11.0)

    def test_probe_failure_reopens_for_fresh_cooldown(self):
        b = self.make(threshold=1, cooldown=10.0)
        b.record_failure(0.0)
        b.allow(10.0)
        assert b.record_failure(12.0) is BreakerState.OPEN
        assert b.state(15.0) is BreakerState.OPEN        # new cooldown from t=12
        assert b.state(22.0) is BreakerState.HALF_OPEN
        assert b.trips == 2

    def test_config_validation(self):
        with pytest.raises(ValueError):
            BreakerConfig(failure_threshold=0)
        with pytest.raises(ValueError):
            BreakerConfig(cooldown=-1.0)
        with pytest.raises(ValueError):
            BreakerConfig(half_open_probes=0)


# ---------------------------------------------------------------------------
# HealthRegistry routing
# ---------------------------------------------------------------------------


def registry(names=("w1", "w2", "w3"), **cfg_kw):
    cfg = ResilienceConfig.for_timeouts(20.0, 5.0, **cfg_kw)
    return HealthRegistry(list(names), cfg)


class TestHealthRouting:
    def test_prefers_lower_latency(self):
        reg = registry()
        reg.on_reply("w1", latency=9.0, now=10.0)
        reg.on_reply("w2", latency=1.0, now=10.0)
        reg.on_reply("w3", latency=5.0, now=10.0)
        assert reg.route(now=10.0) == "w2"

    def test_in_flight_load_penalises(self):
        reg = registry()
        reg.on_reply("w1", latency=1.0, now=1.0)
        reg.on_reply("w2", latency=1.0, now=1.0)
        for _ in range(5):
            reg.on_dispatch("w1", now=2.0)
        assert reg.route(now=2.0) == "w2"

    def test_open_breaker_is_skipped(self):
        reg = registry()
        for t in (1.0, 2.0, 3.0):
            reg.on_timeout("w1", now=t)   # trips w1's breaker
        assert reg.health("w1").breaker.state(3.0) is BreakerState.OPEN
        for _ in range(20):
            assert reg.route(now=4.0) != "w1"

    def test_falls_back_when_every_breaker_open(self):
        reg = registry(names=("w1", "w2"))
        for name in ("w1", "w2"):
            for t in (1.0, 2.0, 3.0):
                reg.on_timeout(name, now=t)
        # progress beats caution: a fully-open fleet still routes somewhere
        assert reg.route(now=4.0) in ("w1", "w2")

    def test_exclude_can_empty_the_pool(self):
        reg = registry(names=("w1", "w2"))
        assert reg.route(now=0.0, exclude=("w1", "w2")) is None

    def test_deterministic_tiebreak(self):
        reg = registry()
        assert reg.route(now=0.0) == "w1"  # equal scores: lowest name wins

    def test_reset_forgets_observations(self):
        reg = registry()
        for t in (1.0, 2.0, 3.0):
            reg.on_timeout("w1", now=t)
        reg.reset()
        assert reg.health("w1").breaker.state(4.0) is BreakerState.CLOSED
        assert reg.health("w1").streak == 0


# ---------------------------------------------------------------------------
# Integration: abandonment, staggered recovery, hedging
# ---------------------------------------------------------------------------


def order_system(**kw):
    system = WorkflowSystem(**kw)
    paper_order.default_registry(registry=system.registry)
    system.deploy("order", paper_order.SCRIPT_TEXT)
    return system


class TestAbandonment:
    def test_capped_retries_surface_a_decisive_failure(self):
        """With every worker permanently dead, a capped policy abandons the
        flight and the instance terminates (via the §3 failure semantics)
        instead of retrying forever."""
        system = order_system(
            workers=2,
            dispatch_timeout=10.0,
            sweep_interval=5.0,
            resilience=ResilienceConfig.for_timeouts(
                10.0, 5.0, max_redispatches=3
            ),
        )
        plan = FaultPlan(system.clock)
        for node in system.worker_nodes:
            plan.crash_at(node, when=0.1)  # permanent
        plan.arm()
        iid = system.instantiate("order", paper_order.ROOT_TASK, {"order": "doomed"})
        result = system.run_until_terminal(iid, max_time=5_000)
        assert result["status"] in ("aborted", "failed")
        assert system.execution.stats["abandoned"] >= 1
        report = system.execution.resilience_report()
        assert report["events"].get("abandon", 0) >= 1

    def test_uncapped_policy_never_abandons(self):
        system = order_system(
            workers=2,
            dispatch_timeout=10.0,
            sweep_interval=5.0,
            resilience=ResilienceConfig.for_timeouts(
                10.0, 5.0, max_redispatches=None
            ),
        )
        plan = FaultPlan(system.clock)
        for node in system.worker_nodes:
            plan.crash_at(node, when=0.1, down_for=200.0)
        plan.arm()
        iid = system.instantiate("order", paper_order.ROOT_TASK, {"order": "patient"})
        result = system.run_until_terminal(iid, max_time=20_000)
        assert result["status"] == "completed"
        assert system.execution.stats["abandoned"] == 0


class TestRecoveryStagger:
    def test_redispatch_after_recovery_is_staggered(self):
        system = order_system(workers=2, dispatch_timeout=20.0, sweep_interval=5.0)
        iids = [
            system.instantiate("order", paper_order.ROOT_TASK, {"order": f"s-{i}"})
            for i in range(4)
        ]
        FaultPlan(system.clock).crash_at(
            system.execution_node, when=1.0, down_for=30.0
        ).arm()
        for iid in iids:
            result = system.run_until_terminal(iid, max_time=20_000)
            assert result["status"] == "completed"
        assert system.execution.stats["recoveries"] >= 1
        assert system.execution.stats["staggered"] >= 2
        stagger_events = system.execution.rlog.of_kind("stagger")
        # each event's detail carries its jittered offset ("resend +d.dd");
        # distinct offsets mean the herd actually spread over the window
        offsets = {e.detail for e in stagger_events}
        assert len(offsets) >= 2

    def test_stagger_is_deterministic_across_identical_runs(self):
        def run():
            system = order_system(workers=2, dispatch_timeout=20.0, sweep_interval=5.0)
            iids = [
                system.instantiate("order", paper_order.ROOT_TASK, {"order": f"d-{i}"})
                for i in range(3)
            ]
            FaultPlan(system.clock).crash_at(
                system.execution_node, when=1.0, down_for=30.0
            ).arm()
            for iid in iids:
                system.run_until_terminal(iid, max_time=20_000)
            return [
                (e.time, e.instance, e.task)
                for e in system.execution.rlog.of_kind("stagger")
            ]

        assert run() == run()


class TestHedging:
    def chaos_run(self):
        system = order_system(
            workers=3,
            seed=42,
            dispatch_timeout=20.0,
            sweep_interval=5.0,
        )
        iids = [
            system.instantiate("order", paper_order.ROOT_TASK, {"order": f"h-{i}"})
            for i in range(10)
        ]
        crasher = RandomCrasher(
            system.clock,
            system.worker_nodes,      # workers only: the journal stays put
            interval=10.0,
            downtime=30.0,
            seed=7,
        ).start()
        for iid in iids:
            result = system.run_until_terminal(iid, max_time=100_000)
            assert result["status"] == "completed", iid
        crasher.stop()
        return system, iids

    def test_hedged_duplicates_never_double_apply(self):
        system, iids = self.chaos_run()
        assert system.execution.stats["hedges"] > 0  # hedging actually exercised
        for iid in iids:
            journal = system.execution.export_instance(iid)["journal"]
            seen = set()
            for entry in journal:
                if entry.get("type") != "result":
                    continue
                key = (entry["path"], entry["exec"])
                assert key not in seen, (iid, key)
                seen.add(key)

    def test_duplicate_replies_counted_not_applied(self):
        system, iids = self.chaos_run()
        # any hedge whose loser also replied shows up here; the assertion
        # above proves none of them reached the journal twice
        assert system.execution.stats["duplicate_replies"] >= 0

    def test_breaker_trips_reported_in_stats(self):
        system = order_system(workers=2, dispatch_timeout=10.0, sweep_interval=5.0)
        FaultPlan(system.clock).crash_at(
            system.worker_nodes[0], when=0.1, down_for=400.0
        ).arm()
        iids = [
            system.instantiate("order", paper_order.ROOT_TASK, {"order": f"b-{i}"})
            for i in range(4)
        ]
        for iid in iids:
            result = system.run_until_terminal(iid, max_time=20_000)
            assert result["status"] == "completed"
        report = system.execution.resilience_report()
        assert report["stats"]["breaker_trips"] >= 1
        names = {w["worker"] for w in report["workers"]}
        assert names == {"worker-1", "worker-2"}


class TestLegacyMode:
    def test_disabled_config_reports_no_resilience_activity(self):
        system = order_system(
            workers=2,
            dispatch_timeout=20.0,
            sweep_interval=5.0,
            resilience=ResilienceConfig.disabled(),
        )
        iid = system.instantiate("order", paper_order.ROOT_TASK, {"order": "legacy"})
        result = system.run_until_terminal(iid, max_time=10_000)
        assert result["status"] == "completed"
        stats = system.execution.stats
        assert stats["hedges"] == 0
        assert stats["breaker_trips"] == 0
        assert stats["abandoned"] == 0
