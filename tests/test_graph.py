"""Unit tests for dependency-graph extraction (the figure structures)."""

from repro.core import dependency_graph, find_cycles, structure_summary
from repro.workloads import diamond, paper_order, paper_trip


class TestDiamond:
    def test_fig1_shape(self):
        script, _reg, root, _inputs = diamond()
        compound = script.tasks[root]
        graph = dependency_graph(compound)
        assert set(graph.nodes) == {"fig1", "t1", "t2", "t3", "t4"}
        # t2 and t3 both depend on t1; t4 on both t2 and t3
        assert graph.has_edge("t1", "t2")
        assert graph.has_edge("t1", "t3")
        assert graph.has_edge("t2", "t4")
        assert graph.has_edge("t3", "t4")

    def test_fig1_arc_flavours(self):
        script, _reg, root, _inputs = diamond()
        graph = dependency_graph(script.tasks[root])
        flavours = {
            (u, v): d["flavour"] for u, v, d in graph.edges(data=True) if u != "fig1"
        }
        assert flavours[("t1", "t2")] == "notify"   # dotted arc in Fig. 1
        assert flavours[("t1", "t3")] == "data"     # solid arc
        assert flavours[("t2", "t4")] == "data"
        assert flavours[("t3", "t4")] == "data"

    def test_fig1_acyclic(self):
        script, _reg, root, _inputs = diamond()
        assert find_cycles(script.tasks[root], script) == []


class TestOrderStructure:
    def test_fig7_summary(self):
        script = paper_order.build()
        summary = structure_summary(script.tasks[paper_order.ROOT_TASK])
        assert summary["tasks"] == 4
        assert summary["outputs"] == 2

    def test_fig7_acyclic(self):
        script = paper_order.build()
        assert find_cycles(script.tasks[paper_order.ROOT_TASK], script) == []

    def test_fig7_parallel_branches(self):
        script = paper_order.build()
        graph = dependency_graph(script.tasks[paper_order.ROOT_TASK])
        # no edge between the two parallel front tasks
        assert not graph.has_edge("paymentAuthorisation", "checkStock")
        assert not graph.has_edge("checkStock", "paymentAuthorisation")
        assert graph.has_edge("paymentAuthorisation", "dispatch")
        assert graph.has_edge("checkStock", "dispatch")
        assert graph.has_edge("dispatch", "paymentCapture")


class TestTripStructure:
    def test_fig8_top_level(self):
        script = paper_trip.build()
        trip = script.tasks[paper_trip.ROOT_TASK]
        assert {t.name for t in trip.tasks} == {"businessReservation", "printTickets"}

    def test_fig9_business_reservation_constituents(self):
        script = paper_trip.build()
        trip = script.tasks[paper_trip.ROOT_TASK]
        br = trip.task("businessReservation")
        assert {t.name for t in br.tasks} == {
            "dataAcquisition",
            "checkFlightReservation",
            "flightReservation",
            "hotelReservation",
            "flightCancellation",
        }

    def test_repeat_loop_not_reported_as_cycle(self):
        script = paper_trip.build()
        trip = script.tasks[paper_trip.ROOT_TASK]
        br = trip.task("businessReservation")
        assert find_cycles(br, script) == []

    def test_compensation_edge_present(self):
        script = paper_trip.build()
        br = script.tasks[paper_trip.ROOT_TASK].task("businessReservation")
        graph = dependency_graph(br)
        assert graph.has_edge("hotelReservation", "flightCancellation")
        assert graph.has_edge("flightReservation", "flightCancellation")
