"""Regressions for the instance-tree ready queue: stale-node draining must
not recurse (RecursionError on wide fan-outs) and claimed nodes must be
released when an ancestor terminates underneath them."""

import sys

import pytest

from repro.engine.local import LocalWorkflow
from repro.engine.registry import ImplementationRegistry
from repro.workloads import generators


def fan_workflow(width, use_plan=True):
    script, registry, root, inputs = generators.fan(width)
    wf = LocalWorkflow(script, root, registry, use_plan=use_plan)
    wf.start(inputs)
    assert wf.step()  # run the source; all width workers become ready
    return wf


class TestTakeReadyIsIterative:
    @pytest.mark.parametrize("use_plan", [True, False], ids=["plan", "interpretive"])
    def test_wide_fanout_of_stale_nodes(self, use_plan):
        """Abort the root while ~2000 workers sit in the ready queue: every
        queued node is stale, and take_ready must skip them all in one call
        without growing the stack per node."""
        wf = fan_workflow(2000, use_plan=use_plan)
        assert len(wf.tree.peek_ready()) == 2000
        wf.tree.node_at("fan").deactivate()
        limit = sys.getrecursionlimit()
        try:
            sys.setrecursionlimit(400)  # far below the stale-queue depth
            assert wf.tree.take_ready() is None
        finally:
            sys.setrecursionlimit(limit)
        assert not wf.tree._ready

    def test_stale_prefix_does_not_starve_live_node(self):
        """A live ready node behind a pile of stale ones is still returned."""
        wf = fan_workflow(50)
        workers = wf.tree.peek_ready()
        for node in workers[:-1]:
            node.deactivate()  # stale, still queued
        got = wf.tree.take_ready()
        assert got is workers[-1]


class TestDrainClaimRelease:
    def test_root_termination_unclaims_drained_nodes(self):
        """drain_ready claims nodes; a terminating ancestor must release
        those claims so nothing stays claimed-forever on a dead subtree."""
        wf = fan_workflow(4)
        drained = wf.tree.drain_ready()
        assert len(drained) == 4 and all(n.claimed for n in drained)
        wf.tree.node_at("fan").deactivate()
        assert all(not n.claimed for n in drained)
        assert wf.tree.drain_ready() == []
        for node in drained:
            assert wf.tree.try_begin_execution(node) is None
            assert not node.claimed

    def test_repeat_releases_claims_in_subtree(self):
        """The same release applies when a compound repeats (children are
        deactivated and rebuilt) rather than terminating."""
        script, registry, root, inputs = generators.fan(3)
        wf = LocalWorkflow(script, root, registry)
        wf.start(inputs)
        assert wf.step()
        drained = wf.tree.drain_ready()
        assert drained and all(n.claimed for n in drained)
        for node in drained:
            node.deactivate()
        assert all(not n.claimed for n in drained)
