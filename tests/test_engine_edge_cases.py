"""Edge cases of the instance semantics: compound marks, deep termination,
stale results, event-log helpers, multi-root scripts."""

import pytest

from repro.core import ScriptBuilder, from_input, from_output
from repro.core.selection import EventKind
from repro.core.states import TaskState
from repro.engine import (
    ImplementationRegistry,
    LocalEngine,
    WorkflowStatus,
    outcome,
    repeat,
)


class TestCompoundMarks:
    def script(self):
        """A compound whose mark output fires from an inner task's mark,
        while a sibling outside the compound consumes it."""
        b = ScriptBuilder()
        b.object_class("Data")
        (
            b.taskclass("Inner")
            .input_set("main")
            .mark("progress", sofar="Data")
            .outcome("done", out="Data")
        )
        (
            b.taskclass("Block")
            .input_set("main")
            .mark("partial", sofar="Data")
            .outcome("finished", out="Data")
        )
        b.taskclass("Watcher").input_set("main", inp="Data").outcome("saw", out="Data")
        b.taskclass("Root").input_set("main").outcome("done", out="Data")
        c = b.compound("wf", "Root")
        block = c.compound("block", "Block")
        block.notify("main", from_input("wf", "main"))
        block.task("inner", "Inner").implementation(code="inner").notify(
            "main", from_input("block", "main")
        ).up()
        block.output("partial").object(
            "sofar", from_output("inner", "progress", "sofar")
        ).up()
        block.output("finished").object("out", from_output("inner", "done", "out")).up()
        block.up()
        c.task("watcher", "Watcher").implementation(code="watcher").input(
            "main", "inp", from_output("block", "partial", "sofar")
        ).up()
        c.output("done").object("out", from_output("watcher", "saw", "out")).up()
        c.up()
        return b.build()

    def test_compound_mark_propagates_outward(self):
        reg = ImplementationRegistry()

        def inner(ctx):
            ctx.mark("progress", sofar="halfway")
            return outcome("done", out="final")

        reg.register("inner", inner)
        reg.register("watcher", lambda ctx: outcome("saw", out=ctx.value("inp")))
        result = LocalEngine(reg).run(self.script(), inputs={})
        assert result.completed
        # the watcher consumed the compound's *mark*, released before the
        # compound itself finished
        assert result.value("out") == "halfway"

    def test_compound_mark_emitted_once(self):
        reg = ImplementationRegistry()

        def inner(ctx):
            ctx.mark("progress", sofar="x")
            return outcome("done", out="final")

        reg.register("inner", inner)
        reg.register("watcher", lambda ctx: outcome("saw", out=ctx.value("inp")))
        result = LocalEngine(reg).run(self.script(), inputs={})
        marks = [
            e for e in result.log.entries
            if e.producer_path == "wf/block" and e.event.kind is EventKind.MARK
        ]
        assert len(marks) == 1


class TestDeepTermination:
    def test_grandchildren_deactivated_when_ancestor_finishes(self):
        b = ScriptBuilder()
        b.object_class("Data")
        b.taskclass("Fast").input_set("main").outcome("done", out="Data")
        b.taskclass("Slow").input_set("main").outcome("done", out="Data")
        b.taskclass("Mid").input_set("main").outcome("done", out="Data")
        b.taskclass("Root").input_set("main").outcome("done", out="Data")
        c = b.compound("wf", "Root")
        c.task("fast", "Fast").implementation(code="fast").notify(
            "main", from_input("wf", "main")
        ).up()
        mid = c.compound("mid", "Mid")
        mid.notify("main", from_input("wf", "main"))
        mid.task("slowA", "Slow").implementation(code="slow").notify(
            "main", from_input("mid", "main")
        ).up()
        mid.task("slowB", "Slow").implementation(code="slow").notify(
            "main", from_output("slowA", "done")
        ).up()
        mid.output("done").object("out", from_output("slowB", "done", "out")).up()
        mid.up()
        # root completes as soon as `fast` finishes
        c.output("done").object("out", from_output("fast", "done", "out")).up()
        c.up()
        ran = []
        reg = ImplementationRegistry()
        reg.register("fast", lambda ctx: ran.append(ctx.task_path) or outcome("done", out="f"))
        reg.register("slow", lambda ctx: ran.append(ctx.task_path) or outcome("done", out="s"))
        wf = LocalEngine(reg).workflow(b.build())
        wf.start({})
        result = wf.run_to_completion()
        assert result.completed
        # slowB never ran: its compound was deactivated when the root finished
        assert "wf/mid/slowB" not in ran
        node = wf.tree.node_at("wf/mid/slowB")
        assert not node.alive


class TestStaleResults:
    def test_result_after_compound_repeat_is_ignored(self):
        """A node from a previous repeat round cannot inject its result."""
        b = ScriptBuilder()
        b.object_class("Data")
        b.taskclass("Inner").input_set("main").outcome("done", out="Data")
        (
            b.taskclass("Looping")
            .input_set("main")
            .outcome("ok", out="Data")
            .repeat_outcome("again")
        )
        b.taskclass("Root").input_set("main").outcome("done", out="Data")
        c = b.compound("wf", "Root")
        loop = c.compound("loop", "Looping")
        loop.notify("main", from_input("wf", "main"))
        loop.task("inner", "Inner").implementation(code="inner").notify(
            "main", from_input("loop", "main")
        ).up()
        loop.output("again").notify(from_output("inner", "done")).up()
        loop.output("ok").object("out", from_output("inner", "done", "out")).up()
        c.output("done").object("out", from_output("loop", "ok", "out")).up()
        loop.up()
        c.up()
        script = b.build()
        reg = ImplementationRegistry()
        reg.register("inner", lambda ctx: outcome("done", out="x"))
        wf = LocalEngine(reg, max_repeats=3).workflow(script)
        wf.start({})
        wf.step()  # first inner execution triggers `again` (declared first)
        result = wf.run_to_completion()
        # the loop hits max_repeats because `again` always wins; the engine
        # fails cleanly rather than looping forever
        assert result.status is WorkflowStatus.FAILED

    def test_apply_result_on_terminated_node_is_noop(self):
        from repro.engine.context import TaskResult
        from repro.core.schema import OutputKind

        b = ScriptBuilder()
        b.object_class("Data")
        b.taskclass("T").input_set("main").outcome("ok", out="Data")
        b.taskclass("Root").input_set("main").outcome("done", out="Data")
        c = b.compound("wf", "Root")
        c.task("t", "T").implementation(code="t").notify(
            "main", from_input("wf", "main")
        ).up()
        c.output("done").object("out", from_output("t", "ok", "out")).up()
        c.up()
        reg = ImplementationRegistry().register("t", lambda ctx: outcome("ok", out="1"))
        wf = LocalEngine(reg).workflow(b.build())
        wf.start({})
        wf.run_to_completion()
        node = wf.tree.node_at("wf/t")
        before = len(wf.tree.log)
        wf.tree.apply_result(node, TaskResult(OutputKind.OUTCOME, "ok", {"out": "2"}))
        assert len(wf.tree.log) == before  # silently dropped


class TestEventLogHelpers:
    def result(self):
        from repro.workloads import paper_order

        return LocalEngine(paper_order.default_registry()).run(
            paper_order.build(), inputs={"order": "o"}
        )

    def test_first_and_for_task(self):
        result = self.result()
        entry = result.log.first(
            "processOrderApplication/dispatch", EventKind.OUTCOME
        )
        assert entry is not None and entry.event.name == "dispatchCompleted"
        events = result.log.for_task("processOrderApplication/dispatch")
        assert {e.event.kind for e in events} == {EventKind.INPUT, EventKind.OUTCOME}

    def test_happened_before_with_missing_events(self):
        result = self.result()
        assert not result.log.happened_before(
            ("ghost", EventKind.INPUT),
            ("processOrderApplication", EventKind.OUTCOME),
        )

    def test_of_kind(self):
        result = self.result()
        outcomes = result.log.of_kind(EventKind.OUTCOME)
        assert len(outcomes) == 5  # 4 tasks + the compound


class TestMultiRootScripts:
    def test_each_root_runs_independently(self):
        b = ScriptBuilder()
        b.taskclass("T").input_set("main").outcome("ok")
        b.task("first", "T").implementation(code="a").up()
        b.task("second", "T").implementation(code="b").up()
        script = b.build()
        calls = []
        reg = ImplementationRegistry()
        reg.register("a", lambda ctx: calls.append("a") or outcome("ok"))
        reg.register("b", lambda ctx: calls.append("b") or outcome("ok"))
        engine = LocalEngine(reg)
        assert engine.run(script, "first").completed
        assert engine.run(script, "second").completed
        assert calls == ["a", "b"]
