"""Detailed formatter coverage: compound templates, implementation property
ordering, nested output kinds."""

from repro.core.schema import OutputKind
from repro.lang import compile_script, format_script, parse


COMPOUND_TEMPLATE = """
class Data;

taskclass Leaf
{
    inputs { input main { inp of class Data } };
    outputs { outcome done { out of class Data } }
};

taskclass Wrap
{
    inputs { input main { inp of class Data } };
    outputs { outcome done { out of class Data } }
};

tasktemplate compoundtask wrapper of taskclass Wrap
{
    parameters { feeder };
    inputs
    {
        input main
        {
            inputobject inp from { out of task feeder if output done }
        }
    };
    task leaf of taskclass Leaf
    {
        implementation { "code" is "leaf" };
        inputs
        {
            input main
            {
                inputobject inp from { inp of task wrapper if input main }
            }
        }
    };
    outputs
    {
        outcome done { outputobject out from { out of task leaf if output done } }
    }
};
"""


class TestCompoundTemplates:
    def test_compound_template_parses(self):
        script = parse(COMPOUND_TEMPLATE)
        template = script.templates["wrapper"]
        assert template.parameters == ("feeder",)
        assert template.body.is_compound
        assert template.body.task("leaf") is not None

    def test_compound_template_roundtrips(self):
        script = parse(COMPOUND_TEMPLATE)
        again = parse(format_script(script))
        assert again.templates["wrapper"].body == script.templates["wrapper"].body

    def test_compound_template_instantiates_with_substitution(self):
        text = COMPOUND_TEMPLATE + """
        taskclass Source { outputs { outcome done { out of class Data } } };
        task src of taskclass Source { implementation { "code" is "src" } };
        w1 of tasktemplate wrapper(src);
        """
        script = parse(text)
        w1 = script.tasks["w1"]
        source = w1.input_sets[0].objects[0].sources[0]
        assert source.task_name == "src"
        # inner references to the template's own name were renamed
        inner_source = w1.task("leaf").input_sets[0].objects[0].sources[0]
        assert inner_source.task_name == "w1"


class TestImplementationFormatting:
    def test_multiple_properties_roundtrip(self):
        text = """
        taskclass T { outputs { outcome ok { } } }
        task t of taskclass T
        {
            implementation
            {
                "code" is "refT", "priority" is "3", "location" is "worker-2",
                "deadline" is "60"
            }
        }
        """
        script = parse(text)
        again = parse(format_script(script))
        assert again.tasks["t"].implementation == script.tasks["t"].implementation
        assert again.tasks["t"].implementation.get("location") == "worker-2"

    def test_empty_implementation_omitted(self):
        text = 'taskclass T { outputs { outcome ok { } } } task t of taskclass T { }'
        rendered = format_script(parse(text))
        assert "implementation" not in rendered


class TestOutputKindRendering:
    def test_every_kind_renders_and_reparses(self):
        text = """
        class Data;
        taskclass T
        {
            outputs
            {
                outcome a { x of class Data };
                repeat outcome c { };
                mark d { y of class Data }
            }
        }
        taskclass U { outputs { outcome ok { }; abort outcome b { } } }
        """
        script = parse(text)
        again = parse(format_script(script))
        t = again.taskclasses["T"]
        assert t.output("a").kind is OutputKind.OUTCOME
        assert t.output("c").kind is OutputKind.REPEAT
        assert t.output("d").kind is OutputKind.MARK
        assert again.taskclasses["U"].output("b").kind is OutputKind.ABORT

    def test_compound_mark_output_mapping_renders_kind(self):
        from repro.workloads import paper_trip

        rendered = format_script(paper_trip.build())
        assert "mark toPay" in rendered
        assert "repeat outcome retry" in rendered
        assert "abort outcome reservationAborted" in rendered
