"""Tests for object-class sub-typing (the paper's §7 future-work extension)."""

import pytest

from repro.core import ScriptBuilder, ValidationReport, from_input, from_output
from repro.engine import ImplementationRegistry, LocalEngine, outcome
from repro.lang import compile_script, format_script, parse


def hierarchy_builder():
    b = ScriptBuilder()
    b.object_class("Account")
    b.object_class("SavingsAccount", extends="Account")
    b.object_class("JuniorSavings", extends="SavingsAccount")
    b.object_class("Loan")
    return b


class TestHierarchy:
    def test_is_subclass_reflexive(self):
        script = hierarchy_builder().script
        assert script.is_subclass("Account", "Account")

    def test_is_subclass_direct_and_transitive(self):
        script = hierarchy_builder().script
        assert script.is_subclass("SavingsAccount", "Account")
        assert script.is_subclass("JuniorSavings", "Account")

    def test_is_subclass_not_reversed(self):
        script = hierarchy_builder().script
        assert not script.is_subclass("Account", "SavingsAccount")

    def test_unrelated_classes(self):
        script = hierarchy_builder().script
        assert not script.is_subclass("Loan", "Account")


class TestValidationWithSubtypes:
    def build(self, produced: str, expected: str):
        b = hierarchy_builder()
        b.taskclass("Producer").input_set("main").outcome("done", out=produced)
        b.taskclass("Consumer").input_set("main", inp=expected).outcome("done")
        b.taskclass("Root").input_set("main").outcome("done")
        c = b.compound("wf", "Root")
        c.task("p", "Producer").implementation(code="p").notify(
            "main", from_input("wf", "main")
        ).up()
        c.task("q", "Consumer").implementation(code="q").input(
            "main", "inp", from_output("p", "done", "out")
        ).up()
        c.output("done").notify(from_output("q", "done")).up()
        c.up()
        return b

    def test_subclass_flows_to_superclass_slot(self):
        self.build("SavingsAccount", "Account").build()  # validates

    def test_deep_subclass_accepted(self):
        self.build("JuniorSavings", "Account").build()

    def test_superclass_to_subclass_rejected(self):
        with pytest.raises(ValidationReport):
            self.build("Account", "SavingsAccount").build()

    def test_unrelated_rejected(self):
        with pytest.raises(ValidationReport):
            self.build("Loan", "Account").build()

    def test_extends_undeclared_class_rejected(self):
        b = ScriptBuilder()
        b.object_class("X", extends="Ghost")
        from repro.core import validate_script

        errors = validate_script(b.build(validate=False))
        assert any("undeclared class 'Ghost'" in str(e) for e in errors)

    def test_inheritance_cycle_rejected(self):
        b = ScriptBuilder()
        b.object_class("A", extends="B")
        b.object_class("B", extends="A")
        from repro.core import validate_script

        errors = validate_script(b.build(validate=False))
        assert any("inheritance cycle" in str(e) for e in errors)


class TestLanguageSupport:
    def test_parse_extends(self):
        script = parse("class Account; class SavingsAccount extends Account;")
        assert script.classes["SavingsAccount"] == "Account"
        assert script.classes["Account"] is None

    def test_format_roundtrip_with_extends(self):
        script = parse("class Account; class SavingsAccount extends Account;")
        again = parse(format_script(script))
        assert again.classes == script.classes

    def test_building_block_task_over_supertype(self):
        """The §7 motivation: one task operating on the standard supertype
        serves every subclass."""
        text = """
        class Account;
        class SavingsAccount extends Account;

        taskclass OpenSavings
        {
            inputs { input main { } };
            outputs { outcome opened { account of class SavingsAccount } }
        };
        taskclass Audit
        {
            inputs { input main { account of class Account } };
            outputs { outcome audited { report of class Account } }
        };
        taskclass Root
        {
            inputs { input main { } };
            outputs { outcome done { report of class Account } }
        };
        compoundtask wf of taskclass Root
        {
            task open of taskclass OpenSavings
            {
                implementation { "code" is "open" };
                inputs { input main { notification from { task wf if input main } } }
            };
            task audit of taskclass Audit
            {
                implementation { "code" is "audit" };
                inputs
                {
                    input main
                    {
                        inputobject account from { account of task open if output opened }
                    }
                }
            };
            outputs
            {
                outcome done
                {
                    outputobject report from { report of task audit if output audited }
                }
            }
        };
        """
        script = compile_script(text)
        reg = ImplementationRegistry()
        reg.register("open", lambda ctx: outcome("opened", account="acct-9"))
        reg.register(
            "audit", lambda ctx: outcome("audited", report=f"ok:{ctx.value('account')}")
        )
        result = LocalEngine(reg).run(script, inputs={})
        assert result.completed
        assert result.value("report") == "ok:acct-9"
