"""Recovery-safety and deadlock analysis (E4xx/W4xx) plus the runtime
lockset/vector-clock sanitizer.

Covers: the static checkers' positive and negative cases, the diagnostic
registry entries, strict admission on the new error codes, the dynamic
sanitizer (races, lock inversions, deadlocks, duplicate effects) and the
static-superset guarantee — including the barrier-rendezvous fixture that
provokes a static E403 cycle into a real ``DeadlockError`` under the
concurrent engine, proving the static finding genuine.
"""

from __future__ import annotations

import threading

import pytest

from repro.analysis import (
    DIAGNOSTICS,
    Sanitizer,
    Severity,
    analyze_script,
    check_lockorder,
    check_recovery,
    sanitized_exploration,
)
from repro.core import ScriptBuilder, from_input, from_output
from repro.core.selection import HOTPATH_STATS
from repro.engine import ImplementationRegistry, LocalEngine, outcome
from repro.engine.concurrent import ConcurrentEngine
from repro.lang import format_script
from repro.txn.locks import DeadlockError, LockManager, LockMode


# -- fixture scripts -----------------------------------------------------------


def _atomic_pair_script(invert: bool = True):
    """Two atomic constituents locking env objects x and y; ``invert``
    declares them in opposite orders (the E403 shape)."""
    b = ScriptBuilder()
    b.object_classes("Data")
    (b.taskclass("AtomicXY")
        .input_set("main", x="Data", y="Data")
        .outcome("ok", out="Data")
        .abort_outcome("fail"))
    (b.taskclass("AtomicYX")
        .input_set("main", y="Data", x="Data")
        .outcome("ok", out="Data")
        .abort_outcome("fail"))
    (b.taskclass("Root")
        .input_set("main", x="Data", y="Data")
        .outcome("done", out="Data")
        .abort_outcome("failed"))
    wf = b.compound("wf", "Root")
    (wf.task("a", "AtomicXY").implementation(code="implA")
        .input("main", "x", from_input("wf", "main", "x"))
        .input("main", "y", from_input("wf", "main", "y")).up())
    second = "AtomicYX" if invert else "AtomicXY"
    builder = wf.task("bb", second).implementation(code="implB")
    if invert:
        builder.input("main", "y", from_input("wf", "main", "y"))
        builder.input("main", "x", from_input("wf", "main", "x"))
    else:
        builder.input("main", "x", from_input("wf", "main", "x"))
        builder.input("main", "y", from_input("wf", "main", "y"))
    builder.up()
    (wf.output("done").object("out", from_output("a", "ok", "out")).up()
       .output("failed")
       .notify(from_output("a", "fail"), from_output("bb", "fail")).up())
    wf.up()
    return b.build()


def _uncompensated_script(compensated: bool = False):
    """Atomic ``pay`` commits; the compound's abort fires from ``ship``
    alone.  With ``compensated`` a third task consumes pay's committed
    receipt (the compensation hook) and E402 must stay silent."""
    b = ScriptBuilder()
    b.object_classes("Data")
    (b.taskclass("Pay").input_set("main", x="Data")
        .outcome("paid", receipt="Data").abort_outcome("payFailed"))
    (b.taskclass("Ship").input_set("main", x="Data")
        .outcome("shipped", note="Data").abort_outcome("shipFailed"))
    (b.taskclass("Refund").input_set("main", receipt="Data")
        .outcome("refunded", out="Data"))
    (b.taskclass("Root").input_set("main", x="Data")
        .outcome("done", out="Data").abort_outcome("failed"))
    wf = b.compound("wf", "Root")
    (wf.task("pay", "Pay").implementation(code="pay")
        .input("main", "x", from_input("wf", "main", "x")).up())
    (wf.task("ship", "Ship").implementation(code="ship")
        .input("main", "x", from_input("wf", "main", "x")).up())
    if compensated:
        (wf.task("refund", "Refund").implementation(code="refund")
            .input("main", "receipt", from_output("pay", "paid", "receipt")).up())
    (wf.output("done").object("out", from_output("ship", "shipped", "note")).up()
       .output("failed").notify(from_output("ship", "shipFailed")).up())
    wf.up()
    return b.build()


def _deadline_script():
    b = ScriptBuilder()
    b.object_classes("Data")
    (b.taskclass("NoAbort").input_set("main", x="Data").outcome("ok", out="Data"))
    (b.taskclass("HasAbort").input_set("main", x="Data")
        .outcome("ok", out="Data").abort_outcome("fail"))
    (b.taskclass("Root").input_set("main", x="Data").outcome("done", out="Data"))
    wf = b.compound("wf", "Root")
    (wf.task("unarmable", "NoAbort").implementation(code="impl", deadline="5")
        .input("main", "x", from_input("wf", "main", "x")).up())
    (wf.task("unparsable", "HasAbort").implementation(code="impl", deadline="soon")
        .input("main", "x", from_input("wf", "main", "x")).up())
    (wf.task("degenerate", "HasAbort").implementation(code="impl", deadline="0")
        .input("main", "x", from_input("wf", "main", "x")).up())
    (wf.task("healthy", "HasAbort").implementation(code="impl", deadline="30")
        .input("main", "x", from_input("wf", "main", "x")).up())
    (wf.output("done").object("out", from_output("unarmable", "ok", "out")).up())
    wf.up()
    return b.build()


def _codes(findings, code):
    return [f for f in findings if f.code == code]


# -- registry ------------------------------------------------------------------


def test_new_codes_registered():
    assert DIAGNOSTICS.require("W401").severity is Severity.WARNING
    assert DIAGNOSTICS.require("E402").severity is Severity.ERROR
    assert DIAGNOSTICS.require("E403").severity is Severity.ERROR
    assert DIAGNOSTICS.require("W404").severity is Severity.WARNING


# -- W401: bare effects --------------------------------------------------------


def test_w401_flags_reachable_nonatomic_tasks(pipeline_script):
    findings = check_recovery(pipeline_script)
    flagged = {f.location for f in _codes(findings, "W401")}
    assert flagged == {"pipeline/t1", "pipeline/t2", "pipeline/t3"}


def test_w401_spares_atomic_and_timer_tasks():
    b = ScriptBuilder()
    b.object_classes("Data")
    (b.taskclass("Atomic").input_set("main", x="Data")
        .outcome("ok", out="Data").abort_outcome("fail"))
    (b.taskclass("Tick").input_set("main").outcome("fired"))
    (b.taskclass("Root").input_set("main", x="Data").outcome("done", out="Data"))
    wf = b.compound("wf", "Root")
    (wf.task("tx", "Atomic").implementation(code="impl")
        .input("main", "x", from_input("wf", "main", "x")).up())
    (wf.task("tick", "Tick")
        .implementation(code="system.timer", delay="5")
        .notify("main", from_input("wf", "main")).up())
    (wf.output("done").object("out", from_output("tx", "ok", "out")).up())
    wf.up()
    findings = check_recovery(b.build())
    assert not _codes(findings, "W401")


# -- E402: uncompensated abort paths -------------------------------------------


def test_e402_fires_on_uncompensated_commit():
    findings = check_recovery(_uncompensated_script())
    e402 = _codes(findings, "E402")
    assert [f.location for f in e402] == ["wf -> wf/pay"]
    assert e402[0].related == ("wf", "wf/pay")


def test_e402_silent_when_commit_is_consumed():
    findings = check_recovery(_uncompensated_script(compensated=True))
    assert not _codes(findings, "E402")


def test_e402_silent_when_abort_demands_the_constituents_abort():
    # the compound abort fires only via pay's own abort: pay cannot have
    # committed on that path, nothing stands uncompensated
    b = ScriptBuilder()
    b.object_classes("Data")
    (b.taskclass("Pay").input_set("main", x="Data")
        .outcome("paid", receipt="Data").abort_outcome("payFailed"))
    (b.taskclass("Root").input_set("main", x="Data")
        .outcome("done", out="Data").abort_outcome("failed"))
    wf = b.compound("wf", "Root")
    (wf.task("pay", "Pay").implementation(code="pay")
        .input("main", "x", from_input("wf", "main", "x")).up())
    (wf.output("done").object("out", from_output("pay", "paid", "receipt")).up()
       .output("failed").notify(from_output("pay", "payFailed")).up())
    wf.up()
    findings = check_recovery(b.build())
    assert not _codes(findings, "E402")


# -- W404: degenerate deadlines ------------------------------------------------


def test_w404_three_degenerate_shapes_and_one_healthy():
    findings = check_recovery(_deadline_script())
    w404 = {f.location: f.message for f in _codes(findings, "W404")}
    assert set(w404) == {"wf/unarmable", "wf/unparsable", "wf/degenerate"}
    assert "never arm" in w404["wf/unarmable"]
    assert "not a number" in w404["wf/unparsable"]
    assert "non-positive" in w404["wf/degenerate"]


# -- E403: lock-order inversions -----------------------------------------------


def test_e403_fires_on_inverted_acquisition_order():
    findings = check_lockorder(_atomic_pair_script(invert=True))
    e403 = _codes(findings, "E403")
    assert [f.location for f in e403] == ["wf/a <-> wf/bb"]
    assert e403[0].related == ("wf/a", "wf/bb")


def test_e403_silent_on_consistent_order():
    assert not check_lockorder(_atomic_pair_script(invert=False))


def test_e403_silent_on_ordered_tasks(pipeline_script):
    # pipeline stages are happens-before ordered; even inverted declaration
    # orders could never overlap (and these tasks are not atomic anyway)
    assert not check_lockorder(pipeline_script)


def test_shipped_scripts_stay_error_clean():
    """No E402/E403 false positives on the paper workloads (acceptance:
    `repro lint` on clean workloads introduces no new errors)."""
    from repro.workloads import paper_order, paper_service_impact, paper_trip

    for module in (paper_order, paper_trip, paper_service_impact):
        report = analyze_script(module.build())
        assert report.ok, [f.as_dict() for f in report.errors()]


# -- strict admission ----------------------------------------------------------


def test_strict_admission_rejects_e403():
    from repro.core.errors import SchemaError
    from repro.services.repository import RepositoryService
    from repro.txn import ObjectStore

    text = format_script(_atomic_pair_script(invert=True))
    strict = RepositoryService("repo", ObjectStore("sx"), strict_admission=True)
    with pytest.raises(SchemaError, match="E403"):
        strict.store_script("deadlocky", text)
    assert strict.list_scripts() == []


def test_strict_admission_rejects_e402():
    from repro.core.errors import SchemaError
    from repro.services.repository import RepositoryService
    from repro.txn import ObjectStore

    text = format_script(_uncompensated_script())
    strict = RepositoryService("repo", ObjectStore("sy"), strict_admission=True)
    with pytest.raises(SchemaError, match="E402"):
        strict.store_script("uncompensated", text)


# -- sanitizer: vector clocks --------------------------------------------------


def test_vector_clock_orderings():
    from repro.analysis.dynamic import VectorClock

    a = VectorClock({"p": 1})
    b = VectorClock({"p": 2, "q": 1})
    assert a.leq(b) and not b.leq(a)
    c = VectorClock({"q": 1})
    assert a.concurrent(c)
    d = a.copy()
    d.join(c)
    assert d.clock == {"p": 1, "q": 1}
    assert not d.concurrent(a) and not d.concurrent(c)


def test_sanitizer_sees_fanout_race_and_pipeline_order(pipeline_script, pipeline_registry):
    # ordered pipeline: no races, dynamic findings empty
    sanitizer = Sanitizer()
    engine = ConcurrentEngine(pipeline_registry, parallelism=4, sanitizer=sanitizer)
    for _ in range(3):
        engine.run(pipeline_script, inputs={"inp": "seed"})
    assert sanitizer.findings == []
    assert sanitizer.trees_attached == 3


def test_sanitized_exploration_covers_paper_order():
    from repro.workloads import paper_order

    script = paper_order.build()
    report = analyze_script(script)
    sanitizer = sanitized_exploration(script, paper_order.ROOT_TASK)
    races = [f for f in sanitizer.findings if f.kind == "race"]
    assert races, "the order workload's documented §3 race must be observed"
    assert {f.subjects for f in races} <= {
        (
            "processOrderApplication/checkStock",
            "processOrderApplication/paymentAuthorisation",
        )
    }
    assert sanitizer.check_coverage(report) == []


def test_sanitizer_zero_hooks_when_disabled():
    """The default path carries no sanitizer hooks at all: tree methods are
    the plain class attributes unless a sanitizer is attached."""
    from repro.engine.instance import InstanceTree
    from tests.conftest import build_pipeline_script, stage_registry

    script = build_pipeline_script(2)
    wf = LocalEngine(stage_registry()).workflow(script)
    assert wf.tree._publish.__func__ is InstanceTree._publish
    assert wf.tree._start_node.__func__ is InstanceTree._start_node
    sanitizer = Sanitizer()
    wf_sanitized = LocalEngine(stage_registry(), sanitizer=sanitizer).workflow(script)
    assert wf_sanitized.tree._publish is not InstanceTree._publish


# -- sanitizer: locksets and the E403 fixture ----------------------------------


def test_lock_hooks_record_inversion_and_deadlock():
    sanitizer = Sanitizer()
    manager = LockManager()
    sanitizer.attach_locks(manager)
    sanitizer.bind_txn("t1", "wf/a")
    sanitizer.bind_txn("t2", "wf/bb")
    manager.acquire("t1", "x", LockMode.EXCLUSIVE, wait=True)
    manager.acquire("t2", "y", LockMode.EXCLUSIVE, wait=True)
    manager.acquire("t1", "y", LockMode.EXCLUSIVE, wait=True)  # t1 waits on t2
    with pytest.raises(DeadlockError):
        manager.acquire("t2", "x", LockMode.EXCLUSIVE, wait=True)
    kinds = {f.kind for f in sanitizer.findings}
    assert kinds == {"lock-inversion", "deadlock"}
    for finding in sanitizer.findings:
        assert finding.subjects == ("wf/a", "wf/bb")
        assert finding.code == "E403"


def test_static_e403_cycle_is_provoked_at_runtime():
    """Satellite fixture: the static E403 pair really deadlocks under the
    concurrent engine.  Both implementations lock their declared inputs in
    declaration order; a barrier rendezvous after the first acquisition
    forces the AB-BA interleaving, LockManager raises DeadlockError, and
    the dynamic finding is covered by the static E403."""
    script = _atomic_pair_script(invert=True)
    report = analyze_script(script, include_lint=False)
    assert [f.location for f in report.by_code("E403")] == ["wf/a <-> wf/bb"]

    sanitizer = Sanitizer()
    manager = LockManager()
    sanitizer.attach_locks(manager)
    barrier = threading.Barrier(2, timeout=10.0)
    deadlocks = []

    def locker(txn, first, second):
        def impl(ctx):
            sanitizer.bind_txn(txn, ctx.task_path)
            manager.acquire(txn, first, LockMode.EXCLUSIVE, wait=True)
            barrier.wait()  # both hold their first lock before either proceeds
            try:
                manager.acquire(txn, second, LockMode.EXCLUSIVE, wait=True)
            except DeadlockError:
                deadlocks.append(ctx.task_path)
            finally:
                barrier.wait()  # both attempted before anyone releases
                manager.release_all(txn)
            return outcome("ok", out="v")

        return impl

    registry = ImplementationRegistry()
    registry.register("implA", locker("txn-a", "x", "y"))
    registry.register("implB", locker("txn-b", "y", "x"))
    engine = ConcurrentEngine(registry, parallelism=2, sanitizer=sanitizer)
    result = engine.run(script, "wf", inputs={"x": "vx", "y": "vy"})
    assert result.completed, result.error
    assert deadlocks, "the AB-BA rendezvous must provoke a DeadlockError"
    lock_findings = [
        f for f in sanitizer.findings if f.kind in ("deadlock", "lock-inversion")
    ]
    assert lock_findings
    assert sanitizer.check_coverage(report) == []


# -- sanitizer: duplicate effects ----------------------------------------------


class _FakeWorker:
    def __init__(self, executed):
        self.executed = executed


def test_duplicate_effect_scan_flags_nonatomic_only():
    script = _atomic_pair_script(invert=True)
    b = ScriptBuilder()
    b.object_classes("Data")
    (b.taskclass("Bare").input_set("main", x="Data").outcome("ok", out="Data"))
    (b.taskclass("Root").input_set("main", x="Data").outcome("done", out="Data"))
    wf = b.compound("wf2", "Root")
    (wf.task("bare", "Bare").implementation(code="impl")
        .input("main", "x", from_input("wf2", "main", "x")).up())
    (wf.output("done").object("out", from_output("bare", "ok", "out")).up())
    wf.up()
    bare_script = b.build()

    sanitizer = Sanitizer()
    # atomic task executed twice: protected by the txn manager, not flagged
    sanitizer.scan_workers(
        [_FakeWorker([("i1", "wf/a", 1)]), _FakeWorker([("i1", "wf/a", 1)])],
        script,
    )
    assert sanitizer.findings == []
    # bare task executed twice: flagged once, attributed to the path
    sanitizer.scan_workers(
        [
            _FakeWorker([("i1", "wf2/bare", 1), ("i1", "wf2/bare", 1)]),
            _FakeWorker([("i2", "unknown/task", 1)] * 2),
        ],
        bare_script,
    )
    assert [f.kind for f in sanitizer.findings] == ["duplicate-effect"]
    assert sanitizer.findings[0].subjects == ("wf2/bare",)
    report = analyze_script(bare_script, include_lint=False)
    assert sanitizer.check_coverage(report) == []


def test_nemesis_duplicate_is_statically_predicted():
    """A worker crash after execute but before the reply forces the
    at-least-once redispatch to run the task again on the simulated
    system; the resulting ledger duplicate must be predicted by W401."""
    from repro.sim.harness import SimHarness
    from repro.sim.nemesis import CrashAtPoint, NemesisSchedule
    from repro.workloads import paper_order

    schedule = NemesisSchedule(
        faults=[CrashAtPoint("worker.execute.post", at_hit=1)],
        name="dup-effects",
    )
    harness = SimHarness(schedule=schedule, workload="order", seed=0, workers=2)
    sim_report = harness.run()
    assert sim_report.ok, sim_report.violations
    script = paper_order.build()
    sanitizer = Sanitizer()
    sanitizer.scan_workers(harness._system.workers, script)
    duplicates = [f for f in sanitizer.findings if f.kind == "duplicate-effect"]
    assert duplicates, "the crash-after-execute schedule must duplicate a task"
    report = analyze_script(script)
    assert sanitizer.check_coverage(report) == []


# -- hotpath stats isolation (regression) --------------------------------------


def test_hotpath_stats_reset_between_tests_part1(pipeline_script, pipeline_registry):
    LocalEngine(pipeline_registry).run(pipeline_script, inputs={"inp": "x"})
    assert HOTPATH_STATS.publishes > 0  # this test dirtied the counters


def test_hotpath_stats_reset_between_tests_part2():
    # the autouse fixture must have wiped part1's counters before this test
    assert HOTPATH_STATS.publishes == 0
    assert HOTPATH_STATS.source_evals == 0
