"""Unit tests for the write-ahead log and replay."""

import pytest

from repro.txn.ids import ObjectId, TransactionId
from repro.txn import wal as w
from repro.txn.wal import WriteAheadLog, in_doubt, replay

T1, T2 = TransactionId(1), TransactionId(2)
A, B = ObjectId("a"), ObjectId("b")


class TestAppendForce:
    def test_lsn_monotonic(self):
        log = WriteAheadLog()
        r1 = log.append(w.BEGIN, T1)
        r2 = log.append(w.COMMIT, T1)
        assert r2.lsn == r1.lsn + 1

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            WriteAheadLog().append("NOPE")

    def test_force_marks_durable(self):
        log = WriteAheadLog()
        log.append(w.BEGIN, T1)
        assert log.durable_length == 0
        log.force()
        assert log.durable_length == 1

    def test_lose_unforced_drops_tail(self):
        log = WriteAheadLog()
        log.append(w.BEGIN, T1)
        log.force()
        log.append(w.UPDATE, T1, A, 1)
        lost = log.lose_unforced()
        assert lost == 1
        assert len(log) == 1

    def test_lose_unforced_keeps_forced_records(self):
        log = WriteAheadLog()
        log.append(w.BEGIN, T1)
        log.append(w.UPDATE, T1, A, 1)
        log.force()
        log.lose_unforced()
        assert [r.kind for r in log.durable_records()] == [w.BEGIN, w.UPDATE]


class TestReplay:
    def _committed_log(self):
        log = WriteAheadLog()
        log.append(w.BEGIN, T1)
        log.append(w.UPDATE, T1, A, "v1")
        log.append(w.UPDATE, T1, B, "v2")
        log.append(w.COMMIT, T1)
        log.force()
        return log

    def test_committed_updates_applied(self):
        snapshot = replay(self._committed_log().durable_records())
        assert snapshot == {"a": "v1", "b": "v2"}

    def test_uncommitted_updates_presumed_aborted(self):
        log = WriteAheadLog()
        log.append(w.BEGIN, T1)
        log.append(w.UPDATE, T1, A, "v1")
        log.force()
        assert replay(log.durable_records()) == {}

    def test_aborted_updates_discarded(self):
        log = WriteAheadLog()
        log.append(w.BEGIN, T1)
        log.append(w.UPDATE, T1, A, "v1")
        log.append(w.ABORT, T1)
        log.force()
        assert replay(log.durable_records()) == {}

    def test_later_commit_overwrites(self):
        log = self._committed_log()
        log.append(w.BEGIN, T2)
        log.append(w.UPDATE, T2, A, "v9")
        log.append(w.COMMIT, T2)
        log.force()
        assert replay(log.durable_records())["a"] == "v9"

    def test_interleaved_transactions(self):
        log = WriteAheadLog()
        log.append(w.BEGIN, T1)
        log.append(w.BEGIN, T2)
        log.append(w.UPDATE, T1, A, 1)
        log.append(w.UPDATE, T2, B, 2)
        log.append(w.COMMIT, T2)
        log.append(w.ABORT, T1)
        log.force()
        assert replay(log.durable_records()) == {"b": 2}


class TestCheckpoint:
    def test_checkpoint_compacts_log(self):
        log = WriteAheadLog()
        for i in range(10):
            tid = TransactionId(i + 1)
            log.append(w.BEGIN, tid)
            log.append(w.UPDATE, tid, A, i)
            log.append(w.COMMIT, tid)
        log.force()
        log.checkpoint({"a": 9})
        assert len(log) == 1
        assert replay(log.durable_records()) == {"a": 9}

    def test_replay_after_checkpoint_and_more_commits(self):
        log = WriteAheadLog()
        log.checkpoint({"a": 1})
        log.append(w.BEGIN, T1)
        log.append(w.UPDATE, T1, B, 2)
        log.append(w.COMMIT, T1)
        log.force()
        assert replay(log.durable_records()) == {"a": 1, "b": 2}


class TestInDoubt:
    def test_prepared_without_outcome_is_in_doubt(self):
        log = WriteAheadLog()
        log.append(w.BEGIN, T1)
        log.append(w.UPDATE, T1, A, 1)
        log.append(w.PREPARE, T1)
        log.force()
        assert in_doubt(log.durable_records()) == [T1]

    def test_committed_prepare_not_in_doubt(self):
        log = WriteAheadLog()
        log.append(w.PREPARE, T1)
        log.append(w.COMMIT, T1)
        log.force()
        assert in_doubt(log.durable_records()) == []

    def test_aborted_prepare_not_in_doubt(self):
        log = WriteAheadLog()
        log.append(w.PREPARE, T1)
        log.append(w.ABORT, T1)
        log.force()
        assert in_doubt(log.durable_records()) == []

    def test_json_serialization_of_records(self):
        log = WriteAheadLog()
        record = log.append(w.UPDATE, T1, A, {"x": 1})
        text = record.to_json()
        assert '"UPDATE"' in text and '"a"' in text


class TestDiskMirror:
    def test_forced_records_mirrored_to_disk(self, tmp_path):
        import json

        path = tmp_path / "wal.jsonl"
        log = WriteAheadLog(mirror_path=str(path))
        log.append(w.BEGIN, T1)
        log.append(w.UPDATE, T1, A, "v1")
        log.append(w.COMMIT, T1)
        log.force()
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 3
        kinds = [json.loads(line)["kind"] for line in lines]
        assert kinds == [w.BEGIN, w.UPDATE, w.COMMIT]

    def test_unforced_records_not_mirrored(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        log = WriteAheadLog(mirror_path=str(path))
        log.append(w.BEGIN, T1)
        assert not path.exists() or path.read_text() == ""

    def test_mirror_appends_across_forces(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        log = WriteAheadLog(mirror_path=str(path))
        log.append(w.BEGIN, T1)
        log.force()
        log.append(w.COMMIT, T1)
        log.force()
        log.force()  # idempotent: nothing new to write
        assert len(path.read_text().strip().splitlines()) == 2

    def test_persistent_handle_reused_across_forces(self, tmp_path):
        """Regression: the mirror used to reopen + fsync the file on every
        force; it must now write through one persistent handle."""
        path = tmp_path / "wal.jsonl"
        log = WriteAheadLog(mirror_path=str(path))
        log.append(w.BEGIN, T1)
        log.force()
        handle = log._mirror_fh
        assert handle is not None
        log.append(w.COMMIT, T1)
        log.force()
        assert log._mirror_fh is handle
        log.close()
        assert log._mirror_fh is None


class TestGroupCommit:
    """WAL group commit: simulated durability per force, one physical sync
    per barrier (docs/PROTOCOLS.md §11)."""

    def _mirror_lines(self, path):
        return path.read_text().strip().splitlines() if path.exists() else []

    def test_force_advances_durability_without_sync(self, tmp_path):
        from repro.core.instrument import IOPATH_STATS

        path = tmp_path / "wal.jsonl"
        log = WriteAheadLog(mirror_path=str(path), group_commit=True)
        IOPATH_STATS.reset()
        for _ in range(5):
            log.append(w.BEGIN, T1)
            log.force()
        assert log.durable_length == 5  # durability contract unchanged
        assert IOPATH_STATS.wal_syncs == 0  # ...but no physical sync yet
        assert len(self._mirror_lines(path)) == 5  # rows are written (buffered)
        assert log.sync() is True
        assert IOPATH_STATS.wal_syncs == 1  # five forces, one fsync
        assert log.sync() is False  # barrier is idempotent

    def test_auto_sync_at_group_max(self):
        from repro.core.instrument import IOPATH_STATS

        log = WriteAheadLog(group_commit=True, group_max=3)
        IOPATH_STATS.reset()
        for _ in range(7):
            log.append(w.BEGIN, T1)
            log.force()
        # windows of 3: syncs fire at forces 3 and 6, force 7 stays pending
        assert IOPATH_STATS.wal_syncs == 2
        assert log.sync() is True

    def test_mirror_equals_durable_prefix_after_crash(self, tmp_path):
        """The regression the group-commit window must not introduce: after
        lose_unforced() the mirror file holds exactly the records up to
        _forced_upto — coalesced-but-unsynced rows included, volatile tail
        excluded."""
        import json

        path = tmp_path / "wal.jsonl"
        log = WriteAheadLog(mirror_path=str(path), group_commit=True)
        log.append(w.BEGIN, T1)
        log.append(w.COMMIT, T1)
        log.force()
        log.append(w.BEGIN, T2)
        log.force()
        log.append(w.UPDATE, T2, A, "volatile")  # never forced
        log.lose_unforced()
        lines = self._mirror_lines(path)
        assert len(lines) == log.durable_length == 3
        assert [json.loads(l)["lsn"] for l in lines] == [
            r.lsn for r in log.durable_records()
        ]

    def test_mirror_equals_durable_prefix_after_torn_force(self, tmp_path):
        """Torn force during a coalescing window: all-but-last pending
        records become durable and the mirror agrees exactly."""
        import json

        path = tmp_path / "wal.jsonl"
        log = WriteAheadLog(mirror_path=str(path), group_commit=True)
        log.append(w.BEGIN, T1)
        log.force()  # pending sync from an earlier force
        log.append(w.UPDATE, T1, A, "v1")
        log.append(w.COMMIT, T1)
        made_durable = log.torn_force()
        assert made_durable == 1  # UPDATE survives, COMMIT is torn
        log.lose_unforced()
        lines = self._mirror_lines(path)
        assert len(lines) == log.durable_length == 2
        assert [json.loads(l)["lsn"] for l in lines] == [
            r.lsn for r in log.durable_records()
        ]

    def test_torn_force_with_nothing_pending_still_drains_window(self, tmp_path):
        from repro.core.instrument import IOPATH_STATS

        path = tmp_path / "wal.jsonl"
        log = WriteAheadLog(mirror_path=str(path), group_commit=True)
        log.append(w.BEGIN, T1)
        log.force()
        IOPATH_STATS.reset()
        log.append(w.COMMIT, T1)  # exactly one pending record: torn away
        assert log.torn_force() == 0
        assert IOPATH_STATS.wal_syncs == 1  # earlier force's row hit disk
        assert len(self._mirror_lines(path)) == 1

    def test_checkpoint_drains_window(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        log = WriteAheadLog(mirror_path=str(path), group_commit=True)
        log.append(w.BEGIN, T1)
        log.append(w.COMMIT, T1)
        log.force()
        log.checkpoint({"a": 1})
        assert log._pending_syncs == 0

    def test_store_sync_delegates_to_wal(self):
        from repro.core.instrument import IOPATH_STATS
        from repro.txn.store import ObjectStore

        store = ObjectStore("gc", group_commit=True)
        IOPATH_STATS.reset()
        store.wal.append(w.BEGIN, T1)
        store.wal.force()
        assert IOPATH_STATS.wal_syncs == 0
        assert store.sync() is True
        assert IOPATH_STATS.wal_syncs == 1


class TestCheckpointUnderGroupCommit:
    """``checkpoint()`` is a durability barrier: every row pending from the
    coalescing window must be physically synced before (or together with)
    the CHECKPOINT record, and the truncation must preserve LSN-addressable
    replay (docs/PROTOCOLS.md §11 + §12: replication ships by LSN across
    checkpoint truncation)."""

    def _lines(self, path):
        return path.read_text().strip().splitlines() if path.exists() else []

    def test_pending_rows_synced_with_checkpoint(self, tmp_path):
        from repro.core.instrument import IOPATH_STATS

        path = tmp_path / "wal.jsonl"
        log = WriteAheadLog(mirror_path=str(path), group_commit=True)
        IOPATH_STATS.reset()
        for _ in range(3):  # three forces, zero fsyncs: the window is open
            log.append(w.BEGIN, T1)
            log.append(w.COMMIT, T1)
            log.force()
        assert IOPATH_STATS.wal_syncs == 0
        log.checkpoint({"a": 1})
        # the barrier drained the window: every earlier row plus the
        # CHECKPOINT itself is on disk and fsynced
        assert log._pending_syncs == 0
        assert IOPATH_STATS.wal_syncs >= 1
        mirrored = self._lines(path)
        assert len(mirrored) == 7  # 6 pre-checkpoint rows + CHECKPOINT
        assert '"CHECKPOINT"' in mirrored[-1]

    def test_crash_after_checkpoint_replays_snapshot(self):
        log = WriteAheadLog(group_commit=True)
        log.append(w.BEGIN, T1)
        log.append(w.UPDATE, T1, A, 1)
        log.append(w.COMMIT, T1)
        log.force()
        log.checkpoint({"a": 1})
        log.append(w.BEGIN, T2)  # volatile tail, torn away by the crash
        log.lose_unforced()
        assert replay(log.durable_records()) == {"a": 1}
        assert log._pending_syncs == 0  # crash path drained the window

    def test_lsns_stable_across_truncation(self):
        log = WriteAheadLog(group_commit=True)
        for _ in range(4):
            log.append(w.BEGIN, T1)
            log.append(w.COMMIT, T1)
            log.force()
        before = log.last_durable_lsn
        assert log.first_retained_lsn == 1
        log.checkpoint({"x": 1})
        # truncation discards superseded records but never renumbers: the
        # checkpoint record carries the next LSN and becomes the log's root
        assert log.first_retained_lsn == before + 1
        assert log.last_durable_lsn == before + 1
        log.append(w.BEGIN, T2)
        log.append(w.COMMIT, T2)
        log.force()
        assert log.last_durable_lsn == before + 3

    def test_reset_restarts_numbering_and_drains(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        log = WriteAheadLog(mirror_path=str(path), group_commit=True)
        log.append(w.BEGIN, T1)
        log.append(w.COMMIT, T1)
        log.force()
        log.reset()
        assert log._pending_syncs == 0  # pending rows hit disk before the wipe
        assert len(log) == 0
        assert log.durable_length == 0
        assert log.first_retained_lsn == 0
        assert log.last_durable_lsn == 0
        record = log.append(w.BEGIN, T2)
        assert record.lsn == 1  # a resynced standby restarts local numbering
