"""Integration tests: every behavioural path of the paper's three example
applications (§5.1-§5.3), run on the local engine."""

import pytest

from repro.core.selection import EventKind
from repro.engine import LocalEngine, WorkflowStatus
from repro.workloads import paper_order, paper_service_impact, paper_trip


class TestServiceImpact:
    """§5.1 / Fig. 6 — network management."""

    def run(self, **kwargs):
        script = paper_service_impact.build()
        registry = paper_service_impact.default_registry(**kwargs)
        return LocalEngine(registry).run(
            script, inputs={"alarmsSource": "alarm-feed"}
        )

    def test_resolved_path(self):
        result = self.run()
        assert result.completed
        assert result.outcome == "resolved"
        assert "rerouted" in result.value("resolutionReport")

    def test_not_resolved_path(self):
        result = self.run(resolvable=False)
        assert result.outcome == "notResolved"

    def test_failure_at_each_stage(self):
        for stage in ("correlate", "analyse", "resolve"):
            result = self.run(fail_stage=stage)
            assert result.outcome == "serviceImpactApplicationFailure", stage

    def test_pipeline_ordering(self):
        result = self.run()
        order = result.log.started_order()
        prefix = "serviceImpactApplication"
        assert order.index(f"{prefix}/alarmCorrelator") < order.index(
            f"{prefix}/serviceImpactAnalysis"
        )
        assert order.index(f"{prefix}/serviceImpactAnalysis") < order.index(
            f"{prefix}/serviceImpactResolution"
        )

    def test_unguarded_source_consumes_impact_reports(self):
        # `serviceImpactReports of task serviceImpactAnalysis` has no guard
        result = self.run()
        resolution = result.log.first(
            "serviceImpactApplication/serviceImpactResolution", EventKind.INPUT
        )
        value = resolution.event.objects["serviceImpactReports"].value
        assert "impacted-services" in value

    def test_fault_data_flows_through(self):
        result = self.run(fault="fiber-cut")
        assert "fiber-cut" in result.value("resolutionReport")


class TestOrderProcessing:
    """§5.2 / Fig. 7 — electronic commerce."""

    def run(self, **kwargs):
        script = paper_order.build()
        registry = paper_order.default_registry(**kwargs)
        return LocalEngine(registry).run(script, inputs={"order": "order-7"})

    def test_happy_path(self):
        result = self.run()
        assert result.outcome == "orderCompleted"
        assert result.value("dispatchNote") == "note:stock:order-7"

    def test_cancelled_when_not_authorised(self):
        assert self.run(authorise=False).outcome == "orderCancelled"

    def test_cancelled_when_out_of_stock(self):
        assert self.run(in_stock=False).outcome == "orderCancelled"

    def test_cancelled_when_dispatch_aborts(self):
        result = self.run(dispatch_ok=False)
        assert result.outcome == "orderCancelled"
        # dispatch's failure is an abort outcome (atomic task, Fig. 7 box)
        aborts = result.log.of_kind(EventKind.ABORT)
        assert any(e.producer_path.endswith("dispatch") for e in aborts)

    def test_auth_and_stock_run_before_dispatch(self):
        result = self.run()
        log = result.log
        root = "processOrderApplication"
        assert log.happened_before(
            (f"{root}/paymentAuthorisation", EventKind.OUTCOME),
            (f"{root}/dispatch", EventKind.INPUT),
        )
        assert log.happened_before(
            (f"{root}/checkStock", EventKind.OUTCOME),
            (f"{root}/dispatch", EventKind.INPUT),
        )

    def test_capture_only_after_dispatch(self):
        result = self.run()
        root = "processOrderApplication"
        assert result.log.happened_before(
            (f"{root}/dispatch", EventKind.OUTCOME),
            (f"{root}/paymentCapture", EventKind.INPUT),
        )

    def test_no_capture_when_cancelled(self):
        result = self.run(in_stock=False)
        capture = result.log.for_task("processOrderApplication/paymentCapture")
        assert all(e.event.kind is not EventKind.INPUT for e in capture)


class TestBusinessTrip:
    """§5.3 / Figs. 8-9 — travel booking with loop, mark and compensation."""

    def run(self, user="alice", **kwargs):
        script = paper_trip.build()
        registry = paper_trip.default_registry(**kwargs)
        return LocalEngine(registry).run(script, inputs={"user": user})

    def test_happy_path_arranges_trip(self):
        result = self.run()
        assert result.outcome == "tripArranged"
        assert "plane" in result.value("tickets")

    def test_mark_toPay_released(self):
        # Fig. 8: the cost escapes early through the compound's mark output
        result = self.run()
        assert [name for name, _ in result.marks] == ["toPay"]
        __, objects = result.marks[0]
        assert objects["cost"].value == 420.0

    def test_cheapest_is_not_chosen_list_order_is(self):
        # §4.3: the FIRST listed available alternative wins, so airline two's
        # 420 quote beats airline three's cheaper 380 (airline one: no quote)
        result = self.run()
        assert result.marks[0][1]["cost"].value == 420.0

    def test_no_flight_fails_trip(self):
        result = self.run(airline_quotes=(None, None, None))
        assert result.outcome == "tripFailed"

    def test_flight_reservation_failure_fails_trip(self):
        result = self.run(flight_ok=False)
        assert result.outcome == "tripFailed"

    def test_hotel_retry_via_repeat_outcome(self):
        result = self.run(hotel_attempts_needed=2, hotel_max_tries=5)
        assert result.outcome == "tripArranged"
        hr = "tripReservation/businessReservation/hotelReservation"
        repeats = [e for e in result.log.for_task(hr) if e.event.kind is EventKind.REPEAT]
        assert len(repeats) == 2

    def test_compensation_cancels_flight_then_br_retries(self):
        result = self.run(
            hotel_rounds_until_success=2, hotel_attempts_needed=1, hotel_max_tries=3
        )
        assert result.outcome == "tripArranged"
        fc = "tripReservation/businessReservation/flightCancellation"
        cancelled = [
            e for e in result.log.entries
            if e.producer_path == fc and e.event.kind is EventKind.OUTCOME
        ]
        assert len(cancelled) == 1  # first round's flight was compensated
        br = "tripReservation/businessReservation"
        br_repeats = [
            e for e in result.log.for_task(br) if e.event.kind is EventKind.REPEAT
        ]
        assert len(br_repeats) == 1  # BR looped exactly once

    def test_first_airline_with_quote_wins(self):
        result = self.run(airline_quotes=(300.0, 420.0, 380.0))
        assert result.marks[0][1]["cost"].value == 300.0

    def test_over_budget_quotes_rejected(self):
        result = self.run(airline_quotes=(900.0, 880.0, 950.0), max_price=500.0)
        assert result.outcome == "tripFailed"

    def test_parallel_airline_queries_all_start_when_needed(self):
        # only the third airline has a quote, so all three queries must run
        result = self.run(airline_quotes=(None, None, 380.0))
        cfr = "tripReservation/businessReservation/checkFlightReservation"
        started = result.log.started_order()
        for airline in ("queryAirlineOne", "queryAirlineTwo", "queryAirlineThree"):
            assert f"{cfr}/{airline}" in started
        assert result.marks[0][1]["cost"].value == 380.0

    def test_compound_abandons_remaining_queries_once_satisfied(self):
        # the local engine runs queries one at a time; once airline two's
        # quote enables `flightFound`, the compound terminates and airline
        # three is never started (it would be, under the distributed engine's
        # genuinely parallel dispatch)
        result = self.run(airline_quotes=(None, 420.0, 380.0))
        cfr = "tripReservation/businessReservation/checkFlightReservation"
        started = result.log.started_order()
        assert f"{cfr}/queryAirlineTwo" in started
        assert f"{cfr}/queryAirlineThree" not in started


class TestScriptsAreValid:
    def test_all_paper_scripts_compile(self):
        paper_order.build()
        paper_service_impact.build()
        paper_trip.build()

    def test_all_paper_scripts_roundtrip(self):
        from repro.lang import compile_script, format_script

        for module in (paper_order, paper_service_impact, paper_trip):
            script = module.build()
            again = compile_script(format_script(script))
            assert again.tasks == script.tasks
