"""Property-based tests of engine invariants under adversarial
implementations: random scripts whose task implementations randomly succeed,
abort, repeat or crash."""

import string

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import ScriptBuilder, from_input, from_output
from repro.core.selection import EventKind
from repro.core.states import TaskState
from repro.engine import (
    ImplementationRegistry,
    LocalEngine,
    WorkflowStatus,
    abort,
    outcome,
    repeat,
)

settings.register_profile(
    "repro-engine", deadline=None, suppress_health_check=[HealthCheck.too_slow]
)
settings.load_profile("repro-engine")


def adversarial_script(n: int):
    """Chain of n tasks whose class has every output kind."""
    b = ScriptBuilder()
    b.object_class("Data")
    (
        b.taskclass("Wild")
        .input_set("main", inp="Data")
        .outcome("ok", out="Data")
        .abort_outcome("bad")
        .repeat_outcome("again")
    )
    b.taskclass("Root").input_set("main", inp="Data").outcome(
        "done", out="Data"
    ).outcome("failedPath")
    c = b.compound("wf", "Root")
    source = from_input("wf", "main", "inp")
    for index in range(n):
        name = f"t{index + 1}"
        c.task(name, "Wild").implementation(code=f"wild{index + 1}", retries="1").input(
            "main", "inp", source
        ).up()
        source = from_output(name, "ok", "out")
    c.output("done").object("out", from_output(f"t{n}", "ok", "out")).up()
    failed = c.output("failedPath")
    for index in range(n):
        failed.notify(from_output(f"t{index + 1}", "bad"))
    failed.up()
    c.up()
    return b.build()


# behaviour alphabet per task, consumed per execution attempt
behaviours = st.lists(
    st.sampled_from(["ok", "bad", "again", "crash"]), min_size=1, max_size=4
)


def make_registry(n: int, plans):
    registry = ImplementationRegistry()
    for index in range(n):
        plan = plans[index % len(plans)]

        def impl(ctx, plan=plan):
            step = min(ctx.repeats + (ctx.attempt - 1), len(plan) - 1)
            action = plan[step]
            if action == "ok":
                return outcome("ok", out=f"{ctx.value('inp')}.")
            if action == "bad":
                return abort("bad")
            if action == "again" and ctx.repeats < 3:
                return repeat("again")
            if action == "crash":
                raise RuntimeError("chaos")
            return outcome("ok", out=f"{ctx.value('inp')}.")

        registry.register(f"wild{index + 1}", impl)
    return registry


@given(st.integers(1, 5), st.lists(behaviours, min_size=1, max_size=5))
def test_engine_always_terminates_cleanly(n, plans):
    """No input makes the engine hang, crash or corrupt the life-cycle."""
    script = adversarial_script(n)
    registry = make_registry(n, plans)
    result = LocalEngine(registry, max_repeats=10, max_steps=5_000).run(
        script, inputs={"inp": "s"}
    )
    assert result.status in (
        WorkflowStatus.COMPLETED,
        WorkflowStatus.ABORTED,
        WorkflowStatus.FAILED,
        WorkflowStatus.STALLED,
    )
    # `failedPath` fires iff some task aborted; `done` iff the last task ok'd
    if result.outcome == "done":
        assert result.value("out", "").startswith("s")


@given(st.integers(1, 5), st.lists(behaviours, min_size=1, max_size=5))
def test_no_task_runs_before_its_inputs(n, plans):
    """Every INPUT event of task t{k} must follow t{k-1}'s ok outcome."""
    script = adversarial_script(n)
    registry = make_registry(n, plans)
    result = LocalEngine(registry, max_repeats=10, max_steps=5_000).run(
        script, inputs={"inp": "s"}
    )
    last_ok_seq = {}
    for entry in result.log.entries:
        if entry.event.kind is EventKind.OUTCOME and entry.event.name == "ok":
            last_ok_seq[entry.producer_path] = entry.seq
        if (
            entry.event.kind is EventKind.INPUT
            and entry.producer_path.startswith("wf/t")
        ):
            index = int(entry.producer_path.split("t")[-1])
            if index > 1:
                producer = f"wf/t{index - 1}"
                assert producer in last_ok_seq
                assert last_ok_seq[producer] < entry.seq


@given(st.integers(1, 4), st.lists(behaviours, min_size=1, max_size=4))
def test_terminal_machines_stay_terminal(n, plans):
    script = adversarial_script(n)
    registry = make_registry(n, plans)
    engine = LocalEngine(registry, max_repeats=10, max_steps=5_000)
    wf = engine.workflow(script)
    wf.start({"inp": "s"})
    wf.run_to_completion()
    for node in wf.tree.walk():
        if node.machine.terminal:
            assert node.machine.outcome is not None
        if node.machine.state is TaskState.COMPLETED:
            assert node.taskclass.output(node.machine.outcome) is not None


@given(st.integers(1, 4), st.lists(behaviours, min_size=1, max_size=4))
def test_abort_events_never_carry_into_unguarded_consumers(n, plans):
    """Abort outcomes signal 'no effects': their events must never be the
    chosen source of an unguarded binding (there are none here, so simply:
    an aborted task's `out` value never reaches the compound output)."""
    script = adversarial_script(n)
    registry = make_registry(n, plans)
    result = LocalEngine(registry, max_repeats=10, max_steps=5_000).run(
        script, inputs={"inp": "s"}
    )
    if result.outcome == "failedPath":
        assert result.objects == {}  # the failure outcome carries nothing
