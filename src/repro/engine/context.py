"""Task implementation interface: contexts and results.

A task implementation is any Python callable ``fn(ctx: TaskContext) ->
TaskResult``.  The context exposes the chosen input set and its object
references; the result names one of the task class's outputs and carries its
output objects.  Mid-execution the implementation may emit *mark* outputs
through :meth:`TaskContext.mark` (early release of results, §4.2).

Helpers :func:`outcome`, :func:`abort`, :func:`repeat` build results tersely::

    def dispatch(ctx):
        order = ctx.inputs["stockInfo"].value
        if not order:
            return abort("dispatchFailed")
        return outcome("dispatchCompleted", dispatch=f"note-{order}")

Plain values in ``objects`` are wrapped into :class:`ObjectRef`\\ s with the
class the task class declares for that slot; pre-built refs pass through.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Mapping, Optional

from ..core.errors import ExecutionError, TaskTimeout
from ..core.schema import OutputKind, TaskClass
from ..core.values import ObjectRef


@dataclass(frozen=True)
class TaskResult:
    """Terminal (or repeat) result of one task execution."""

    kind: OutputKind
    name: str
    objects: Dict[str, Any] = field(default_factory=dict)


def outcome(name: str, **objects: Any) -> TaskResult:
    """Terminate in the named (non-abort) outcome."""
    return TaskResult(OutputKind.OUTCOME, name, objects)


def abort(name: str, **objects: Any) -> TaskResult:
    """Terminate in the named abort outcome (no effects happened)."""
    return TaskResult(OutputKind.ABORT, name, objects)


def repeat(name: str, **objects: Any) -> TaskResult:
    """Finish this execution through the named repeat outcome; the task
    re-enters WAIT and may execute again."""
    return TaskResult(OutputKind.REPEAT, name, objects)


@dataclass(frozen=True)
class PendingExternal:
    """Returned by an implementation that cannot finish synchronously.

    The paper's applications "may contain long periods of inactivity, often
    due to the constituent applications requiring user interactions" (§1).
    Returning ``pending()`` parks the task in EXECUTING; some external agent
    later supplies the outcome through ``complete_external`` (local engine)
    or the execution service's ``complete_task`` operation — which journals
    it like any other result, so parked tasks survive crashes.
    """

    note: str = ""


def pending(note: str = "") -> PendingExternal:
    """Park this task until an external completion arrives."""
    return PendingExternal(note)


class TaskContext:
    """Everything an implementation may see and do while executing.

    Attributes:
        task_path: instance path, e.g. ``"processOrder/dispatch"``.
        input_set: name of the input set that satisfied the task.
        inputs: chosen input object references, keyed by declared name.
        properties: the ``implementation`` clause's keyword/value pairs.
        attempt: 1-based execution attempt (system retries increment it).
        repeats: how many repeat outcomes this instance has taken so far.
        timeout: wall-clock budget (seconds) from the ``"timeout"``
            implementation property, or None for no limit.  Enforcement is
            cooperative: long-running implementations call
            :meth:`check_timeout` (or consult :meth:`remaining`) at safe
            points; the raised :class:`~repro.core.errors.TaskTimeout` then
            follows the normal failure path (system retries, then abort).
    """

    def __init__(
        self,
        task_path: str,
        taskclass: TaskClass,
        input_set: str,
        inputs: Mapping[str, ObjectRef],
        properties: Mapping[str, str],
        attempt: int = 1,
        repeats: int = 0,
        mark_sink: Optional[Callable[[str, Dict[str, ObjectRef]], None]] = None,
        timeout: Optional[float] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.task_path = task_path
        self.taskclass = taskclass
        self.input_set = input_set
        self.inputs = dict(inputs)
        self.properties = dict(properties)
        self.attempt = attempt
        self.repeats = repeats
        self._mark_sink = mark_sink
        self.timeout = timeout
        self._clock = clock
        self.started_at = clock()

    def value(self, name: str, default: Any = None) -> Any:
        """Unwrap one input object's payload."""
        ref = self.inputs.get(name)
        return default if ref is None else ref.value

    # -- wall-clock budget --------------------------------------------------------

    def elapsed(self) -> float:
        """Seconds since this execution attempt began."""
        return self._clock() - self.started_at

    def remaining(self) -> Optional[float]:
        """Seconds left in the task's wall-clock budget (None: unlimited)."""
        if self.timeout is None:
            return None
        return self.timeout - self.elapsed()

    @property
    def timed_out(self) -> bool:
        remaining = self.remaining()
        return remaining is not None and remaining <= 0.0

    def check_timeout(self) -> None:
        """Raise :class:`TaskTimeout` if the wall-clock budget is exhausted."""
        if self.timed_out:
            raise TaskTimeout(
                f"{self.task_path}: exceeded task timeout {self.timeout}s "
                f"(elapsed {self.elapsed():.3f}s)"
            )

    def mark(self, name: str, **objects: Any) -> None:
        """Emit a mark output now (early release).  The engine publishes it
        immediately, so downstream tasks may start before this one finishes."""
        if self._mark_sink is None:
            raise ExecutionError(
                f"{self.task_path}: mark outputs are not available in this context"
            )
        spec = self.taskclass.output(name)
        if spec is None or spec.kind is not OutputKind.MARK:
            raise ExecutionError(
                f"{self.task_path}: {name!r} is not a mark output of "
                f"{self.taskclass.name!r}"
            )
        self._mark_sink(name, coerce_objects(self.taskclass, name, objects, self.task_path))


def coerce_objects(
    taskclass: TaskClass, output_name: str, objects: Mapping[str, Any], task_path: str
) -> Dict[str, ObjectRef]:
    """Check and wrap an implementation's output objects against the class.

    Every object the output declares must be supplied; extras are rejected;
    plain values are wrapped in refs of the declared class.  This is the
    run-time enforcement of the task-class signature.
    """
    spec = taskclass.output(output_name)
    if spec is None:
        raise ExecutionError(
            f"{task_path}: taskclass {taskclass.name!r} has no output {output_name!r}"
        )
    declared = {o.name: o for o in spec.objects}
    missing = sorted(set(declared) - set(objects))
    if missing:
        raise ExecutionError(
            f"{task_path}: output {output_name!r} is missing objects {missing}"
        )
    extra = sorted(set(objects) - set(declared))
    if extra:
        raise ExecutionError(
            f"{task_path}: output {output_name!r} got undeclared objects {extra}"
        )
    coerced: Dict[str, ObjectRef] = {}
    for name, value in objects.items():
        decl = declared[name]
        if isinstance(value, ObjectRef):
            if value.class_name != decl.class_name:
                raise ExecutionError(
                    f"{task_path}: object {name!r} of output {output_name!r} has "
                    f"class {value.class_name!r}, expected {decl.class_name!r}"
                )
            coerced[name] = value.with_provenance(task_path, output_name)
        else:
            coerced[name] = ObjectRef(decl.class_name, value, task_path, output_name)
    return coerced
