"""Human-readable renderings of workflow event logs.

Complements the Fig. 4 administrative tooling: operators inspect what a
running (or finished) instance did.  Two views are provided: a flat
chronological trace and a per-task summary table.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Optional, Sequence

from ..core.selection import EventKind
from .events import EventLog

_GLYPH = {
    EventKind.INPUT: "▶",
    EventKind.OUTCOME: "✔",
    EventKind.ABORT: "✘",
    EventKind.MARK: "◆",
    EventKind.REPEAT: "↻",
}


def render_trace(
    log: EventLog,
    indent_by_depth: bool = True,
    resilience: Optional[Sequence[object]] = None,
) -> str:
    """Chronological trace, one line per event, indented by nesting depth.

    ``resilience`` optionally appends the dispatch layer's decision events
    (:class:`repro.resilience.ResilienceEvent`) — redispatches, hedges,
    breaker transitions — below the workflow's own trace, so one rendering
    shows *what* the instance did and *how* the system kept it moving.
    """
    lines: List[str] = []
    for entry in log.entries:
        depth = entry.producer_path.count("/") if indent_by_depth else 0
        objects = ""
        if entry.event.objects:
            pairs = ", ".join(
                f"{name}={ref.value!r}" for name, ref in entry.event.objects.items()
            )
            objects = f"  ({pairs})"
        glyph = _GLYPH.get(entry.event.kind, "?")
        name = entry.producer_path.rsplit("/", 1)[-1]
        lines.append(
            f"#{entry.seq:<4} {'  ' * depth}{glyph} {name}"
            f" {entry.event.kind.value}:{entry.event.name}{objects}"
        )
    if resilience:
        from ..resilience.events import render_resilience

        rendered = render_resilience(list(resilience))
        if rendered:
            lines.append("")
            lines.append(rendered)
    return "\n".join(lines)


def render_summary(log: EventLog) -> str:
    """Per-task summary: starts, repeats, marks, final output."""
    tasks: "OrderedDict[str, Dict[str, object]]" = OrderedDict()
    for entry in log.entries:
        info = tasks.setdefault(
            entry.producer_path,
            {"starts": 0, "repeats": 0, "marks": 0, "final": "-"},
        )
        kind = entry.event.kind
        if kind is EventKind.INPUT:
            info["starts"] = int(info["starts"]) + 1
        elif kind is EventKind.REPEAT:
            info["repeats"] = int(info["repeats"]) + 1
        elif kind is EventKind.MARK:
            info["marks"] = int(info["marks"]) + 1
        elif kind in (EventKind.OUTCOME, EventKind.ABORT):
            marker = "" if kind is EventKind.OUTCOME else " (abort)"
            info["final"] = f"{entry.event.name}{marker}"
    width = max((len(path) for path in tasks), default=4)
    lines = [
        f"{'task'.ljust(width)}  starts  repeats  marks  final",
        f"{'-' * width}  ------  -------  -----  -----",
    ]
    for path, info in tasks.items():
        lines.append(
            f"{path.ljust(width)}  {str(info['starts']).ljust(6)}  "
            f"{str(info['repeats']).ljust(7)}  {str(info['marks']).ljust(5)}  "
            f"{info['final']}"
        )
    return "\n".join(lines)
