"""Implementation registry: late run-time binding of task implementations.

The language deliberately keeps implementations *outside* the script: a task
instance names its implementation abstractly (``"code" is "refDispatch"``) and
the binding to executable code happens at run time (§3) — which is how the
paper supports online upgrade without editing scripts.

A code name may resolve to:

* a Python callable ``fn(ctx) -> TaskResult`` (the "executable" case), or
* another *script* — a compound task used as the implementation (§4.4); the
  engine runs it as a sub-workflow and maps its outcome back.

Registries nest: instantiation-time bindings (the paper binds
``refAlarmCorrelator`` etc. per instantiation) are expressed as a child
registry overriding its parent.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Union

from ..core.errors import BindingError
from ..core.schema import Script
from .context import TaskContext, TaskResult

TaskCallable = Callable[[TaskContext], TaskResult]


@dataclass(frozen=True)
class ScriptBinding:
    """A compound task (in ``script``, named ``task_name``) used as code."""

    script: Script
    task_name: str


Binding = Union[TaskCallable, ScriptBinding]


class ImplementationRegistry:
    """Name -> implementation mapping with parent fallback."""

    def __init__(self, parent: Optional["ImplementationRegistry"] = None) -> None:
        self._bindings: Dict[str, Binding] = {}
        self._parent = parent

    # -- registration ------------------------------------------------------------

    def register(self, code_name: str, fn: TaskCallable) -> "ImplementationRegistry":
        """Bind a callable.  Re-binding an existing name is allowed — that is
        precisely the online-upgrade mechanism."""
        if not callable(fn):
            raise BindingError(f"{code_name!r}: implementation must be callable")
        self._bindings[code_name] = fn
        return self

    def register_script(
        self, code_name: str, script: Script, task_name: Optional[str] = None
    ) -> "ImplementationRegistry":
        """Bind a script; ``task_name`` defaults to the script's only
        top-level task."""
        if task_name is None:
            if len(script.tasks) != 1:
                raise BindingError(
                    f"{code_name!r}: script has {len(script.tasks)} top-level "
                    f"tasks; specify task_name"
                )
            task_name = next(iter(script.tasks))
        if task_name not in script.tasks:
            raise BindingError(f"{code_name!r}: script has no task {task_name!r}")
        self._bindings[code_name] = ScriptBinding(script, task_name)
        return self

    def implementation(self, code_name: str) -> Callable[[TaskCallable], TaskCallable]:
        """Decorator form: ``@registry.implementation("refDispatch")``."""

        def decorate(fn: TaskCallable) -> TaskCallable:
            self.register(code_name, fn)
            return fn

        return decorate

    # -- resolution ----------------------------------------------------------------

    def resolve(self, code_name: Optional[str]) -> Binding:
        if code_name is None:
            raise BindingError("task has no 'code' implementation property")
        registry: Optional[ImplementationRegistry] = self
        while registry is not None:
            if code_name in registry._bindings:
                return registry._bindings[code_name]
            registry = registry._parent
        raise BindingError(f"no implementation registered for code {code_name!r}")

    def knows(self, code_name: str) -> bool:
        try:
            self.resolve(code_name)
            return True
        except BindingError:
            return False

    def child(self, **bindings: TaskCallable) -> "ImplementationRegistry":
        """Instantiation-time overrides layered over this registry."""
        reg = ImplementationRegistry(parent=self)
        for name, fn in bindings.items():
            reg.register(name, fn)
        return reg
