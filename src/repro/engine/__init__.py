"""Workflow execution engines (DESIGN.md subsystem S7).

``LocalEngine`` runs instances deterministically in-process;
``ConcurrentEngine`` executes independent ready tasks in parallel on a
bounded thread pool (:mod:`repro.engine.concurrent`); the distributed
engine lives behind :mod:`repro.services` and adds persistence, transactions
and crash recovery on the same semantics (:mod:`repro.engine.instance`).
"""

from .concurrent import ConcurrentEngine, ConcurrentWorkflow, enabled_pairs
from .context import (
    PendingExternal,
    TaskContext,
    TaskResult,
    abort,
    coerce_objects,
    outcome,
    pending,
    repeat,
)
from .trace import render_summary, render_trace
from .events import EventLog, LogEntry, WorkflowResult, WorkflowStatus
from .instance import CompoundNode, InstanceTree, TaskNode
from .local import LocalEngine, LocalWorkflow
from .plan import ExecutionPlan, PlanTracker, TaskTable, compile_plan
from .registry import ImplementationRegistry, ScriptBinding, TaskCallable

__all__ = [
    "CompoundNode",
    "ConcurrentEngine",
    "ConcurrentWorkflow",
    "EventLog",
    "ExecutionPlan",
    "ImplementationRegistry",
    "InstanceTree",
    "LocalEngine",
    "LocalWorkflow",
    "LogEntry",
    "PendingExternal",
    "PlanTracker",
    "ScriptBinding",
    "TaskCallable",
    "TaskContext",
    "TaskNode",
    "TaskResult",
    "TaskTable",
    "WorkflowResult",
    "WorkflowStatus",
    "abort",
    "coerce_objects",
    "compile_plan",
    "enabled_pairs",
    "outcome",
    "pending",
    "render_summary",
    "render_trace",
    "repeat",
]
