"""Local (in-process) workflow engine.

Runs a workflow instance deterministically in one process: ready tasks
execute synchronously, one at a time, in priority/FIFO order.  This engine is
the reference implementation of the language semantics — fast enough for
property-based testing and used by most examples.  Two other engines build
on the same :class:`~repro.engine.instance.InstanceTree` semantics: the
concurrent engine (:mod:`repro.engine.concurrent`) dispatches all
independent ready tasks in parallel on a thread pool, and the distributed
execution service (:mod:`repro.services`) adds the paper's system-level
fault tolerance.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional

from ..core.errors import BindingError, ExecutionError
from ..core.schema import Script
from ..core.selection import EventKind
from ..core.values import ObjectRef
from .context import PendingExternal, TaskContext, TaskResult, coerce_objects
from .events import EventLog, WorkflowResult, WorkflowStatus
from .instance import InstanceTree, TaskNode
from .plan import ExecutionPlan
from .registry import ImplementationRegistry, ScriptBinding


def task_timeout(node: TaskNode) -> Optional[float]:
    """Wall-clock budget from the task's ``"timeout"`` implementation
    property (seconds); None when absent, unparsable or non-positive."""
    raw = node.decl.implementation.get("timeout")
    if raw is None:
        return None
    try:
        value = float(raw)
    except (TypeError, ValueError):
        return None
    return value if value > 0 else None


class LocalWorkflow:
    """One running instance under step-by-step local control.

    Useful when a test or administrative application needs to interleave
    execution with reconfiguration or forced aborts::

        wf = LocalWorkflow(script, "order", registry)
        wf.start({"order": "o-1"})
        wf.step()                      # run exactly one task
        wf.reconfigure(new_script)     # atomic change (§3)
        wf.run_to_completion()
    """

    def __init__(
        self,
        script: Script,
        root_task: str,
        registry: ImplementationRegistry,
        default_retries: int = 3,
        max_repeats: int = 1000,
        max_steps: int = 100_000,
        use_plan: bool = True,
        plan: Optional[ExecutionPlan] = None,
        sanitizer=None,
    ) -> None:
        self.registry = registry
        self.max_steps = max_steps
        self.steps = 0
        self.use_plan = use_plan
        self.sanitizer = sanitizer
        self.tree = InstanceTree(
            script,
            root_task,
            default_retries=default_retries,
            max_repeats=max_repeats,
            use_plan=use_plan,
            plan=plan,
        )
        if sanitizer is not None:
            self.tree.attach_sanitizer(sanitizer)

    # -- control ---------------------------------------------------------------

    def start(self, inputs: Optional[Mapping[str, object]] = None, input_set: str = "main") -> None:
        self.tree.start(input_set, inputs or {})

    def step(self) -> bool:
        """Execute one ready task.  Returns False when nothing was ready.

        The step budget is checked *before* dequeueing: when it is already
        exhausted and work remains, the tree fails without losing the ready
        node (it stays queued, visible to diagnostics and reconfiguration).
        """
        if self._budget_remaining() <= 0:
            if self.tree.has_work():
                self.tree.fail(f"exceeded max_steps={self.max_steps}")
            return False
        node = self.tree.take_ready()
        if node is None:
            return False
        self._charge_steps(1)
        self._execute(node)
        return True

    def run_to_completion(self) -> WorkflowResult:
        while self.tree.status is WorkflowStatus.RUNNING:
            if not self.step():
                break
        return self.result()

    # -- step budget -----------------------------------------------------------

    def _budget_remaining(self) -> int:
        return self.max_steps - self.steps

    def _charge_steps(self, count: int) -> None:
        self.steps += count

    # -- queries ------------------------------------------------------------------

    @property
    def status(self) -> WorkflowStatus:
        if self.tree.status is WorkflowStatus.RUNNING and not self.tree.has_work():
            return WorkflowStatus.STALLED
        return self.tree.status

    @property
    def log(self) -> EventLog:
        return self.tree.log

    def result(self) -> WorkflowResult:
        root = self.tree.root
        status = self.tree.status
        if status is WorkflowStatus.RUNNING:
            status = WorkflowStatus.STALLED
        objects: Dict[str, ObjectRef] = {}
        marks = []
        for entry in self.tree.log.entries:
            if entry.producer_path != root.path:
                continue
            if entry.event.kind in (EventKind.OUTCOME, EventKind.ABORT):
                objects = dict(entry.event.objects)
            elif entry.event.kind is EventKind.MARK:
                marks.append((entry.event.name, dict(entry.event.objects)))
        return WorkflowResult(
            status=status,
            outcome=root.machine.outcome,
            objects=objects,
            marks=marks,
            log=self.tree.log,
            stats={
                "steps": self.steps,
                "events": len(self.tree.log),
                "nodes": self.tree.nodes_created,
            },
            error=self.tree.error,
        )

    # -- administration --------------------------------------------------------------

    def reconfigure(self, new_script: Script) -> None:
        self.tree.reconfigure(new_script)

    def force_abort(self, path: str, abort_name: Optional[str] = None) -> None:
        self.tree.force_abort(path, abort_name)

    def complete_external(self, path: str, output_name: str, **objects) -> None:
        """Supply the outcome of a task parked by :func:`repro.engine.pending`.

        The output may be any kind the task class declares (outcome, abort
        outcome, repeat outcome); objects are coerced against its signature.
        """
        node = self.tree.node_at(path)
        spec = node.taskclass.output(output_name)
        if spec is None:
            raise ExecutionError(
                f"{path}: taskclass {node.taskclass.name!r} has no output "
                f"{output_name!r}"
            )
        from ..core.states import TaskState

        if node.machine.state is not TaskState.EXECUTING:
            raise ExecutionError(
                f"{path}: not executing (state={node.machine.state.value})"
            )
        self.tree.apply_result(node, TaskResult(spec.kind, output_name, objects))

    # -- execution ----------------------------------------------------------------------

    def _execute(self, node: TaskNode) -> None:
        begun = self.tree.try_begin_execution(node)
        if begun is None:
            return  # stale: an ancestor terminated or repeated meanwhile
        input_set, inputs = begun
        code = node.decl.implementation.code
        try:
            binding = self.registry.resolve(code)
        except BindingError as exc:
            self.tree.apply_failure(node, exc)
            return
        if isinstance(binding, ScriptBinding):
            self._execute_subworkflow(node, binding, input_set, inputs)
            return
        context = TaskContext(
            task_path=node.path,
            taskclass=node.taskclass,
            input_set=input_set,
            inputs=inputs,
            properties=node.decl.implementation.as_dict(),
            attempt=node.attempt + 1,
            repeats=node.machine.repeats,
            mark_sink=lambda name, objects: self.tree.apply_mark(node, name, objects),
            timeout=task_timeout(node),
        )
        try:
            result = binding(context)
        except Exception as exc:  # implementation failure -> system handling
            self.tree.apply_failure(node, exc)
            return
        if isinstance(result, PendingExternal):
            # parked: stays EXECUTING until complete_external() supplies the
            # outcome (long-running / interactive tasks, §1)
            return
        if not isinstance(result, TaskResult):
            self.tree.apply_failure(
                node,
                ExecutionError(
                    f"{node.path}: implementation returned {type(result).__name__}, "
                    f"expected TaskResult"
                ),
            )
            return
        try:
            self.tree.apply_result(node, result)
        except ExecutionError as exc:
            # the result did not match the task class signature
            self.tree.apply_failure(node, exc)

    def _execute_subworkflow(
        self,
        node: TaskNode,
        binding: ScriptBinding,
        input_set: str,
        inputs: Mapping[str, ObjectRef],
    ) -> None:
        """Run a script bound as this task's implementation (§4.4: a compound
        task used as code).  The sub-root's outputs become this task's.

        The child draws on the *remaining* global step budget, and every
        step it consumes is charged back to this workflow — nested script
        bindings therefore share one budget instead of multiplying it.
        """
        remaining = self._budget_remaining()
        if remaining <= 0:
            self.tree.fail(f"exceeded max_steps={self.max_steps}")
            return
        sub = LocalWorkflow(
            binding.script,
            binding.task_name,
            self.registry,
            max_steps=remaining,
            use_plan=self.use_plan,
        )
        try:
            sub.start({name: ref for name, ref in inputs.items()}, input_set)
            sub_result = sub.run_to_completion()
        except Exception as exc:
            self.tree.apply_failure(node, exc)
            return
        finally:
            self._charge_steps(sub.steps)
        for mark_name, mark_objects in sub_result.marks:
            coerced = coerce_objects(
                node.taskclass,
                mark_name,
                {k: v.value for k, v in mark_objects.items()},
                node.path,
            )
            self.tree.apply_mark(node, mark_name, coerced)
        if sub_result.status is WorkflowStatus.COMPLETED:
            spec = node.taskclass.output(sub_result.outcome)
            if spec is None:
                self.tree.apply_failure(
                    node,
                    ExecutionError(
                        f"{node.path}: sub-workflow finished in {sub_result.outcome!r}, "
                        f"which {node.taskclass.name!r} does not declare"
                    ),
                )
                return
            self.tree.apply_result(
                node,
                TaskResult(
                    spec.kind,
                    sub_result.outcome,
                    {k: v.value for k, v in sub_result.objects.items()},
                ),
            )
        elif sub_result.status is WorkflowStatus.ABORTED:
            spec = node.taskclass.output(sub_result.outcome)
            if spec is None:
                self.tree.apply_failure(
                    node,
                    ExecutionError(
                        f"{node.path}: sub-workflow aborted in {sub_result.outcome!r}, "
                        f"which {node.taskclass.name!r} does not declare"
                    ),
                )
                return
            self.tree.apply_result(
                node,
                TaskResult(
                    spec.kind,
                    sub_result.outcome,
                    {k: v.value for k, v in sub_result.objects.items()},
                ),
            )
        else:
            self.tree.apply_failure(
                node,
                ExecutionError(
                    f"{node.path}: sub-workflow ended {sub_result.status.value}: "
                    f"{sub_result.error}"
                ),
            )


class LocalEngine:
    """Convenience facade: run whole workflows in one call."""

    def __init__(
        self,
        registry: Optional[ImplementationRegistry] = None,
        default_retries: int = 3,
        max_repeats: int = 1000,
        max_steps: int = 100_000,
        use_plan: bool = True,
        sanitizer=None,
    ) -> None:
        self.registry = registry or ImplementationRegistry()
        self.default_retries = default_retries
        self.max_repeats = max_repeats
        self.max_steps = max_steps
        self.use_plan = use_plan
        self.sanitizer = sanitizer

    def workflow(
        self,
        script: Script,
        root_task: Optional[str] = None,
        bindings: Optional[Mapping[str, object]] = None,
    ) -> LocalWorkflow:
        if root_task is None:
            if len(script.tasks) != 1:
                raise ExecutionError(
                    f"script has {len(script.tasks)} top-level tasks; name one"
                )
            root_task = next(iter(script.tasks))
        registry = self.registry.child(**(bindings or {}))
        return self._build(script, root_task, registry)

    def _build(
        self,
        script: Script,
        root_task: str,
        registry: ImplementationRegistry,
    ) -> LocalWorkflow:
        """Workflow construction hook; subclasses swap the workflow class."""
        return LocalWorkflow(
            script,
            root_task,
            registry,
            default_retries=self.default_retries,
            max_repeats=self.max_repeats,
            max_steps=self.max_steps,
            use_plan=self.use_plan,
            sanitizer=self.sanitizer,
        )

    def run(
        self,
        script: Script,
        root_task: Optional[str] = None,
        inputs: Optional[Mapping[str, object]] = None,
        input_set: str = "main",
        bindings: Optional[Mapping[str, object]] = None,
    ) -> WorkflowResult:
        wf = self.workflow(script, root_task, bindings)
        wf.start(inputs, input_set)
        return wf.run_to_completion()
