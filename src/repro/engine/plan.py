"""Plan compilation: dense incremental execution structures for the engine.

The interpretive hot path re-derives everything from the declaration graph
on every published event: each event is offered to every interested
constituent, and each offer re-scans the full alternative-source lists of
every input binding (``core.selection``).  Correct, but O(scope) work per
publish.  Following the DistAlgo incrementalization playbook ("From Clarity
to Efficiency for Distributed Algorithms"), this module compiles a parsed
:class:`~repro.core.schema.Script` once into:

* **integer task ids** — every task instance in the tree gets a dense id;
* **bitmask satisfaction** — each awaited object/notification binding of a
  task becomes one *slot* with a bit position; an input set is a precomputed
  mask, and readiness is ``state & mask == mask`` instead of a dict scan;
* **a firing table** — for every event a scope can ever carry (statically
  over-approximated as ``(producer, kind, name)`` keys), exactly which
  consumer slots it can advance, with the source-alternative indices
  preserved so §4.3's earliest-listed-alternative rule still applies.

:class:`PlanTracker` is the drop-in runtime replacement for
:class:`~repro.core.selection.TaskInputTracker`: ``offer`` is a single dict
lookup plus work proportional to the slots the event actually feeds.
:class:`~repro.engine.instance.InstanceTree` consults the same tables to
route events only to affected nodes (``_pump``) and to skip output watchers
an event cannot satisfy.

Equivalence guarantee
---------------------

The compiled path is *observably identical* to the interpretive path — same
events, same order, same chosen input sets and values — because:

* the static vocabulary over-approximates the events a producer can publish
  (declared outputs plus declared/bound input sets), and every runtime
  event's object keys are a subset of the statically recorded ones, so a
  source is pruned from the firing table only when it could never match;
* within a slot, candidates fire in declared source order with the same
  earliest-alternative/refresh semantics as
  :class:`~repro.core.selection.InputObjectTracker`;
* consumers are visited in child-declaration order, exactly the order the
  interpretive routing index offers events in; consumers skipped by the
  firing table would have been no-op offers.

The liveness fixpoint (:func:`repro.analysis.liveness.check_liveness`) is
reused to *annotate* firing entries as statically live or dead in the plan
dump (``repro plan``).  Dead entries are **not** pruned from the runtime
tables: liveness is a may-analysis of the script alone, while the engine
also admits out-of-band events (``force_abort`` can publish an abort the
fixpoint never saw), so pruning would be unsound.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from ..core.schema import (
    AnyTaskDecl,
    CompoundTaskDecl,
    GuardKind,
    InputObjectBinding,
    InputSetBinding,
    OutputBinding,
    Script,
    Source,
    TaskClass,
)
from ..core.selection import (
    HOTPATH_STATS,
    EventKind,
    WorkflowEvent,
    event_kind_for,
)
from ..core.values import ObjectRef

# One firing-table key: (scope-local producer name, event kind, event name).
EventKey = Tuple[str, EventKind, str]

_OUTPUT_EVENT_KINDS = (
    EventKind.OUTCOME,
    EventKind.ABORT,
    EventKind.MARK,
    EventKind.REPEAT,
)


# ---------------------------------------------------------------------------
# Static event vocabulary
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class PlannedEvent:
    """One event a producer may publish, with an over-approximation of the
    object names it can carry."""

    kind: EventKind
    name: str
    objects: FrozenSet[str]


def producible_events(
    taskclass: TaskClass,
    decl: Optional[AnyTaskDecl],
    include_outputs: bool,
) -> Tuple[PlannedEvent, ...]:
    """Every event this producer can publish into a scope.

    Object names union the class-declared ones with the decl-bound ones:
    runtime INPUT events carry the chosen binding's names, compound outputs
    emitted through a mapping carry the mapping's names, while coerced and
    force-aborted outputs carry the spec's — the union covers them all.
    """
    events: List[PlannedEvent] = []
    sets: Dict[str, Set[str]] = {}
    order: List[str] = []
    for spec in taskclass.input_sets:
        sets[spec.name] = {o.name for o in spec.objects}
        order.append(spec.name)
    if decl is not None:
        for binding in decl.input_sets:
            if binding.name not in sets:
                sets[binding.name] = set()
                order.append(binding.name)
            sets[binding.name].update(ob.name for ob in binding.objects)
    if not sets:
        # a class without input sets starts via the anonymous "" set
        sets[""] = set()
        order.append("")
    for name in order:
        events.append(PlannedEvent(EventKind.INPUT, name, frozenset(sets[name])))
    if include_outputs:
        for out in taskclass.outputs:
            names = {o.name for o in out.objects}
            if isinstance(decl, CompoundTaskDecl):
                binding = decl.output(out.name)
                if binding is not None:
                    names.update(ob.name for ob in binding.objects)
            events.append(
                PlannedEvent(event_kind_for(out.kind), out.name, frozenset(names))
            )
    return tuple(events)


Vocabulary = Dict[str, Tuple[PlannedEvent, ...]]


def compound_scope_vocabulary(
    owner_decl: CompoundTaskDecl,
    owner_class: TaskClass,
    children: Sequence[Tuple[str, TaskClass, AnyTaskDecl]],
) -> Vocabulary:
    """Producers visible inside a compound: the owner (its INPUT events are
    republished into the inner scope) and every constituent (full events)."""
    vocab: Vocabulary = {
        owner_decl.name: producible_events(owner_class, owner_decl, False)
    }
    for local, taskclass, decl in children:
        vocab[local] = producible_events(taskclass, decl, True)
    return vocab


def root_scope_vocabulary(decl: AnyTaskDecl, taskclass: TaskClass) -> Vocabulary:
    """The root scope carries only the root task's own events."""
    return {decl.name: producible_events(taskclass, decl, True)}


def augment_vocabulary(
    vocab: Vocabulary, events: Iterable[WorkflowEvent]
) -> Vocabulary:
    """Extend a static vocabulary with events a scope has *actually* carried.

    Recompiling against live scopes (dynamic reconfiguration, grown tasks)
    must not lose matches against history: declarations may have changed
    since an event was published, so its shape can fall outside the current
    static vocabulary.  Folding the history back in keeps the compiled
    tables sound for replay as well as for the future."""
    for event in events:
        known = vocab.get(event.producer, ())
        objects = frozenset(event.objects)
        covered = any(
            pe.kind is event.kind and pe.name == event.name and objects <= pe.objects
            for pe in known
        )
        if not covered:
            merged: Dict[Tuple[EventKind, str], Set[str]] = {}
            rest: List[PlannedEvent] = []
            for pe in known:
                if pe.kind is event.kind and pe.name == event.name:
                    merged.setdefault((pe.kind, pe.name), set()).update(pe.objects)
                else:
                    rest.append(pe)
            merged.setdefault((event.kind, event.name), set()).update(objects)
            rest.extend(
                PlannedEvent(kind, name, frozenset(names))
                for (kind, name), names in merged.items()
            )
            vocab[event.producer] = tuple(rest)
    return vocab


def _static_match(source: Source, event: PlannedEvent) -> bool:
    """Mirror of :func:`repro.core.selection.source_matches` over the static
    vocabulary (producer equality is the vocabulary key)."""
    if source.guard_kind is GuardKind.OUTPUT:
        if event.kind not in _OUTPUT_EVENT_KINDS or event.name != source.guard_name:
            return False
    elif source.guard_kind is GuardKind.INPUT:
        if event.kind is not EventKind.INPUT or event.name != source.guard_name:
            return False
    else:  # ANY: unguarded
        if event.kind not in (EventKind.OUTCOME, EventKind.MARK):
            return False
    if source.object_name is not None and source.object_name not in event.objects:
        return False
    return True


# ---------------------------------------------------------------------------
# Compiled per-task tables
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SlotInfo:
    """Static description of one slot (for dumps and diagnostics)."""

    index: int
    set_name: str
    name: str  # object binding name; "<notify>" for notifications
    notification: bool


@dataclass(frozen=True)
class SetPlan:
    """One input set: its satisfaction mask and value layout."""

    name: str
    mask: int
    # (object binding name, slot index) in declaration order — dict insertion
    # order of the chosen values must match the interpretive tracker's
    layout: Tuple[Tuple[str, int], ...]


# One firing group: (slot index, slot bit, is_notification, candidates),
# candidates = ((source index, object name or None), ...) in source order.
FiringGroup = Tuple[int, int, bool, Tuple[Tuple[int, Optional[str]], ...]]


@dataclass(frozen=True)
class TaskTable:
    """The compiled input machinery of one task instance."""

    sets: Tuple[SetPlan, ...]
    slots: Tuple[SlotInfo, ...]
    entries: Mapping[EventKey, Tuple[FiringGroup, ...]]

    @property
    def slot_count(self) -> int:
        return len(self.slots)


def effective_input_sets(
    decl: AnyTaskDecl, taskclass: TaskClass
) -> Tuple[InputSetBinding, ...]:
    """The bindings a node's tracker is actually built from (mirror of
    ``TaskNode._new_tracker``): a class without input sets starts
    unconditionally via the anonymous always-satisfied set."""
    bindings = tuple(decl.input_sets)
    if not bindings and not taskclass.input_sets:
        return (InputSetBinding(""),)
    return bindings


def compile_bindings(
    input_sets: Sequence[InputSetBinding], vocabulary: Vocabulary
) -> TaskTable:
    """Compile input-set bindings against a scope vocabulary."""
    sets: List[SetPlan] = []
    slots: List[SlotInfo] = []
    raw: Dict[EventKey, Dict[int, List[Tuple[int, Optional[str]]]]] = {}

    def add_slot(set_name: str, slot_name: str, notification: bool, sources) -> int:
        index = len(slots)
        slots.append(SlotInfo(index, set_name, slot_name, notification))
        for src_index, source in enumerate(sources):
            for event in vocabulary.get(source.task_name, ()):
                if _static_match(source, event):
                    key = (source.task_name, event.kind, event.name)
                    raw.setdefault(key, {}).setdefault(index, []).append(
                        (src_index, source.object_name)
                    )
        return index

    for binding in input_sets:
        mask = 0
        layout: List[Tuple[str, int]] = []
        for ob in binding.objects:
            index = add_slot(binding.name, ob.name, False, ob.sources)
            mask |= 1 << index
            layout.append((ob.name, index))
        for notif in binding.notifications:
            index = add_slot(binding.name, "<notify>", True, notif.sources)
            mask |= 1 << index
        sets.append(SetPlan(binding.name, mask, tuple(layout)))

    entries: Dict[EventKey, Tuple[FiringGroup, ...]] = {}
    for key, per_slot in raw.items():
        groups: List[FiringGroup] = []
        for index in sorted(per_slot):
            candidates = tuple(sorted(per_slot[index], key=lambda c: c[0]))
            groups.append((index, 1 << index, slots[index].notification, candidates))
        entries[key] = tuple(groups)
    return TaskTable(tuple(sets), tuple(slots), entries)


def compile_node_table(
    decl: AnyTaskDecl, taskclass: TaskClass, vocabulary: Vocabulary
) -> TaskTable:
    return compile_bindings(effective_input_sets(decl, taskclass), vocabulary)


def watch_binding(binding: OutputBinding) -> InputSetBinding:
    """A compound output mapping satisfies exactly like an input set (the
    same view ``engine.instance`` takes for the interpretive watchers)."""
    return InputSetBinding(
        name=binding.name,
        objects=tuple(InputObjectBinding(b.name, b.sources) for b in binding.objects),
        notifications=binding.notifications,
    )


def compile_watch_tables(
    decl: CompoundTaskDecl, vocabulary: Vocabulary
) -> Tuple[TaskTable, ...]:
    return tuple(
        compile_bindings((watch_binding(b),), vocabulary) for b in decl.outputs
    )


# ---------------------------------------------------------------------------
# Runtime tracker over a compiled table
# ---------------------------------------------------------------------------


class PlanTracker:
    """Drop-in replacement for :class:`~repro.core.selection.TaskInputTracker`
    driven by a compiled :class:`TaskTable`.

    ``offer`` does one dict lookup and then touches only the slots the event
    can actually advance; satisfaction is a bitmask compare.  Semantics match
    the interpretive trackers exactly: earliest-listed source alternative
    wins (a refresh of the current best replaces the value), notifications
    latch on first match, and ``ready`` returns the first declared satisfied
    set with values laid out in declaration order.
    """

    __slots__ = ("table", "mask", "values", "best")

    def __init__(self, table: TaskTable) -> None:
        self.table = table
        self.mask = 0
        self.values: List[Optional[ObjectRef]] = [None] * table.slot_count
        self.best: List[Optional[int]] = [None] * table.slot_count

    def offer(self, event: WorkflowEvent) -> bool:
        groups = self.table.entries.get((event.producer, event.kind, event.name))
        if not groups:
            return False
        changed = False
        objects = event.objects
        for index, bit, notification, candidates in groups:
            if notification:
                HOTPATH_STATS.source_evals += 1
                if not self.mask & bit:
                    self.mask |= bit
                    changed = True
                continue
            best = self.best[index]
            for src_index, object_name in candidates:
                if best is not None and src_index > best:
                    break
                HOTPATH_STATS.source_evals += 1
                value = objects.get(object_name)
                if value is None:
                    continue  # statically possible, absent at runtime
                if best != src_index or value != self.values[index]:
                    changed = True
                self.best[index] = src_index
                self.values[index] = value
                self.mask |= bit
                break
        return changed

    def offer_all(self, events: Iterable[WorkflowEvent]) -> bool:
        changed = False
        for event in events:
            changed |= self.offer(event)
        return changed

    def ready(self) -> Optional[Tuple[str, Dict[str, ObjectRef]]]:
        mask = self.mask
        for set_plan in self.table.sets:
            required = set_plan.mask
            if mask & required == required:
                values = self.values
                return set_plan.name, {
                    name: values[index] for name, index in set_plan.layout
                }
        return None


# ---------------------------------------------------------------------------
# Whole-script plans (static artifact: CLI dump, table cache)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class PlannedTask:
    """One task instance in the compiled plan."""

    task_id: int
    path: str
    scope: str  # enclosing scope path ("" = root scope)
    local: str
    taskclass: str
    compound: bool
    table: TaskTable
    startable: Tuple[str, ...]  # liveness: input sets this task can start via


@dataclass
class ExecutionPlan:
    """A whole script compiled: tasks with ids, per-task tables, per-compound
    watcher tables, and the derived per-scope firing tables."""

    script: Script
    root_tasks: Tuple[str, ...]
    tasks: Tuple[PlannedTask, ...]
    tables: Dict[str, TaskTable]
    watch_tables: Dict[str, Tuple[TaskTable, ...]]
    # scope path -> producible liveness facts there (empty if not analysed)
    facts: Dict[str, Set[Tuple[str, str, str]]] = field(default_factory=dict)

    def task_at(self, path: str) -> Optional[PlannedTask]:
        for task in self.tasks:
            if task.path == path:
                return task
        return None

    # -- derived firing view ------------------------------------------------

    def _key_live(self, scope: str, key: EventKey) -> bool:
        producer, kind, name = key
        fact_kind = "input" if kind is EventKind.INPUT else "output"
        return (producer, fact_kind, name) in self.facts.get(scope, set())

    def firing_table(self, scope: str) -> Dict[EventKey, List[Tuple[str, FiringGroup]]]:
        """Scope firing table: event key -> [(consumer label, group), ...].
        Consumers are constituents (by local name) and output mappings
        (labelled ``output:<name>``)."""
        firing: Dict[EventKey, List[Tuple[str, FiringGroup]]] = {}
        for task in self.tasks:
            if task.scope != scope:
                continue
            for key, groups in task.table.entries.items():
                for group in groups:
                    firing.setdefault(key, []).append((task.local, group))
        for watch in self.watch_tables.get(scope, ()):  # scope == compound path
            for key, groups in watch.entries.items():
                for group in groups:
                    label = f"output:{watch.sets[0].name}"
                    firing.setdefault(key, []).append((label, group))
        return firing

    def stats(self) -> Dict[str, int]:
        scopes = {task.scope for task in self.tasks} | set(self.watch_tables)
        keys = dead = 0
        for scope in scopes:
            for key in self.firing_table(scope):
                keys += 1
                if self.facts and not self._key_live(scope, key):
                    dead += 1
        return {
            "tasks": len(self.tasks),
            "slots": sum(t.table.slot_count for t in self.tasks)
            + sum(
                w.slot_count
                for tables in self.watch_tables.values()
                for w in tables
            ),
            "firing_keys": keys,
            "dead_keys": dead,
        }

    # -- dumps --------------------------------------------------------------

    def as_dict(self) -> Dict[str, object]:
        def dump_table(table: TaskTable) -> Dict[str, object]:
            return {
                "sets": [
                    {
                        "name": s.name,
                        "mask": s.mask,
                        "layout": [list(pair) for pair in s.layout],
                    }
                    for s in table.sets
                ],
                "slots": [
                    {
                        "index": s.index,
                        "set": s.set_name,
                        "name": s.name,
                        "notification": s.notification,
                    }
                    for s in table.slots
                ],
                "entries": [
                    {
                        "producer": key[0],
                        "kind": key[1].value,
                        "event": key[2],
                        "groups": [
                            {
                                "slot": slot,
                                "bit": bit,
                                "notification": notif,
                                "candidates": [list(c) for c in candidates],
                            }
                            for slot, bit, notif, candidates in groups
                        ],
                    }
                    for key, groups in sorted(
                        table.entries.items(),
                        key=lambda kv: (kv[0][0], kv[0][1].value, kv[0][2]),
                    )
                ],
            }

        return {
            "roots": list(self.root_tasks),
            "stats": self.stats(),
            "tasks": [
                {
                    "id": task.task_id,
                    "path": task.path,
                    "scope": task.scope,
                    "taskclass": task.taskclass,
                    "compound": task.compound,
                    "startable": list(task.startable),
                    "table": dump_table(task.table),
                }
                for task in self.tasks
            ],
            "watchers": {
                path: [dump_table(t) for t in tables]
                for path, tables in sorted(self.watch_tables.items())
            },
        }

    def render(self) -> str:
        stats = self.stats()
        lines = [
            f"execution plan: {stats['tasks']} tasks, {stats['slots']} slots, "
            f"{stats['firing_keys']} firing keys"
            + (
                f" ({stats['dead_keys']} statically dead)"
                if self.facts
                else " (liveness not analysed)"
            )
        ]
        for task in self.tasks:
            kind = "compound" if task.compound else "simple"
            startable = (
                " startable via {" + ", ".join(sorted(task.startable)) + "}"
                if task.startable
                else (" DEAD (never ready)" if self.facts else "")
            )
            lines.append(
                f"task {task.task_id}: {task.path} [{task.taskclass}, {kind}]{startable}"
            )
            for set_plan in task.table.sets:
                lines.append(
                    f"  set {set_plan.name!r} mask={set_plan.mask:#b}"
                )
                for slot in task.table.slots:
                    if slot.set_name != set_plan.name:
                        continue
                    what = "notification" if slot.notification else f"object {slot.name!r}"
                    lines.append(f"    slot {slot.index} bit {1 << slot.index:#b}: {what}")
        scopes = sorted({task.scope for task in self.tasks} | set(self.watch_tables))
        for scope in scopes:
            firing = self.firing_table(scope)
            if not firing:
                continue
            lines.append(f"scope {scope or '<root>'}:")
            for key in sorted(
                firing, key=lambda k: (k[0], k[1].value, k[2])
            ):
                producer, kind, name = key
                targets = []
                for consumer, (slot, _bit, notif, candidates) in firing[key]:
                    srcs = ",".join(str(c[0]) for c in candidates)
                    mark = "~" if notif else ""
                    targets.append(f"{consumer}{mark}[slot {slot} src {srcs}]")
                dead = ""
                if self.facts and not self._key_live(scope, key):
                    dead = "  DEAD"
                lines.append(
                    f"  ({producer}, {kind.value}, {name}) -> "
                    + "; ".join(targets)
                    + dead
                )
        return "\n".join(lines)


def compile_plan(
    script: Script,
    root_task: Optional[str] = None,
    input_set: str = "main",
    analyze: bool = True,
) -> ExecutionPlan:
    """Compile ``script`` into an :class:`ExecutionPlan`.

    With ``analyze=True`` the liveness fixpoint annotates which firing
    entries are statically producible (dump/diagnostic only — see module
    docstring for why dead entries stay in the runtime tables).
    """
    if root_task is None:
        roots = list(script.tasks)
    else:
        if root_task not in script.tasks:
            raise KeyError(f"script has no top-level task {root_task!r}")
        roots = [root_task]

    facts: Dict[str, Set[Tuple[str, str, str]]] = {}
    startable: Dict[str, Set[str]] = {}
    if analyze:
        from ..analysis.liveness import check_liveness

        liveness = check_liveness(script, root_task=root_task, input_set=input_set)
        facts = liveness.facts
        startable = liveness.startable

    tasks: List[PlannedTask] = []
    tables: Dict[str, TaskTable] = {}
    watch_tables: Dict[str, Tuple[TaskTable, ...]] = {}

    def visit(decl: AnyTaskDecl, path: str, scope: str, vocab: Vocabulary) -> None:
        taskclass = script.taskclass_of(decl)
        table = compile_node_table(decl, taskclass, vocab)
        tables[path] = table
        tasks.append(
            PlannedTask(
                task_id=len(tasks),
                path=path,
                scope=scope,
                local=decl.name,
                taskclass=taskclass.name,
                compound=isinstance(decl, CompoundTaskDecl),
                table=table,
                startable=tuple(sorted(startable.get(path, ()))),
            )
        )
        if isinstance(decl, CompoundTaskDecl):
            inner = compound_scope_vocabulary(
                decl,
                taskclass,
                [(t.name, script.taskclass_of(t), t) for t in decl.tasks],
            )
            watch_tables[path] = compile_watch_tables(decl, inner)
            for child in decl.tasks:
                visit(child, f"{path}/{child.name}", path, inner)

    for name in roots:
        decl = script.tasks[name]
        visit(decl, name, "", root_scope_vocabulary(decl, script.taskclass_of(decl)))

    return ExecutionPlan(
        script=script,
        root_tasks=tuple(roots),
        tasks=tuple(tasks),
        tables=tables,
        watch_tables=watch_tables,
        facts=facts,
    )
