"""Workflow instance semantics: the live tree of task instances.

This module turns a validated :class:`~repro.core.schema.Script` into a tree
of live task instances and drives all engine-independent semantics:

* input satisfaction and deterministic selection (via ``core.selection``),
* the Fig. 3 life-cycle (via ``core.states``),
* event propagation through nested compound scopes,
* compound output mapping, including mark, repeat and abort outputs,
* system-level automatic retries of failed tasks (§3),
* dynamic reconfiguration of the running instance (§3).

Engines (local or distributed) only decide *where and when* ready tasks
execute; everything else lives here, so both engines share one semantics.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Callable, Deque, Dict, List, Mapping, Optional, Tuple, Union

from ..core.errors import ExecutionError, ReconfigurationError
from ..core.schema import (
    AnyTaskDecl,
    CompoundTaskDecl,
    InputObjectBinding,
    InputSetBinding,
    NotificationBinding,
    OutputBinding,
    OutputKind,
    Script,
    TaskClass,
    TaskDecl,
)
from ..core.selection import (
    HOTPATH_STATS,
    EventKind,
    Scope,
    TaskInputTracker,
    WorkflowEvent,
    event_kind_for,
)
from ..core.states import TaskState, TaskStateMachine
from ..core.values import ObjectRef
from .context import TaskResult, coerce_objects
from .events import EventLog, WorkflowStatus
from .plan import (
    EventKey,
    ExecutionPlan,
    PlanTracker,
    TaskTable,
    augment_vocabulary,
    compile_node_table,
    compile_watch_tables,
    compound_scope_vocabulary,
    root_scope_vocabulary,
)


def _watch_binding(binding: OutputBinding) -> InputSetBinding:
    """A compound output mapping satisfies exactly like an input set: all its
    object and notification bindings must fire.  Reuse the tracker machinery
    by viewing the OutputBinding as an InputSetBinding."""
    return InputSetBinding(
        name=binding.name,
        objects=tuple(
            InputObjectBinding(b.name, b.sources) for b in binding.objects
        ),
        notifications=binding.notifications,
    )


class TaskNode:
    """One live task instance (simple)."""

    def __init__(
        self,
        decl: AnyTaskDecl,
        taskclass: TaskClass,
        path: str,
        parent: Optional["CompoundNode"],
        tree: "InstanceTree",
    ) -> None:
        self.decl = decl
        self.taskclass = taskclass
        self.path = path
        self.parent = parent
        self.tree = tree
        self.machine = TaskStateMachine(path, taskclass)
        self.outer_scope: Scope = parent.inner_scope if parent else tree.root_scope
        # compiled input table (plan mode); assigned by the enclosing scope's
        # plan recompilation (or the tree, for the root node)
        self.plan_table: Optional[TaskTable] = None
        self.tracker = self._new_tracker()
        self.alive = True
        self.queued = False
        # drained from the ready queue but not yet begun (concurrent engine):
        # blocks re-enqueueing until the executor claims or releases the node
        self.claimed = False
        self.attempt = 0           # system-retry counter
        self.chosen: Optional[Tuple[str, Dict[str, ObjectRef]]] = None
        # environment-supplied inputs (root task only): override the tracker
        self.env_inputs: Optional[Tuple[str, Dict[str, ObjectRef]]] = None

    # -- structure ---------------------------------------------------------------

    @property
    def local_name(self) -> str:
        return self.decl.name

    @property
    def is_compound(self) -> bool:
        return isinstance(self, CompoundNode)

    def ancestors_executing(self) -> bool:
        node = self.parent
        while node is not None:
            if node.machine.state is not TaskState.EXECUTING:
                return False
            node = node.parent
        return True

    def retry_limit(self) -> int:
        raw = self.decl.implementation.get("retries")
        if raw is None:
            return self.tree.default_retries
        try:
            return int(raw)
        except ValueError:
            return self.tree.default_retries

    def priority(self) -> int:
        raw = self.decl.implementation.get("priority", "0")
        try:
            return int(raw)
        except ValueError:
            return 0

    # -- input tracking ------------------------------------------------------------

    def interests(self) -> set:
        """Producer names this node's input bindings can ever match — used
        by the tree's event-routing index so an event is only offered to
        nodes that might consume it."""
        names = set()
        for binding in self.decl.input_sets:
            for obj in binding.objects:
                for source in obj.sources:
                    names.add(source.task_name)
            for notif in binding.notifications:
                for source in notif.sources:
                    names.add(source.task_name)
        return names

    def _new_tracker(self) -> Union[TaskInputTracker, PlanTracker]:
        if self.tree.use_plan and self.plan_table is not None:
            return PlanTracker(self.plan_table)
        bindings = self.decl.input_sets
        if not bindings and not self.taskclass.input_sets:
            # A task class without input sets starts unconditionally once its
            # enclosing compound is executing.
            bindings = (InputSetBinding(""),)
        return TaskInputTracker(bindings)

    def reset_inputs(self) -> None:
        """Rebuild the tracker and replay the scope history into it (used
        after repeat outcomes, system retries and reconfiguration)."""
        self.tracker = self._new_tracker()
        self.outer_scope.replay_into(self.tracker)

    def ready(self) -> Optional[Tuple[str, Dict[str, ObjectRef]]]:
        if not self.alive or self.machine.state is not TaskState.WAIT:
            return None
        if not self.ancestors_executing():
            return None
        if self.env_inputs is not None:
            return self.env_inputs
        return self.tracker.ready()

    def deactivate(self) -> None:
        self.alive = False
        # release any drain claim: a claimed node whose ancestor terminates
        # or repeats would otherwise stay claimed forever if the engine never
        # gets around to try_begin_execution (it re-checks readiness anyway)
        self.claimed = False


class CompoundNode(TaskNode):
    """One live compound task instance: children + inner scope + output map."""

    def __init__(
        self,
        decl: CompoundTaskDecl,
        taskclass: TaskClass,
        path: str,
        parent: Optional["CompoundNode"],
        tree: "InstanceTree",
    ) -> None:
        self.inner_scope = Scope(path)  # must exist before children bind to it
        super().__init__(decl, taskclass, path, parent, tree)
        self.children: List[TaskNode] = []
        self.output_watchers: List[Union[TaskInputTracker, PlanTracker]] = []
        self.emitted_outputs: set = set()
        # plan mode: firing tables for this compound's inner scope
        self.plan_routing: Dict[EventKey, Tuple[TaskNode, ...]] = {}
        self.watch_tables: Tuple[TaskTable, ...] = ()
        self.watcher_routing: Optional[Dict[EventKey, Tuple[int, ...]]] = None
        self._build_inside()

    @property
    def compound_decl(self) -> CompoundTaskDecl:
        return self.decl  # type: ignore[return-value]

    def _build_inside(self) -> None:
        self.inner_scope.owner_node = self
        self.children = [
            self.tree._make_node(child, self) for child in self.compound_decl.tasks
        ]
        self.output_watchers = [
            TaskInputTracker([_watch_binding(b)]) for b in self.compound_decl.outputs
        ]
        self.emitted_outputs = set()
        self._rebuild_routing()

    def _rebuild_routing(self) -> None:
        """Index constituents by the producers they listen to, so pump()
        offers each event only where it can matter (E13 hot path)."""
        index: Dict[str, List[TaskNode]] = {}
        for child in self.children:
            for producer in child.interests():
                index.setdefault(producer, []).append(child)
        self.routing = index
        if self.tree.use_plan:
            self._recompile_plan()

    # -- plan compilation (incrementalized hot path) -------------------------

    def _scope_vocabulary(self):
        """Static event vocabulary of this compound's inner scope, folded
        with the scope's actual history (sound under reconfiguration)."""
        vocab = compound_scope_vocabulary(
            self.compound_decl,
            self.taskclass,
            [(c.local_name, c.taskclass, c.decl) for c in self.children],
        )
        return augment_vocabulary(vocab, self.inner_scope.events)

    def _recompile_plan(self) -> None:
        """(Re)compile every child's input table, this scope's firing table
        and the output-watcher tables.  Safe to call on a live scope: WAIT
        children get a fresh tracker replayed from the scope history, which
        is observably identical to the tracker state they already held (a
        tracker is a pure fold of its scope's event history)."""
        seed = self.tree._plan_seed()
        vocab = None
        routing: Dict[EventKey, List[TaskNode]] = {}
        for child in self.children:
            table = seed.tables.get(child.path) if seed is not None else None
            if table is None:
                if vocab is None:
                    vocab = self._scope_vocabulary()
                table = compile_node_table(child.decl, child.taskclass, vocab)
            child.plan_table = table
            for key in table.entries:
                routing.setdefault(key, []).append(child)
            if child.alive and child.machine.state is TaskState.WAIT:
                child.reset_inputs()
                self.tree._enqueue_if_ready(child)
        self.plan_routing = {key: tuple(nodes) for key, nodes in routing.items()}
        watch_tables = seed.watch_tables.get(self.path) if seed is not None else None
        if watch_tables is None:
            if vocab is None:
                vocab = self._scope_vocabulary()
            watch_tables = compile_watch_tables(self.compound_decl, vocab)
        self._rebuild_watchers(watch_tables)

    def _rebuild_watchers(
        self, watch_tables: Optional[Tuple[TaskTable, ...]] = None
    ) -> None:
        """Fresh output watchers (plan or interpretive, per tree mode),
        replayed from the inner scope; emitted outputs stay emitted."""
        preserved = self.emitted_outputs
        if self.tree.use_plan:
            if watch_tables is None:
                watch_tables = compile_watch_tables(
                    self.compound_decl, self._scope_vocabulary()
                )
            self.watch_tables = watch_tables
            self.output_watchers = [PlanTracker(t) for t in watch_tables]
            wrouting: Dict[EventKey, List[int]] = {}
            for position, table in enumerate(watch_tables):
                for key in table.entries:
                    wrouting.setdefault(key, []).append(position)
            self.watcher_routing = {k: tuple(v) for k, v in wrouting.items()}
        else:
            self.output_watchers = [
                TaskInputTracker([_watch_binding(b)]) for b in self.compound_decl.outputs
            ]
        self.emitted_outputs = preserved
        for event in self.inner_scope.events:
            for watcher in self.output_watchers:
                watcher.offer(event)

    def child(self, name: str) -> Optional[TaskNode]:
        for node in self.children:
            if node.local_name == name:
                return node
        return None

    def reset_inside(self) -> None:
        """Fresh inner world after a repeat outcome: constituents restart from
        scratch with an empty inner event history."""
        for node in self.children:
            node.deactivate()
        self.inner_scope = Scope(self.path)
        self._build_inside()

    def deactivate(self) -> None:
        super().deactivate()
        for node in self.children:
            node.deactivate()


class InstanceTree:
    """A running workflow instance (engine-independent semantics).

    All state-mutating entry points (``start``, ``take_ready``,
    ``drain_ready``, ``begin_execution``, ``apply_*``, ``force_abort``,
    ``reconfigure``) serialise on one re-entrant tree lock, so engines may
    call them from several threads; task implementations always run
    *outside* the lock.  Single-threaded engines pay one uncontended
    acquire per call.
    """

    def __init__(
        self,
        script: Script,
        root_task: str,
        log: Optional[EventLog] = None,
        now: Callable[[], float] = lambda: 0.0,
        default_retries: int = 3,
        max_repeats: int = 1000,
        use_plan: bool = True,
        plan: Optional[ExecutionPlan] = None,
    ) -> None:
        if root_task not in script.tasks:
            raise ExecutionError(f"script has no top-level task {root_task!r}")
        self.script = script
        self.log = log or EventLog()
        self.now = now
        self.default_retries = default_retries
        self.max_repeats = max_repeats
        # plan mode (default): route events and track input satisfaction via
        # compiled firing tables/bitmasks; False falls back to the
        # interpretive trackers (kept for differential testing)
        self.use_plan = bool(use_plan)
        # optional precompiled table cache (must be compiled from `script`)
        self.plan = plan
        self.root_scope = Scope("")
        self.lock = threading.RLock()
        self.status = WorkflowStatus.RUNNING
        self.error: Optional[str] = None
        self._ready: Deque[TaskNode] = deque()
        self._pending: Deque[Tuple[Scope, str, WorkflowEvent]] = deque()
        self.nodes_created = 0
        self.root = self._make_node(script.tasks[root_task], None)
        if self.use_plan:
            self._compile_root_plan()

    # -- tree construction ------------------------------------------------------------

    def _plan_seed(self) -> Optional[ExecutionPlan]:
        """The precompiled table cache, valid only while it matches the live
        script object (reconfiguration swaps the script and invalidates it)."""
        if self.plan is not None and self.plan.script is self.script:
            return self.plan
        return None

    def _compile_root_plan(self) -> None:
        """Compile (or fetch from the seed plan) the root task's own input
        table — the root scope has a single consumer, the root itself."""
        root = self.root
        seed = self._plan_seed()
        table = seed.tables.get(root.path) if seed is not None else None
        if table is None:
            vocab = augment_vocabulary(
                root_scope_vocabulary(root.decl, root.taskclass),
                self.root_scope.events,
            )
            table = compile_node_table(root.decl, root.taskclass, vocab)
        root.plan_table = table
        if root.alive and root.machine.state is TaskState.WAIT:
            root.reset_inputs()

    def _make_node(self, decl: AnyTaskDecl, parent: Optional[CompoundNode]) -> TaskNode:
        taskclass = self.script.taskclass_of(decl)
        path = f"{parent.path}/{decl.name}" if parent else decl.name
        self.nodes_created += 1
        if isinstance(decl, CompoundTaskDecl):
            return CompoundNode(decl, taskclass, path, parent, self)
        return TaskNode(decl, taskclass, path, parent, self)

    def walk(self) -> List[TaskNode]:
        result: List[TaskNode] = []

        def visit(node: TaskNode) -> None:
            result.append(node)
            if isinstance(node, CompoundNode):
                for child in node.children:
                    visit(child)

        visit(self.root)
        return result

    def node_at(self, path: str) -> TaskNode:
        parts = [p for p in path.split("/") if p]
        if not parts or parts[0] != self.root.local_name:
            raise ExecutionError(f"no instance at path {path!r}")
        node: TaskNode = self.root
        for part in parts[1:]:
            if not isinstance(node, CompoundNode):
                raise ExecutionError(f"no instance at path {path!r}")
            child = node.child(part)
            if child is None:
                raise ExecutionError(f"no instance at path {path!r}")
            node = child
        return node

    # -- observation ------------------------------------------------------------------

    def attach_sanitizer(self, sanitizer) -> None:
        """Let a :class:`repro.analysis.dynamic.Sanitizer` observe this tree
        (instance-level method wrapping: the unsanitized path stays
        hook-free)."""
        sanitizer.attach_tree(self)

    # -- starting ----------------------------------------------------------------------

    def start(self, input_set: str, inputs: Mapping[str, object]) -> None:
        """Kick off the root task with environment-supplied inputs."""
        with self.lock:
            self._start(input_set, inputs)

    def _start(self, input_set: str, inputs: Mapping[str, object]) -> None:
        spec = self.root.taskclass.input_set(input_set)
        if spec is None and self.root.taskclass.input_sets:
            raise ExecutionError(
                f"root taskclass {self.root.taskclass.name!r} has no input set "
                f"{input_set!r}"
            )
        if spec is None and inputs:
            raise ExecutionError(
                f"root taskclass {self.root.taskclass.name!r} takes no inputs"
            )
        if spec is None:
            input_set = ""
        coerced: Dict[str, ObjectRef] = {}
        if spec is not None:
            declared = {o.name: o for o in spec.objects}
            missing = sorted(set(declared) - set(inputs))
            if missing:
                raise ExecutionError(f"missing root inputs: {missing}")
            for name, value in inputs.items():
                if name not in declared:
                    raise ExecutionError(f"unknown root input {name!r}")
                if isinstance(value, ObjectRef):
                    coerced[name] = value
                else:
                    coerced[name] = ObjectRef(
                        declared[name].class_name, value, "<env>", input_set
                    )
        self.root.env_inputs = (input_set, coerced)
        self._enqueue_if_ready(self.root)
        self._pump()

    def _start_node(
        self, node: TaskNode, input_set: str, inputs: Dict[str, ObjectRef]
    ) -> None:
        node.machine.start()
        node.chosen = (input_set, inputs)
        self._publish(node.outer_scope, node, EventKind.INPUT, input_set, inputs)
        if isinstance(node, CompoundNode):
            # Constituents source the compound's inputs via `if input <set>`.
            self._publish(
                node.inner_scope, node, EventKind.INPUT, input_set, inputs,
                local_name=node.local_name,
            )

    # -- event machinery ------------------------------------------------------------------

    def _publish(
        self,
        scope: Scope,
        node: TaskNode,
        kind: EventKind,
        name: str,
        objects: Mapping[str, ObjectRef],
        local_name: Optional[str] = None,
    ) -> WorkflowEvent:
        producer = local_name or node.local_name
        event = scope.publish(producer, kind, name, objects)
        HOTPATH_STATS.publishes += 1
        self.log.record(self.now(), scope.path, node.path, event)
        self._pending.append((scope, producer, event))
        return event

    def pump(self) -> None:
        """Propagate all pending events to listeners; fill the ready queue."""
        with self.lock:
            self._pump()

    def _pump(self) -> None:
        while self._pending:
            if self.status is not WorkflowStatus.RUNNING:
                self._pending.clear()
                return
            scope, _producer, event = self._pending.popleft()
            owner = self._scope_owner(scope)
            if owner is not None:
                if self.use_plan:
                    # compiled firing table: touch only consumers with a slot
                    # this exact (producer, kind, name) event can advance;
                    # consumers are in child-declaration order, the same
                    # order the interpretive index offers in (skipped ones
                    # would have been no-op offers)
                    key = (event.producer, event.kind, event.name)
                    for child in owner.plan_routing.get(key, ()):
                        if child.alive and child.machine.state is TaskState.WAIT:
                            child.tracker.offer(event)
                            self._enqueue_if_ready(child)
                else:
                    # inner-scope event: offer to interested constituents and
                    # the owner's output watchers (routing index keeps this
                    # sparse)
                    for child in list(owner.routing.get(event.producer, ())):
                        if child.alive and child.machine.state is TaskState.WAIT:
                            child.tracker.offer(event)
                            self._enqueue_if_ready(child)
                self._evaluate_outputs(owner, event)
            else:
                # root scope: only the root listens (self-references included)
                if self.root.alive and self.root.machine.state is TaskState.WAIT:
                    self.root.tracker.offer(event)
                    self._enqueue_if_ready(self.root)

    def _scope_owner(self, scope: Scope) -> Optional[CompoundNode]:
        # CompoundNodes stamp themselves onto the scopes they own.
        return getattr(scope, "owner_node", None)

    def _enqueue_if_ready(self, node: TaskNode) -> None:
        if node.queued or node.claimed:
            return
        readiness = node.ready()
        if readiness is None:
            return
        if isinstance(node, CompoundNode):
            # compounds start internally: no user code runs for them
            input_set, inputs = readiness
            self._start_node(node, input_set, inputs)
            self._scan_children(node)
        else:
            node.queued = True
            self._ready.append(node)

    def _scan_children(self, compound: CompoundNode) -> None:
        """After a compound starts, children with no (or trivially satisfied)
        dependencies become eligible without any further event."""
        for child in compound.children:
            self._enqueue_if_ready(child)

    def take_ready(self) -> Optional[TaskNode]:
        """Next simple task to execute (highest priority first, FIFO within a
        priority level).  Returns None when nothing is ready."""
        with self.lock:
            self._pump()
            # loop, not recursion: a wide fan-out whose ancestor terminated
            # mid-flight leaves thousands of stale nodes queued, and popping
            # each one recursively would blow the stack (RecursionError)
            while self._ready:
                best_index = max(
                    range(len(self._ready)),
                    key=lambda i: (self._ready[i].priority(), -i),
                )
                # deque rotation to pop an arbitrary index
                self._ready.rotate(-best_index)
                node = self._ready.popleft()
                self._ready.rotate(best_index)
                node.queued = False
                if node.ready() is None:  # stale (ancestor terminated meanwhile)
                    continue
                return node
            return None

    def drain_ready(self, limit: Optional[int] = None) -> List[TaskNode]:
        """Pop every currently-ready simple task (priority order), up to
        ``limit``.  Drained nodes are *claimed*: they stay out of the ready
        queue until an engine begins them (``try_begin_execution``), so two
        concurrent drains can never hand the same node to two executors."""
        with self.lock:
            batch: List[TaskNode] = []
            while limit is None or len(batch) < limit:
                node = self.take_ready()
                if node is None:
                    break
                node.claimed = True
                batch.append(node)
            return batch

    def peek_ready(self) -> List[TaskNode]:
        """Every simple task currently ready to execute, without dequeuing or
        claiming any of them.  This *is* the concurrent engine's enablement
        relation: ``drain_ready()`` returns exactly these nodes (claimed),
        and any two of them may run simultaneously.  The static interference
        analysis (:mod:`repro.analysis.interference`) over-approximates the
        set of pairs this method can ever return together."""
        with self.lock:
            self._pump()
            return [node for node in self._ready if node.ready() is not None]

    def has_work(self) -> bool:
        with self.lock:
            self._pump()
            return bool(self._ready) and self.status is WorkflowStatus.RUNNING

    # -- applying execution results (called by engines) ------------------------------------

    def begin_execution(self, node: TaskNode) -> Tuple[str, Dict[str, ObjectRef]]:
        """Transition a ready node into EXECUTING; returns (set, inputs)."""
        with self.lock:
            begun = self.try_begin_execution(node)
            if begun is None:
                raise ExecutionError(f"{node.path}: not ready")
            return begun

    def try_begin_execution(
        self, node: TaskNode
    ) -> Optional[Tuple[str, Dict[str, ObjectRef]]]:
        """Like :meth:`begin_execution`, but returns None when the node went
        stale between being dequeued/drained and being begun (an ancestor
        terminated or repeated in the meantime — possible under concurrent
        execution).  Always releases the node's drain claim."""
        with self.lock:
            node.claimed = False
            readiness = node.ready()
            if readiness is None:
                return None
            input_set, inputs = readiness
            self._start_node(node, input_set, inputs)
            return input_set, inputs

    def apply_mark(self, node: TaskNode, name: str, objects: Dict[str, ObjectRef]) -> None:
        with self.lock:
            if not node.alive:
                return
            node.machine.mark(name)
            self._publish(node.outer_scope, node, EventKind.MARK, name, objects)
            self._pump()

    def apply_result(self, node: TaskNode, result: TaskResult) -> None:
        """Apply a terminal/repeat result produced by an implementation."""
        with self.lock:
            if not node.alive or node.machine.state is not TaskState.EXECUTING:
                return  # stale result (e.g. enclosing compound repeated/terminated)
            objects = coerce_objects(node.taskclass, result.name, result.objects, node.path)
            if result.kind is OutputKind.OUTCOME:
                node.machine.complete(result.name)
                self._publish(node.outer_scope, node, EventKind.OUTCOME, result.name, objects)
            elif result.kind is OutputKind.ABORT:
                node.machine.abort(result.name)
                self._publish(node.outer_scope, node, EventKind.ABORT, result.name, objects)
            elif result.kind is OutputKind.REPEAT:
                if node.machine.repeats + 1 > self.max_repeats:
                    self.fail(f"{node.path}: exceeded max_repeats={self.max_repeats}")
                    return
                node.machine.repeat(result.name)
                self._publish(node.outer_scope, node, EventKind.REPEAT, result.name, objects)
                node.reset_inputs()
                self._enqueue_if_ready(node)
            else:
                raise ExecutionError(
                    f"{node.path}: result kind {result.kind} is not terminal"
                )
            self._after_node_event(node)

    def apply_failure(self, node: TaskNode, error: BaseException) -> bool:
        """System-level failure of an executing task.

        Returns True if the task will be retried silently (§3's automatic
        retries); False if the failure was surfaced (abort outcome published
        or workflow failed).
        """
        with self.lock:
            if not node.alive or node.machine.state is not TaskState.EXECUTING:
                return False
            if node.machine.marked:
                # Results already released: cannot pretend nothing happened.
                self.fail(f"{node.path}: failed after producing a mark: {error!r}")
                return False
            node.attempt += 1
            if node.attempt <= node.retry_limit():
                node.machine.system_retry()
                node.reset_inputs()
                self._enqueue_if_ready(node)
                self._pump()
                return True
            aborts = node.taskclass.outputs_of_kind(OutputKind.ABORT)
            if aborts:
                spec = aborts[0]
                objects = {
                    o.name: ObjectRef(o.class_name, None, node.path, spec.name)
                    for o in spec.objects
                }
                node.machine.abort(spec.name)
                self._publish(node.outer_scope, node, EventKind.ABORT, spec.name, objects)
                self._after_node_event(node)
                return False
            self.fail(f"{node.path}: retries exhausted: {error!r}")
            return False

    def force_abort(self, path: str, abort_name: Optional[str] = None) -> None:
        """Abort a task from the outside (timer expiry / user abort, Fig. 3)."""
        with self.lock:
            node = self.node_at(path)
            aborts = node.taskclass.outputs_of_kind(OutputKind.ABORT)
            if abort_name is None:
                if not aborts:
                    raise ExecutionError(f"{path}: taskclass declares no abort outcome")
                abort_name = aborts[0].name
            node.machine.abort(abort_name)
            objects = {
                o.name: ObjectRef(o.class_name, None, node.path, abort_name)
                for o in node.taskclass.output(abort_name).objects
            }
            self._publish(node.outer_scope, node, EventKind.ABORT, abort_name, objects)
            self._after_node_event(node)
            self._pump()

    def _after_node_event(self, node: TaskNode) -> None:
        if node.machine.terminal and isinstance(node, CompoundNode):
            for child in node.children:
                child.deactivate()
        if node is self.root and node.machine.terminal:
            self.status = (
                WorkflowStatus.COMPLETED
                if node.machine.state is TaskState.COMPLETED
                else WorkflowStatus.ABORTED
            )
        self._pump()

    def fail(self, error: str) -> None:
        with self.lock:
            if self.status is WorkflowStatus.RUNNING:
                self.status = WorkflowStatus.FAILED
                self.error = error

    # -- compound output mapping --------------------------------------------------------------

    def _evaluate_outputs(self, compound: CompoundNode, event: WorkflowEvent) -> None:
        if compound.machine.state is not TaskState.EXECUTING:
            return
        decl = compound.compound_decl
        if self.use_plan and compound.watcher_routing is not None:
            # firing table for the output mappings: only watchers with a slot
            # fed by this exact event are touched
            key = (event.producer, event.kind, event.name)
            for position in compound.watcher_routing.get(key, ()):
                compound.output_watchers[position].offer(event)
        else:
            for binding, watcher in zip(decl.outputs, compound.output_watchers):
                watcher.offer(event)
        # marks first (they do not terminate), then repeat, then terminal
        self._emit_satisfied_outputs(compound, OutputKind.MARK)
        if compound.machine.state is not TaskState.EXECUTING:
            return
        if self._emit_satisfied_outputs(compound, OutputKind.REPEAT):
            return
        self._emit_satisfied_outputs(compound, OutputKind.OUTCOME, OutputKind.ABORT)

    def _emit_satisfied_outputs(self, compound: CompoundNode, *kinds: OutputKind) -> bool:
        decl = compound.compound_decl
        for binding, watcher in zip(decl.outputs, compound.output_watchers):
            spec = compound.taskclass.output(binding.name)
            if spec is None or spec.kind not in kinds:
                continue
            if binding.name in compound.emitted_outputs:
                continue
            readiness = watcher.ready()
            if readiness is None:
                continue
            _set_name, raw_objects = readiness
            objects = {
                name: self._retag(value, spec, name, compound)
                for name, value in raw_objects.items()
            }
            compound.emitted_outputs.add(binding.name)
            if spec.kind is OutputKind.MARK:
                compound.machine.mark(binding.name)
                self._publish(
                    compound.outer_scope, compound, EventKind.MARK, binding.name, objects
                )
            elif spec.kind is OutputKind.REPEAT:
                if compound.machine.repeats + 1 > self.max_repeats:
                    self.fail(
                        f"{compound.path}: exceeded max_repeats={self.max_repeats}"
                    )
                    return True
                compound.machine.repeat(binding.name)
                self._publish(
                    compound.outer_scope, compound, EventKind.REPEAT, binding.name, objects
                )
                compound.reset_inside()
                compound.reset_inputs()
                self._enqueue_if_ready(compound)
                return True
            else:
                if spec.kind is OutputKind.OUTCOME:
                    compound.machine.complete(binding.name)
                    kind = EventKind.OUTCOME
                else:
                    compound.machine.abort(binding.name)
                    kind = EventKind.ABORT
                self._publish(
                    compound.outer_scope, compound, kind, binding.name, objects
                )
                self._after_node_event(compound)
                return True
        return False

    def _retag(
        self, value: ObjectRef, spec, name: str, compound: CompoundNode
    ) -> ObjectRef:
        decl = spec.object(name)
        class_name = decl.class_name if decl else value.class_name
        return ObjectRef(class_name, value.value, compound.path, spec.name)

    # -- dynamic reconfiguration -------------------------------------------------------------

    def reconfigure(self, new_script: Script) -> None:
        """Atomically switch the running instance to ``new_script``.

        Rules (mirroring §3): constituents present in both keep their state;
        added constituents join in WAIT and see the scope's full event
        history; removed constituents must not have started; dependency
        changes on waiting tasks take effect immediately (tracker rebuild +
        replay).  Raises :class:`ReconfigurationError` without any effect if
        a rule is violated — the transactional all-or-nothing behaviour.
        """
        with self.lock:
            root_name = self.root.local_name
            if root_name not in new_script.tasks:
                raise ReconfigurationError(
                    f"new script lost the running root task {root_name!r}"
                )
            plan: List[Callable[[], None]] = []
            self._plan_reconfigure(
                self.root, new_script.tasks[root_name], new_script, plan
            )
            # all checks passed: apply
            self.script = new_script
            for action in plan:
                action()
            if self.use_plan:
                # Recompile every live scope: a decl change anywhere can alter
                # the event vocabulary siblings were compiled against (e.g. a
                # compound's output mappings feed its siblings' firing
                # tables).  Scope histories are folded into the vocabulary,
                # so replayed trackers cannot lose past matches.
                self._compile_root_plan()
                for node in self.walk():
                    if isinstance(node, CompoundNode) and node.alive:
                        node._recompile_plan()
            self._pump()

    def _plan_reconfigure(
        self,
        node: TaskNode,
        new_decl: AnyTaskDecl,
        new_script: Script,
        plan: List[Callable[[], None]],
    ) -> None:
        if new_decl.taskclass_name != node.decl.taskclass_name:
            raise ReconfigurationError(
                f"{node.path}: cannot change taskclass of a live instance"
            )
        inputs_changed = new_decl.input_sets != node.decl.input_sets

        def update_decl(n: TaskNode = node, d: AnyTaskDecl = new_decl, ic: bool = inputs_changed) -> None:
            n.decl = d
            if ic:
                if isinstance(n.parent, CompoundNode):
                    n.parent._rebuild_routing()
                if n.machine.state is TaskState.WAIT:
                    n.reset_inputs()
                    self._enqueue_if_ready(n)

        plan.append(update_decl)
        if isinstance(node, CompoundNode):
            if not isinstance(new_decl, CompoundTaskDecl):
                raise ReconfigurationError(
                    f"{node.path}: cannot change compound into simple task"
                )
            old_names = {c.local_name for c in node.children}
            new_names = {t.name for t in new_decl.tasks}
            for removed in sorted(old_names - new_names):
                child = node.child(removed)
                if child is not None and child.machine.starts > 0:
                    raise ReconfigurationError(
                        f"{child.path}: cannot remove a task that already started"
                    )

                def drop(c: CompoundNode = node, name: str = removed) -> None:
                    victim = c.child(name)
                    if victim is not None:
                        victim.deactivate()
                        c.children.remove(victim)
                        c._rebuild_routing()

                plan.append(drop)
            for child in node.children:
                if child.local_name in new_names:
                    self._plan_reconfigure(
                        child, new_decl.task(child.local_name), new_script, plan
                    )
            for added in [t for t in new_decl.tasks if t.name not in old_names]:

                def grow(c: CompoundNode = node, d: AnyTaskDecl = added) -> None:
                    fresh = self._make_node(d, c)
                    c.children.append(fresh)
                    c._rebuild_routing()
                    c.inner_scope.replay_into(fresh.tracker)
                    self._enqueue_if_ready(fresh)

                plan.append(grow)
            if new_decl.outputs != node.compound_decl.outputs:

                def rewatch(c: CompoundNode = node) -> None:
                    # c.decl is already the new decl (update_decl ran first)
                    c._rebuild_watchers()

                plan.append(rewatch)
