"""Concurrent (multi-threaded) workflow engine.

The paper's execution environment starts every task whose dependencies are
satisfied — tasks with no mutual dependency run *concurrently* (§3, Fig. 1:
"t2 and t3 can be performed concurrently").  :class:`ConcurrentWorkflow`
realises exactly that on a bounded thread pool: every dispatch cycle drains
*all* ready tasks from the shared :class:`~repro.engine.instance.InstanceTree`
and hands them to worker threads; each completion immediately dispatches
whatever it made ready.

The language semantics are untouched.  Scheduling decisions, input-set
selection, compound output mapping, retries, repeats and reconfiguration all
live in :class:`InstanceTree`, whose mutating entry points serialise on one
tree lock; only the task *implementations* (user code) run outside the lock,
in parallel.  Consequently a script whose dataflow determines its outputs
produces the same outcome, marks and output objects under both engines — the
event log may interleave differently, but every dependency edge is still
honoured (an event is only ever published after its producers').

Knobs:

* ``parallelism=N`` — worker thread count (``N <= 1`` degrades to the
  sequential :class:`~repro.engine.local.LocalWorkflow` loop);
* per-task ``"timeout"`` implementation property — wall-clock budget in
  seconds, surfaced through :class:`~repro.engine.context.TaskContext`
  (cooperative: implementations call ``ctx.check_timeout()`` at safe
  points; the resulting :class:`~repro.core.errors.TaskTimeout` takes the
  normal failure path of system retries then abort).

Script-bound implementations (§4.4 sub-workflows) run sequentially inside
the worker thread that picked the parent task up — several sub-workflows
still run concurrently with each other — and share the parent's global step
budget.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor
from typing import FrozenSet, Mapping, Optional, Set

from ..core.schema import Script
from .events import WorkflowResult, WorkflowStatus
from .instance import InstanceTree, TaskNode
from .local import LocalEngine, LocalWorkflow
from .registry import ImplementationRegistry


def enabled_pairs(tree: InstanceTree) -> Set[FrozenSet[str]]:
    """The pairs of simple tasks currently *simultaneously enabled*: both
    would be handed out by one ``drain_ready()`` cycle and therefore may
    execute concurrently.  This is the single definition of the engine's
    enablement relation, shared with the static interference analysis
    (:mod:`repro.analysis.interference`), whose ``W301`` findings must
    over-approximate every pair this function can ever return."""
    ready = tree.peek_ready()
    return {
        frozenset((a.path, b.path))
        for i, a in enumerate(ready)
        for b in ready[i + 1 :]
    }


class ConcurrentWorkflow(LocalWorkflow):
    """One running instance executing independent ready tasks in parallel.

    Drop-in replacement for :class:`LocalWorkflow`: the step-by-step control
    surface (``step``, ``reconfigure``, ``force_abort``,
    ``complete_external``) is inherited and remains sequential;
    :meth:`run_to_completion` is where the thread pool kicks in::

        wf = ConcurrentWorkflow(script, "order", registry, parallelism=4)
        wf.start({"order": "o-1"})
        result = wf.run_to_completion()
    """

    def __init__(
        self,
        script: Script,
        root_task: str,
        registry: ImplementationRegistry,
        default_retries: int = 3,
        max_repeats: int = 1000,
        max_steps: int = 100_000,
        parallelism: int = 4,
        use_plan: bool = True,
        sanitizer=None,
    ) -> None:
        super().__init__(
            script,
            root_task,
            registry,
            default_retries=default_retries,
            max_repeats=max_repeats,
            max_steps=max_steps,
            use_plan=use_plan,
            sanitizer=sanitizer,
        )
        self.parallelism = max(1, int(parallelism))
        # guards steps/inflight; Condition wraps an RLock, so budget helpers
        # may be called from a thread already holding it (dispatch)
        self._cv = threading.Condition()
        self._inflight = 0

    # -- step budget (thread-safe) ---------------------------------------------

    def _budget_remaining(self) -> int:
        with self._cv:
            return self.max_steps - self.steps

    def _charge_steps(self, count: int) -> None:
        with self._cv:
            self.steps += count

    # -- concurrent run loop -----------------------------------------------------

    def run_to_completion(self) -> WorkflowResult:
        if self.parallelism <= 1:
            return super().run_to_completion()
        with ThreadPoolExecutor(
            max_workers=self.parallelism, thread_name_prefix="repro-task"
        ) as pool:
            with self._cv:
                self._dispatch(pool)
                while self._inflight:
                    self._cv.wait()
        return self.result()

    def result(self) -> WorkflowResult:
        result = super().result()
        result.stats["parallelism"] = self.parallelism
        return result

    def _dispatch(self, pool: ThreadPoolExecutor) -> None:
        """Drain every ready task and submit it.  Caller holds ``_cv``."""
        if self.tree.status is not WorkflowStatus.RUNNING:
            return
        remaining = self.max_steps - self.steps
        if remaining <= 0:
            if self.tree.has_work():
                self.tree.fail(f"exceeded max_steps={self.max_steps}")
            return
        for node in self.tree.drain_ready(limit=remaining):
            self.steps += 1
            self._inflight += 1
            pool.submit(self._worker, pool, node)

    def _worker(self, pool: ThreadPoolExecutor, node: TaskNode) -> None:
        try:
            self._execute(node)
        except BaseException as exc:  # engine invariant violation, not user code
            self.tree.fail(f"engine error executing {node.path}: {exc!r}")
        finally:
            with self._cv:
                self._inflight -= 1
                try:
                    self._dispatch(pool)
                finally:
                    self._cv.notify_all()


class ConcurrentEngine(LocalEngine):
    """Convenience facade mirroring :class:`LocalEngine` with a
    ``parallelism`` knob::

        result = ConcurrentEngine(registry, parallelism=8).run(script, inputs=...)
    """

    def __init__(
        self,
        registry: Optional[ImplementationRegistry] = None,
        default_retries: int = 3,
        max_repeats: int = 1000,
        max_steps: int = 100_000,
        parallelism: int = 4,
        use_plan: bool = True,
        sanitizer=None,
    ) -> None:
        super().__init__(
            registry,
            default_retries=default_retries,
            max_repeats=max_repeats,
            max_steps=max_steps,
            use_plan=use_plan,
            sanitizer=sanitizer,
        )
        self.parallelism = parallelism

    def _build(
        self,
        script: Script,
        root_task: str,
        registry: ImplementationRegistry,
    ) -> ConcurrentWorkflow:
        return ConcurrentWorkflow(
            script,
            root_task,
            registry,
            default_retries=self.default_retries,
            max_repeats=self.max_repeats,
            max_steps=self.max_steps,
            parallelism=self.parallelism,
            use_plan=self.use_plan,
            sanitizer=self.sanitizer,
        )
