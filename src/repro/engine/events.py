"""Workflow-level event log, statuses and results.

Every scope-level :class:`~repro.core.selection.WorkflowEvent` is also
recorded here with its full instance path and (virtual or step) time, giving
experiments a single chronological record to assert ordering properties
against — e.g. "t4 started only after both t2 and t3 finished" (Fig. 1).
"""

from __future__ import annotations

import enum
import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..core.selection import EventKind, WorkflowEvent
from ..core.values import ObjectRef


class WorkflowStatus(enum.Enum):
    RUNNING = "running"
    COMPLETED = "completed"   # root terminated in an outcome
    ABORTED = "aborted"       # root terminated in an abort outcome
    STALLED = "stalled"       # no progress possible, root not terminal
    FAILED = "failed"         # unrecoverable implementation/system failure


@dataclass(frozen=True)
class LogEntry:
    """One event, globally timestamped and path-qualified."""

    seq: int
    time: float
    scope_path: str
    producer_path: str
    event: WorkflowEvent

    @property
    def kind(self) -> EventKind:
        return self.event.kind

    @property
    def name(self) -> str:
        return self.event.name


class EventLog:
    """Chronological record of everything a workflow instance did.

    Appends are serialised by a lock so the concurrent engine
    (:mod:`repro.engine.concurrent`) can record events from several worker
    threads; ``seq`` numbers remain dense and strictly increasing.  Readers
    are unaffected: entries are append-only and never mutated.
    """

    def __init__(self) -> None:
        self.entries: List[LogEntry] = []
        self._append_lock = threading.Lock()

    def record(
        self, time: float, scope_path: str, producer_path: str, event: WorkflowEvent
    ) -> LogEntry:
        with self._append_lock:
            entry = LogEntry(len(self.entries), time, scope_path, producer_path, event)
            self.entries.append(entry)
            return entry

    # -- queries used by tests and benchmarks ------------------------------------

    def for_task(self, producer_path: str) -> List[LogEntry]:
        return [e for e in self.entries if e.producer_path == producer_path]

    def of_kind(self, kind: EventKind) -> List[LogEntry]:
        return [e for e in self.entries if e.event.kind is kind]

    def first(self, producer_path: str, kind: EventKind) -> Optional[LogEntry]:
        for entry in self.entries:
            if entry.producer_path == producer_path and entry.event.kind is kind:
                return entry
        return None

    def started_order(self) -> List[str]:
        """Producer paths in the order their (first) INPUT event appeared —
        i.e. task start order."""
        seen: List[str] = []
        for entry in self.entries:
            if entry.event.kind is EventKind.INPUT and entry.producer_path not in seen:
                seen.append(entry.producer_path)
        return seen

    def happened_before(self, earlier: Tuple[str, EventKind], later: Tuple[str, EventKind]) -> bool:
        """Did the first (earlier) event precede the first (later) event?"""
        first = self.first(*earlier)
        second = self.first(*later)
        return first is not None and second is not None and first.seq < second.seq

    def __len__(self) -> int:
        return len(self.entries)


@dataclass
class WorkflowResult:
    """Final report of one workflow instance run."""

    status: WorkflowStatus
    outcome: Optional[str] = None
    objects: Dict[str, ObjectRef] = field(default_factory=dict)
    marks: List[Tuple[str, Dict[str, ObjectRef]]] = field(default_factory=list)
    log: EventLog = field(default_factory=EventLog)
    stats: Dict[str, float] = field(default_factory=dict)
    error: Optional[str] = None

    @property
    def completed(self) -> bool:
        return self.status is WorkflowStatus.COMPLETED

    def value(self, name: str, default=None):
        ref = self.objects.get(name)
        return default if ref is None else ref.value
