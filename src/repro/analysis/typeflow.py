"""Typed-dataflow checking (``E1xx``).

Checks every alternative source of every input object against the producing
output's declared object class — across compound-task boundaries, output
mappings, and (unlike plain validation) inside template bodies, where the
template's parameters are treated as opaque producers.

The heavy lifting is shared with :class:`repro.core.graph.Validator`; the
analyser runs it in coded mode and converts the results into
:class:`~repro.analysis.findings.Finding` objects, so ``compile_script`` and
``repro lint``/``repro analyze --static`` can never disagree about what is
type-correct.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple

from ..core.graph import Validator, _ScopeInfo
from ..core.schema import Script, TaskClass
from .findings import Finding
from .registry import DIAGNOSTICS


def _to_findings(coded: List[Tuple[str, str, str]], prefix: str = "") -> Iterator[Finding]:
    for code, location, message in coded:
        spec = DIAGNOSTICS.require(code)
        yield Finding(
            code=code,
            severity=spec.severity,
            location=f"{prefix}{location}",
            message=message,
        )


def check_typeflow(script: Script) -> List[Finding]:
    """All typed-dataflow findings of ``script`` (empty list = type-correct).

    Subsumes :func:`repro.core.graph.validate_script` (same checks, stable
    codes) and additionally type-checks every template body, which plain
    validation skips because templates are only checked at instantiation.
    """
    validator = Validator(script)
    validator.validate()
    findings = list(_to_findings(validator.coded))
    for template in script.templates.values():
        findings.extend(_check_template(script, template))
    return findings


def _check_template(script: Script, template) -> Iterator[Finding]:
    body = template.body
    taskclass = script.taskclasses.get(body.taskclass_name)
    if taskclass is None:
        spec = DIAGNOSTICS.require("E107")
        yield Finding(
            code="E107",
            severity=spec.severity,
            location=f"template {template.name}",
            message=f"body uses unknown taskclass {body.taskclass_name!r}",
        )
        return
    validator = Validator(script, placeholders=template.parameters)
    names: Dict[str, Tuple[TaskClass, bool]] = {body.name: (taskclass, False)}
    validator._validate_decl(body, _ScopeInfo(names, f"template {template.name}"))
    yield from _to_findings(validator.coded, prefix=f"template {template.name}/")
