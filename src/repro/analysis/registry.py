"""Central diagnostic-code registry.

Every diagnostic the toolchain can emit — legacy lint warnings (``W0xx``),
typeflow errors (``E1xx``), liveness errors (``E2xx``) and concurrency
interference warnings (``W3xx``) — is declared here exactly once, with its
severity and one-line description.  Emitters look codes up through
:meth:`DiagnosticRegistry.require`, so an unknown or retired code is an
immediate ``KeyError`` instead of a silent collision.

Retired codes stay reserved forever: ``W004`` and ``W006`` were documented
in early drafts of :mod:`repro.lang.linter` but never implemented; they must
never be reused for a different meaning, because external suppression lists
may still reference them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, Optional

from .findings import Severity


@dataclass(frozen=True)
class DiagnosticSpec:
    """One registered diagnostic code."""

    code: str
    severity: Severity
    title: str
    description: str


class DiagnosticRegistry:
    """Registry of every diagnostic code, with explicit retirement."""

    def __init__(self) -> None:
        self._specs: Dict[str, DiagnosticSpec] = {}
        self._retired: Dict[str, str] = {}

    def register(
        self, code: str, severity: Severity, title: str, description: str
    ) -> DiagnosticSpec:
        if code in self._specs:
            raise ValueError(f"diagnostic code {code!r} registered twice")
        if code in self._retired:
            raise ValueError(
                f"diagnostic code {code!r} is retired ({self._retired[code]}) "
                f"and must not be reused"
            )
        spec = DiagnosticSpec(code, severity, title, description)
        self._specs[code] = spec
        return spec

    def retire(self, code: str, reason: str) -> None:
        """Reserve ``code`` permanently; registering it later is an error."""
        if code in self._specs:
            raise ValueError(f"cannot retire live diagnostic code {code!r}")
        self._retired[code] = reason

    def require(self, code: str) -> DiagnosticSpec:
        """The spec for ``code``; raises for unknown or retired codes."""
        spec = self._specs.get(code)
        if spec is None:
            if code in self._retired:
                raise KeyError(
                    f"diagnostic code {code!r} is retired: {self._retired[code]}"
                )
            raise KeyError(f"diagnostic code {code!r} is not registered")
        return spec

    def get(self, code: str) -> Optional[DiagnosticSpec]:
        return self._specs.get(code)

    def __contains__(self, code: str) -> bool:
        return code in self._specs

    def specs(self) -> Iterator[DiagnosticSpec]:
        """All live specs, ordered by code (stable for SARIF rule arrays)."""
        for code in sorted(self._specs):
            yield self._specs[code]

    def retired(self) -> Dict[str, str]:
        return dict(self._retired)

    def rule_index(self, code: str) -> int:
        """Position of ``code`` in :meth:`specs` order (SARIF ``ruleIndex``)."""
        return sorted(self._specs).index(code)


DIAGNOSTICS = DiagnosticRegistry()

# -- legacy linter diagnostics (repro.lang.linter) ----------------------------

DIAGNOSTICS.register(
    "W001", Severity.WARNING, "dependency cycle",
    "Dependency cycle among constituents with no repeat outcome involved: "
    "the tasks on the cycle can never start.",
)
DIAGNOSTICS.register(
    "W002", Severity.WARNING, "missing code property",
    "Simple task without a 'code' implementation property: nothing can be "
    "bound at run time.",
)
DIAGNOSTICS.register(
    "W003", Severity.WARNING, "unconsumed task",
    "Constituent none of whose outputs is consumed, neither by a sibling "
    "nor by the compound's output mapping: its results go nowhere.",
)
DIAGNOSTICS.retire(
    "W004", "draft 'duplicate source' check, folded into validation before release"
)
DIAGNOSTICS.register(
    "W005", Severity.WARNING, "unbound input set",
    "Task class input set never bound by an instance: that way of starting "
    "the task is unreachable for this instance.",
)
DIAGNOSTICS.retire(
    "W006", "draft 'shadowed template parameter' check, superseded by schema checks"
)
DIAGNOSTICS.register(
    "W007", Severity.WARNING, "unhandled abort outcome",
    "Abort outcome nobody reacts to: when the atomic task aborts, the "
    "workflow silently loses the branch.",
)
DIAGNOSTICS.register(
    "W008", Severity.WARNING, "unused declaration",
    "Object class, task class or template never referenced.",
)

# -- typeflow (E1xx) ----------------------------------------------------------

DIAGNOSTICS.register(
    "E101", Severity.ERROR, "unknown producer",
    "A source names a task that does not exist in the enclosing scope.",
)
DIAGNOSTICS.register(
    "E102", Severity.ERROR, "unknown guard",
    "A source's `if` clause names an output or input set the producer's "
    "task class does not declare.",
)
DIAGNOSTICS.register(
    "E103", Severity.ERROR, "object not carried",
    "The guarded output or input set (or, unguarded, every outcome/mark) of "
    "the producer carries no object of the requested name.",
)
DIAGNOSTICS.register(
    "E104", Severity.ERROR, "class mismatch",
    "The produced object's class is not the consumer's expected class or a "
    "subclass of it.",
)
DIAGNOSTICS.register(
    "E105", Severity.ERROR, "repeat-output privacy violation",
    "An object of a repeat output is sourced by another task; repeat "
    "objects are private to the producing task (paper §4.2).",
)
DIAGNOSTICS.register(
    "E106", Severity.ERROR, "input-set binding mismatch",
    "A task instance binds an input set or input object its task class does "
    "not declare, or leaves a declared object unbound.",
)
DIAGNOSTICS.register(
    "E107", Severity.ERROR, "unresolved declaration",
    "A declaration references an unknown task class or object class, or the "
    "class hierarchy is cyclic.",
)
DIAGNOSTICS.register(
    "E108", Severity.ERROR, "incomplete output mapping",
    "A compound's output mapping is missing, empty, or maps objects the "
    "output does not declare.",
)

# -- liveness / stalls (E2xx) -------------------------------------------------

DIAGNOSTICS.register(
    "E200", Severity.ERROR, "guaranteed stall",
    "No final output of the root task is statically producible: the "
    "workflow can never terminate in a declared outcome.",
)
DIAGNOSTICS.register(
    "E201", Severity.ERROR, "dead task",
    "The task can never become ready: every alternative source of every "
    "input set is transitively unsatisfiable.",
)
DIAGNOSTICS.register(
    "E202", Severity.ERROR, "unreachable root outcome",
    "A declared final output of the root task is statically unreachable "
    "through the compound's output mapping.",
)
DIAGNOSTICS.register(
    "E203", Severity.WARNING, "unsatisfiable input set",
    "One input set of an otherwise-startable task can never be satisfied; "
    "that alternative way of starting the task is dead wiring.",
)
DIAGNOSTICS.register(
    "E204", Severity.WARNING, "dead output mapping",
    "A non-root compound output mapping can never fire; consumers guarded "
    "on it will never see the event.",
)

# -- concurrency interference (W3xx) ------------------------------------------

DIAGNOSTICS.register(
    "W301", Severity.WARNING, "concurrent shared-object access",
    "Two tasks with no happens-before ordering may be simultaneously "
    "enabled by the concurrent engine while holding the same object "
    "reference; the implementations may race on the shared object, which "
    "the instance-tree lock cannot prevent.",
)

# -- recovery safety and deadlock (E4xx / W4xx) --------------------------------

DIAGNOSTICS.register(
    "W401", Severity.WARNING, "bare effects may apply twice",
    "A reachable non-atomic task's effects are not protected by the "
    "transaction manager: under at-least-once dispatch (redispatch or "
    "hedging) the implementation may run twice, and only the journal's "
    "reply deduplication — not the effects themselves — is exactly-once.",
)
DIAGNOSTICS.register(
    "E402", Severity.ERROR, "uncompensatable abort path",
    "A compound's abort outcome can fire after an atomic constituent has "
    "already committed, and no other constituent consumes that "
    "constituent's committed results: the abort claims no effects "
    "happened while committed effects stand uncompensated.",
)
DIAGNOSTICS.register(
    "E403", Severity.ERROR, "potential lock-order deadlock",
    "Two simultaneously-enabled atomic tasks acquire locks on the same "
    "two (or more) objects in opposite declaration order; under strict "
    "two-phase locking the runtime can only discover the resulting "
    "deadlock the hard way (DeadlockError).",
)
DIAGNOSTICS.register(
    "W404", Severity.WARNING, "ineffective or degenerate deadline",
    "A 'deadline' implementation property that can never arm (the task "
    "class declares no abort outcome), is silently ignored (not a "
    "number), or always fires immediately (non-positive delay).",
)
