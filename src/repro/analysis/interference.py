"""Concurrency-interference analysis (``W3xx``).

Under :class:`~repro.engine.concurrent.ConcurrentWorkflow`, every dispatch
cycle drains *all* ready tasks and runs them on worker threads — two tasks
with no happens-before ordering in the dependency graph can execute at the
same time (the enablement relation the engine exposes as
:func:`repro.engine.concurrent.enabled_pairs`).  The instance tree's lock
serialises engine bookkeeping, but the task *implementations* run outside
it; if two simultaneously-enabled tasks hold the same object reference,
their implementations may race on the shared object and no layer of the
system can detect it.  This pass finds those pairs statically.

Method:

* build a conservative happens-before relation over task starts and ends —
  an edge is added only when it holds on *every* execution (all alternative
  sources of a binding agree on the producer, intersected across the input
  sets the task can actually start through, and across a compound's
  producible final outputs);
* two startable simple tasks neither of whose ends reaches the other's
  start *may* overlap;
* each task's consumed object references are resolved to their origin —
  chasing references through compound input ports and output mappings — and
  a pair that may overlap while sharing an origin is reported as ``W301``.

This is a *may* analysis: every pair the concurrent engine can genuinely
co-schedule is reported (soundness is property-tested against
``ConcurrentWorkflow.drain_ready()``), at the price of possible false
positives when dataflow values rule an overlap out dynamically.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

import networkx as nx

from ..core.schema import (
    GuardKind,
    InputSetBinding,
    OutputKind,
    Script,
    Source,
)
from .findings import Finding
from .liveness import FlowNode, LivenessResult, check_liveness
from .registry import DIAGNOSTICS

# an origin of an object reference: (producing task path or "<env>", object)
Origin = Tuple[str, str]

_START = "s"
_END = "e"


def _is_final_guard(source: Source, owner: FlowNode) -> bool:
    """True when the source can only fire at its producer's termination."""
    producer_class = owner.sibling_class(source.task_name)
    if producer_class is None:
        return False
    if source.guard_kind is GuardKind.OUTPUT:
        out = producer_class.output(source.guard_name)
        return out is not None and out.kind in (OutputKind.OUTCOME, OutputKind.ABORT)
    if source.guard_kind is GuardKind.ANY:
        candidates = [
            out
            for out in producer_class.outputs
            if out.kind in (OutputKind.OUTCOME, OutputKind.MARK)
            and source.object_name is not None
            and out.object(source.object_name) is not None
        ]
        return bool(candidates) and all(
            out.kind is OutputKind.OUTCOME for out in candidates
        )
    return False  # `if input` fires at the producer's start


def _conjunct_pred(
    sources: Sequence[Source], owner: FlowNode
) -> Optional[Tuple[str, str]]:
    """Guaranteed predecessor of a conjunct, as (start|end, producer path).

    Only meaningful when every alternative names the same producer: whichever
    alternative fires, that producer acted first.  Mixed producers guarantee
    nothing (the conjunct may be satisfied by either), so no edge.
    """
    producers = {source.task_name for source in sources}
    if len(producers) != 1:
        return None
    producer = producers.pop()
    if producer == owner.local:
        return None  # the enclosing compound; covered by the parent edge
    if owner.sibling_class(producer) is None:
        return None
    strength = (
        _END
        if all(_is_final_guard(source, owner) for source in sources)
        else _START
    )
    return strength, f"{owner.path}/{producer}"


def _binding_preds(
    binding: InputSetBinding, owner: FlowNode
) -> Dict[str, str]:
    """path -> strongest guaranteed predecessor strength for one input set."""
    preds: Dict[str, str] = {}
    conjuncts: List[Sequence[Source]] = [obj.sources for obj in binding.objects]
    conjuncts.extend(notif.sources for notif in binding.notifications)
    for sources in conjuncts:
        pred = _conjunct_pred(sources, owner)
        if pred is None:
            continue
        strength, path = pred
        if preds.get(path) != _END:
            preds[path] = strength
    return preds


def _intersect_preds(all_preds: List[Dict[str, str]]) -> Dict[str, str]:
    """Predecessors guaranteed by every alternative (weakest strength wins)."""
    if not all_preds:
        return {}
    merged = dict(all_preds[0])
    for preds in all_preds[1:]:
        for path in list(merged):
            if path not in preds:
                del merged[path]
            elif preds[path] == _START:
                merged[path] = _START
    return merged


def _happens_before(liveness: LivenessResult) -> "nx.DiGraph":
    graph = nx.DiGraph()
    for root in liveness.roots:
        for node in root.walk():
            graph.add_edge((_START, node.path), (_END, node.path))
            for child in node.children:
                graph.add_edge((_START, node.path), (_START, child.path))
            if node.parent is not None:
                owner = node.parent
                startable = liveness.startable.get(node.path, set())
                per_set = [
                    _binding_preds(binding, owner)
                    for binding in node.decl.input_sets
                    if binding.name in startable
                ]
                for path, strength in _intersect_preds(per_set).items():
                    graph.add_edge((strength, path), (_START, node.path))
            if node.is_compound:
                produced = liveness.facts.get(node.scope, set())
                final_preds: List[Dict[str, str]] = []
                for binding in node.decl.outputs:
                    spec = (
                        node.taskclass.output(binding.name)
                        if node.taskclass is not None
                        else None
                    )
                    if spec is None or spec.kind not in (
                        OutputKind.OUTCOME,
                        OutputKind.ABORT,
                    ):
                        continue
                    if (node.local, "output", binding.name) not in produced:
                        continue  # can never fire; doesn't constrain the end
                    preds: Dict[str, str] = {}
                    conjuncts: List[Sequence[Source]] = [
                        obj.sources for obj in binding.objects
                    ]
                    conjuncts.extend(n.sources for n in binding.notifications)
                    for sources in conjuncts:
                        pred = _conjunct_pred(sources, node)
                        if pred is None:
                            continue
                        strength, path = pred
                        if preds.get(path) != _END:
                            preds[path] = strength
                    final_preds.append(preds)
                for path, strength in _intersect_preds(final_preds).items():
                    graph.add_edge((strength, path), (_END, node.path))
    return graph


class _OriginResolver:
    """Chases an object reference back to the task (or environment input)
    that created it, through compound input ports and output mappings."""

    def __init__(self, liveness: LivenessResult) -> None:
        self.liveness = liveness
        self._memo: Dict[Tuple[str, str, Optional[str], Optional[str], str], FrozenSet[Origin]] = {}
        self._active: Set[Tuple[str, str, Optional[str], Optional[str], str]] = set()

    def source_origins(self, owner: FlowNode, source: Source) -> FrozenSet[Origin]:
        if source.object_name is None:
            return frozenset()
        key = (
            owner.path,
            source.task_name,
            source.guard_name,
            source.object_name,
            source.guard_kind.value,
        )
        if key in self._memo:
            return self._memo[key]
        if key in self._active:
            return frozenset()  # reference cycle: no base origin
        self._active.add(key)
        try:
            result = self._resolve(owner, source)
        finally:
            self._active.discard(key)
        self._memo[key] = result
        return result

    def _resolve(self, owner: FlowNode, source: Source) -> FrozenSet[Origin]:
        obj = source.object_name
        assert obj is not None
        if source.task_name == owner.local:
            # the enclosing compound: objects flow in through its input port
            if source.guard_kind is not GuardKind.INPUT:
                return frozenset()
            return self._input_port_origins(owner, source.guard_name, obj)
        producer = next(
            (c for c in owner.children if c.local == source.task_name), None
        )
        if producer is None:
            return frozenset()
        if source.guard_kind is GuardKind.INPUT:
            # the object the producer itself received
            return self._input_port_origins(producer, source.guard_name, obj)
        if not producer.is_compound:
            return frozenset({(producer.path, obj)})
        # compound producer: chase through its output mapping(s)
        if source.guard_kind is GuardKind.OUTPUT:
            names = [source.guard_name]
        else:  # ANY: any outcome/mark carrying the object
            names = [
                out.name
                for out in (producer.taskclass.outputs if producer.taskclass else ())
                if out.kind in (OutputKind.OUTCOME, OutputKind.MARK)
                and out.object(obj) is not None
            ]
        origins: Set[Origin] = set()
        for name in names:
            binding = producer.decl.output(name)
            if binding is None:
                continue
            mapped = binding.object(obj)
            if mapped is None:
                continue
            for alt in mapped.sources:
                origins.update(self.source_origins(producer, alt))
        return frozenset(origins)

    def _input_port_origins(
        self, node: FlowNode, set_name: Optional[str], obj: str
    ) -> FrozenSet[Origin]:
        if node.parent is None:
            return frozenset({("<env>", obj)})
        candidates = (
            [b for b in node.decl.input_sets if b.name == set_name]
            if set_name is not None
            else list(node.decl.input_sets)
        )
        origins: Set[Origin] = set()
        for binding in candidates:
            bound = binding.object(obj)
            if bound is None:
                continue
            for alt in bound.sources:
                origins.update(self.source_origins(node.parent, alt))
        return frozenset(origins)


def _consumed_origins(
    node: FlowNode, liveness: LivenessResult, resolver: _OriginResolver
) -> FrozenSet[Origin]:
    """Origins of every object reference ``node`` may receive as input."""
    if node.parent is None:
        return frozenset()
    startable = liveness.startable.get(node.path, set())
    origins: Set[Origin] = set()
    for binding in node.decl.input_sets:
        if binding.name not in startable:
            continue
        for obj in binding.objects:
            for source in obj.sources:
                origins.update(resolver.source_origins(node.parent, source))
    return frozenset(origins)


def check_interference(
    script: Script, liveness: Optional[LivenessResult] = None
) -> List[Finding]:
    """All ``W3xx`` findings: potentially racy concurrently-enabled pairs."""
    if liveness is None:
        liveness = check_liveness(script)
    graph = _happens_before(liveness)
    resolver = _OriginResolver(liveness)
    spec = DIAGNOSTICS.require("W301")
    findings: List[Finding] = []
    for root in liveness.roots:
        findings.extend(
            _check_root(root, liveness, graph, resolver, spec)
        )
    return findings


def _check_root(root, liveness, graph, resolver, spec) -> List[Finding]:
    simple = [
        node
        for node in root.walk()
        if not node.is_compound and liveness.may_start(node.path)
    ]
    reach: Dict[str, Set] = {
        node.path: nx.descendants(graph, (_END, node.path))
        for node in simple
        if (_END, node.path) in graph
    }
    shared: Dict[str, FrozenSet[Origin]] = {
        node.path: _consumed_origins(node, liveness, resolver) for node in simple
    }
    findings: List[Finding] = []
    for i, a in enumerate(simple):
        for b in simple[i + 1 :]:
            if (_START, b.path) in reach.get(a.path, set()):
                continue  # a's end precedes b's start on every execution
            if (_START, a.path) in reach.get(b.path, set()):
                continue
            common = shared[a.path] & shared[b.path]
            if not common:
                continue
            refs = ", ".join(
                f"{obj!r} from {origin}" for origin, obj in sorted(common)
            )
            findings.append(
                Finding(
                    code="W301",
                    severity=spec.severity,
                    location=f"{a.path} <-> {b.path}",
                    message=(
                        "tasks may be simultaneously enabled under the "
                        f"concurrent engine and share object reference(s) "
                        f"{refs}; implementations may race on the shared "
                        "object"
                    ),
                    related=(a.path, b.path),
                )
            )
    return findings
