"""Whole-script static analysis (no execution).

The paper's central design point is that task *interfaces* (input sets,
outcomes, marks) are explicit while implementations stay opaque — so a
script's composition can be analysed *before* anything runs.  This package
is that analyser.  It operates on a parsed :class:`~repro.core.schema.Script`
and never executes task code (contrast :mod:`repro.core.analysis`, which
explores behaviour by running the real engine against synthetic
implementations — the two cross-check each other in ``repro analyze``).

Five checkers, one unified report:

* :mod:`repro.analysis.typeflow` (``E1xx``) — every alternative source of
  every input checked against the producing output's declared object class,
  across compound boundaries, templates and output mappings;
* :mod:`repro.analysis.liveness` (``E2xx``) — which tasks can never become
  ready, which input sets are unsatisfiable, and which root outcomes are
  statically unreachable;
* :mod:`repro.analysis.interference` (``W3xx``) — pairs of tasks that may be
  simultaneously enabled under the concurrent engine and touch the same
  object reference: races the instance-tree lock cannot see;
* :mod:`repro.analysis.recovery` (``W401``/``E402``/``W404``) — bare (non
  transactional) effects reachable under at-least-once dispatch, abort
  paths that cannot compensate committed sibling effects, and degenerate
  deadlines;
* :mod:`repro.analysis.lockorder` (``E403``) — potential strict-2PL
  deadlocks: simultaneously-enabled atomic tasks locking shared objects in
  opposite declaration order.

The static passes are may-analyses: they over-approximate the engine.  The
runtime sanitizer (:mod:`repro.analysis.dynamic`) watches real executions
(vector clocks, locksets, worker execution ledgers) and checks the
containment — every dynamic race/inversion/duplicate-effect must be
predicted by a static ``W301``/``E403``/``W401`` finding.

Legacy lint diagnostics (``W0xx``, :mod:`repro.lang.linter`) are merged into
the same report; every code lives in the central
:mod:`repro.analysis.registry` so codes can never silently collide.

Findings render as text, JSON, or SARIF 2.1.0 (:mod:`repro.analysis.sarif`)
for CI annotation; ``repro lint`` / ``repro analyze --static`` are the CLI
entry points, and :class:`repro.services.repository.RepositoryService` can
reject error-laden scripts at registration time (strict admission).
"""

from __future__ import annotations

from typing import Optional

from ..core.schema import Script
from .dynamic import DynamicFinding, Sanitizer, sanitized_exploration
from .findings import Finding, Severity, StaticReport
from .interference import check_interference
from .liveness import LivenessResult, check_liveness
from .lockorder import check_lockorder
from .recovery import check_recovery
from .registry import DIAGNOSTICS, DiagnosticRegistry, DiagnosticSpec
from .sarif import to_sarif
from .sources import iter_embedded_scripts, load_scripts
from .typeflow import check_typeflow


def analyze_script(
    script: Script,
    root_task: Optional[str] = None,
    input_set: str = "main",
    include_lint: bool = True,
    source_name: str = "<script>",
) -> StaticReport:
    """Run every static check on ``script`` and return a unified report.

    ``root_task``/``input_set`` select the workflow analysed for liveness
    and interference (defaulting exactly like
    :func:`repro.core.analysis.analyze_outcomes`: the sole top-level task,
    started via ``main`` or its first declared input set).  Typeflow and
    lint always cover the whole script.
    """
    findings = list(check_typeflow(script))
    liveness: Optional[LivenessResult] = None
    # liveness/interference assume a semantically valid script; on typeflow
    # errors the flow model would be built over dangling names, so the deeper
    # passes are skipped (the report already fails on the E1xx findings).
    if not any(f.severity is Severity.ERROR for f in findings):
        liveness = check_liveness(script, root_task=root_task, input_set=input_set)
        findings.extend(liveness.findings)
        findings.extend(check_interference(script, liveness))
        findings.extend(check_recovery(script, liveness))
        findings.extend(check_lockorder(script, liveness))
    if include_lint:
        from ..lang.linter import lint_script

        for warning in lint_script(script):
            findings.append(
                Finding(
                    code=warning.code,
                    severity=DIAGNOSTICS.require(warning.code).severity,
                    location=warning.location,
                    message=warning.message,
                )
            )
    findings.sort(key=lambda f: (f.severity.rank, f.code, f.location, f.message))
    return StaticReport(
        source_name=source_name, findings=findings, liveness=liveness
    )


__all__ = [
    "DIAGNOSTICS",
    "DiagnosticRegistry",
    "DiagnosticSpec",
    "DynamicFinding",
    "Finding",
    "LivenessResult",
    "Sanitizer",
    "Severity",
    "StaticReport",
    "analyze_script",
    "sanitized_exploration",
    "check_interference",
    "check_liveness",
    "check_lockorder",
    "check_recovery",
    "check_typeflow",
    "iter_embedded_scripts",
    "load_scripts",
    "to_sarif",
]
