"""SARIF 2.1.0 rendering of static-analysis reports.

SARIF (Static Analysis Results Interchange Format, OASIS) is what CI
systems ingest for inline code annotation — ``repro lint --format sarif``
emits one ``run`` per invocation, with every registered diagnostic code as
a ``reportingDescriptor`` rule and every finding as a ``result``.

The language has no source positions in its schema model, so findings are
anchored with *logical* locations (the task path / declaration name); when
the CLI knows the originating file it adds an ``artifactLocation`` so the
annotation lands on the right file.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .findings import StaticReport
from .registry import DIAGNOSTICS

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA_URI = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)
_INFO_URI = "https://github.com/paper-repro/repro/blob/main/docs/ANALYSIS.md"


def _rules() -> List[Dict[str, object]]:
    rules: List[Dict[str, object]] = []
    for spec in DIAGNOSTICS.specs():
        rules.append(
            {
                "id": spec.code,
                "name": spec.title.title().replace(" ", "").replace("-", ""),
                "shortDescription": {"text": spec.title},
                "fullDescription": {"text": spec.description},
                "helpUri": _INFO_URI,
                "defaultConfiguration": {"level": spec.severity.sarif_level},
            }
        )
    return rules


def to_sarif(
    reports,
    tool_version: str = "0.1.0",
    artifacts: Optional[Dict[str, str]] = None,
) -> Dict[str, object]:
    """One SARIF 2.1.0 log for one report or a list of reports.

    ``artifacts`` maps a report's ``source_name`` to a file URI; reports
    whose source is in the map get physical locations on their results.
    """
    if isinstance(reports, StaticReport):
        reports = [reports]
    artifacts = artifacts or {}
    results: List[Dict[str, object]] = []
    for report in reports:
        uri = artifacts.get(report.source_name)
        for finding in report.findings:
            location: Dict[str, object] = {
                "logicalLocations": [
                    {
                        "fullyQualifiedName": finding.location,
                        "kind": "member",
                    }
                ]
            }
            if uri is not None:
                location["physicalLocation"] = {
                    "artifactLocation": {"uri": uri},
                }
            result: Dict[str, object] = {
                "ruleId": finding.code,
                "ruleIndex": DIAGNOSTICS.rule_index(finding.code),
                "level": finding.severity.sarif_level,
                "message": {
                    "text": f"[{report.source_name}] {finding.location}: "
                    f"{finding.message}"
                },
                "locations": [location],
            }
            if finding.related:
                # pair-shaped findings (W301/E402/E403) point at every task
                # in the pair, so CI annotates *both* ends, not just one
                result["relatedLocations"] = [
                    {
                        "logicalLocations": [
                            {"fullyQualifiedName": path, "kind": "member"}
                        ],
                        **(
                            {"physicalLocation": {"artifactLocation": {"uri": uri}}}
                            if uri is not None
                            else {}
                        ),
                        "message": {"text": f"other task in the {finding.code} pair"},
                    }
                    for path in finding.related
                ]
                result["properties"] = {"related": list(finding.related)}
            results.append(result)
    return {
        "$schema": SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-analyze",
                        "informationUri": _INFO_URI,
                        "version": tool_version,
                        "rules": _rules(),
                    }
                },
                "results": results,
            }
        ],
    }
