"""Static liveness / stall analysis (``E2xx``).

Computes, without executing anything, which task instances can ever become
ready, which bound input sets are unsatisfiable, and which root outcomes are
statically unreachable.  The model is a fixpoint over *producible events*:

* the root task is startable (the environment supplies one input set, the
  same default rule as :func:`repro.core.analysis.analyze_outcomes`);
* a startable task may publish an ``INPUT`` event for each satisfiable set,
  and — implementations being opaque — any of its declared outputs;
* a startable compound publishes whatever mapped outputs its inner events
  can satisfy;
* an input set (or output mapping) is satisfiable when every binding has at
  least one producible alternative **and** the alternatives can be chosen
  consistently: a task instance terminates in exactly one final output per
  round, so a conjunction that needs two different outcomes of the same
  producer (the ghost-path mistake of the paper's Fig. 7 family) is
  unsatisfiable.

The result is a *may* analysis: everything the real engines can do is
producible here, so a task flagged dead (``E201``) or an outcome flagged
unreachable (``E202``) is a genuine composition bug.  ``repro analyze``
cross-checks these verdicts against the dynamic explorer
(:mod:`repro.core.analysis`) and treats disagreement as an analyser bug.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from ..core.schema import (
    AnyTaskDecl,
    CompoundTaskDecl,
    GuardKind,
    InputSetBinding,
    OutputKind,
    Script,
    Source,
    TaskClass,
)
from .findings import Finding
from .registry import DIAGNOSTICS

# One producible event: (producer local name, "input" | "output", event name)
Fact = Tuple[str, str, str]

# How many alternative combinations a consistency search may explore before
# falling back to the per-binding over-approximation.
_COMBO_CAP = 4096


class FlowNode:
    """One task instance in the static flow tree (mirrors the engine's
    :class:`~repro.engine.instance.TaskNode` structure, declaration-only)."""

    def __init__(
        self,
        decl: AnyTaskDecl,
        script: Script,
        parent: Optional["FlowNode"],
    ) -> None:
        self.decl = decl
        self.parent = parent
        self.path = f"{parent.path}/{decl.name}" if parent else decl.name
        self.local = decl.name
        self.scope = parent.path if parent else ""
        self.taskclass: Optional[TaskClass] = script.taskclasses.get(
            decl.taskclass_name
        )
        self.children: List["FlowNode"] = []
        if isinstance(decl, CompoundTaskDecl):
            self.children = [FlowNode(child, script, self) for child in decl.tasks]

    @property
    def is_compound(self) -> bool:
        return isinstance(self.decl, CompoundTaskDecl)

    def walk(self) -> List["FlowNode"]:
        nodes = [self]
        for child in self.children:
            nodes.extend(child.walk())
        return nodes

    def sibling_class(self, local_name: str) -> Optional[TaskClass]:
        """Task class of ``local_name`` as resolved from inside this compound
        (a constituent, or the compound itself for ``if input`` sources)."""
        if local_name == self.local:
            return self.taskclass
        for child in self.children:
            if child.local == local_name:
                return child.taskclass
        return None


@dataclass
class LivenessResult:
    """Everything the static liveness pass computed."""

    root_task: str
    input_set: str
    findings: List[Finding] = field(default_factory=list)
    # task path -> input-set names it can become ready through
    startable: Dict[str, Set[str]] = field(default_factory=dict)
    dead_tasks: List[str] = field(default_factory=list)
    reachable_outcomes: Set[str] = field(default_factory=set)
    unreachable_outcomes: List[str] = field(default_factory=list)
    root: Optional[FlowNode] = None
    # every analysed top-level flow tree (multi-root scripts have several)
    roots: List[FlowNode] = field(default_factory=list)
    # scope path -> producible facts there (see module docstring)
    facts: Dict[str, Set[Fact]] = field(default_factory=dict)

    def may_start(self, path: str) -> bool:
        return bool(self.startable.get(path))


@dataclass(frozen=True)
class _Requirement:
    """What one chosen source alternative demands of its producer."""

    producer: str
    # acceptable final outputs of the producer (None = unconstrained)
    finals: Optional[FrozenSet[str]]
    # acceptable input sets of the producer (None = unconstrained)
    inputs: Optional[FrozenSet[str]]


class _LivenessPass:
    def __init__(self, script: Script, root_task: str, input_set: str) -> None:
        self.script = script
        self.root = FlowNode(script.tasks[root_task], script, None)
        self.input_set = input_set
        # scope path -> producible facts in that scope
        self.facts: Dict[str, Set[Fact]] = {}
        # task path -> startable set names
        self.startable: Dict[str, Set[str]] = {
            node.path: set() for node in self.root.walk()
        }
        # (scope, producer local) -> has the producer a repeat output?
        self._node_at: Dict[str, FlowNode] = {
            node.path: node for node in self.root.walk()
        }

    # -- fact helpers -----------------------------------------------------------

    def _add_fact(self, scope: str, fact: Fact) -> bool:
        bucket = self.facts.setdefault(scope, set())
        if fact in bucket:
            return False
        bucket.add(fact)
        return True

    # -- satisfiability ---------------------------------------------------------

    def _source_options(
        self, node: FlowNode, source: Source, scope_owner: FlowNode, scope: str
    ) -> Optional[_Requirement]:
        """Requirement if ``source`` is producible right now, else None."""
        facts = self.facts.get(scope, set())
        producer_class = scope_owner.sibling_class(source.task_name)
        if producer_class is None:
            return None  # unknown producer: typeflow's E101, never satisfiable
        if source.guard_kind is GuardKind.INPUT:
            if (source.task_name, "input", source.guard_name) not in facts:
                return None
            spec = producer_class.input_set(source.guard_name)
            if spec is None:
                return None
            if source.object_name is not None and spec.object(source.object_name) is None:
                return None
            return _Requirement(
                source.task_name, None, frozenset({source.guard_name})
            )
        if source.guard_kind is GuardKind.OUTPUT:
            out = producer_class.output(source.guard_name)
            if out is None:
                return None
            if (source.task_name, "output", source.guard_name) not in facts:
                return None
            if source.object_name is not None and out.object(source.object_name) is None:
                return None
            if out.kind in (OutputKind.OUTCOME, OutputKind.ABORT):
                finals: Optional[FrozenSet[str]] = frozenset({source.guard_name})
            else:
                # marks precede non-abort termination and a class with marks
                # declares no aborts (schema rule); repeats precede any final
                finals = None
            return _Requirement(source.task_name, finals, None)
        # ANY guard: any producible outcome/mark carrying the object
        candidates = [
            out
            for out in producer_class.outputs
            if out.kind in (OutputKind.OUTCOME, OutputKind.MARK)
            and source.object_name is not None
            and out.object(source.object_name) is not None
            and (source.task_name, "output", out.name) in facts
        ]
        if not candidates:
            return None
        if any(out.kind is OutputKind.MARK for out in candidates):
            finals = None
        else:
            finals = frozenset(out.name for out in candidates)
        return _Requirement(source.task_name, finals, None)

    def _conjunction_satisfiable(
        self,
        node: FlowNode,
        bindings: Sequence[Sequence[Source]],
        scope_owner: FlowNode,
        scope: str,
    ) -> bool:
        """Can every binding pick a producible alternative consistently?

        Consistency: per producer, the intersection of demanded final
        outputs must be non-empty (a task terminates once per round), and —
        unless the producer has a repeat output, letting it restart with a
        different set — the intersection of demanded input sets likewise.
        """
        options: List[List[_Requirement]] = []
        for sources in bindings:
            viable = []
            for source in sources:
                req = self._source_options(node, source, scope_owner, scope)
                if req is not None:
                    viable.append(req)
            if not viable:
                return False
            options.append(viable)

        budget = [_COMBO_CAP]

        def producer_repeats(local: str) -> bool:
            cls = scope_owner.sibling_class(local)
            return cls is not None and bool(cls.outputs_of_kind(OutputKind.REPEAT))

        def search(
            index: int,
            finals: Dict[str, FrozenSet[str]],
            inputs: Dict[str, FrozenSet[str]],
        ) -> bool:
            if budget[0] <= 0:
                return True  # cap hit: accept (over-approximate, stays sound)
            if index == len(options):
                return True
            for req in options[index]:
                budget[0] -= 1
                new_finals = finals
                if req.finals is not None:
                    merged = finals.get(req.producer, req.finals) & req.finals
                    if not merged:
                        continue
                    new_finals = dict(finals)
                    new_finals[req.producer] = merged
                new_inputs = inputs
                if req.inputs is not None and not producer_repeats(req.producer):
                    merged_in = inputs.get(req.producer, req.inputs) & req.inputs
                    if not merged_in:
                        continue
                    new_inputs = dict(inputs)
                    new_inputs[req.producer] = merged_in
                if search(index + 1, new_finals, new_inputs):
                    return True
            return False

        return search(0, {}, {})

    def _set_satisfiable(self, node: FlowNode, binding: InputSetBinding) -> bool:
        scope_owner = node.parent if node.parent is not None else None
        if scope_owner is None:
            return True  # root: environment supplies the inputs
        groups: List[Sequence[Source]] = [obj.sources for obj in binding.objects]
        groups.extend(notif.sources for notif in binding.notifications)
        return self._conjunction_satisfiable(node, groups, scope_owner, node.scope)

    # -- the fixpoint -----------------------------------------------------------

    def run(self) -> None:
        changed = True
        while changed:
            changed = False
            for node in self.root.walk():
                changed |= self._step(node)

    def _candidate_sets(self, node: FlowNode) -> List[InputSetBinding]:
        if node.decl.input_sets:
            return list(node.decl.input_sets)
        if node.taskclass is not None and not node.taskclass.input_sets:
            # no input sets at all: starts unconditionally with its parent
            return [InputSetBinding("")]
        return []

    def _step(self, node: FlowNode) -> bool:
        changed = False
        startable = self.startable[node.path]
        if node.parent is None:
            chosen = self._root_input_set()
            if chosen not in startable:
                startable.add(chosen)
                changed = True
        elif self.startable[node.parent.path]:
            for binding in self._candidate_sets(node):
                if binding.name in startable:
                    continue
                if self._set_satisfiable(node, binding):
                    startable.add(binding.name)
                    changed = True
        if not startable:
            return changed
        # publish INPUT facts
        for set_name in startable:
            changed |= self._add_fact(node.scope, (node.local, "input", set_name))
            if node.is_compound:
                changed |= self._add_fact(node.path, (node.local, "input", set_name))
        # publish outputs
        if node.taskclass is None:
            return changed
        if not node.is_compound:
            finals = node.taskclass.final_outputs()
            markable = not finals or any(
                out.kind is not OutputKind.ABORT for out in finals
            )
            for out in node.taskclass.outputs:
                if out.kind is OutputKind.MARK and not markable:
                    continue
                changed |= self._add_fact(node.scope, (node.local, "output", out.name))
        else:
            decl = node.decl  # CompoundTaskDecl
            for binding in decl.outputs:
                fact = (node.local, "output", binding.name)
                if fact in self.facts.get(node.scope, set()):
                    continue
                groups: List[Sequence[Source]] = [
                    obj.sources for obj in binding.objects
                ]
                groups.extend(notif.sources for notif in binding.notifications)
                if self._conjunction_satisfiable(node, groups, node, node.path):
                    changed |= self._add_fact(node.scope, fact)
        return changed

    def _root_input_set(self) -> str:
        taskclass = self.root.taskclass
        if taskclass is None or not taskclass.input_sets:
            return ""
        if taskclass.input_set(self.input_set) is not None:
            return self.input_set
        return taskclass.input_sets[0].name

    # -- findings ----------------------------------------------------------------

    def report(self) -> LivenessResult:
        result = LivenessResult(
            root_task=self.root.local,
            input_set=self._root_input_set(),
            startable=self.startable,
            root=self.root,
            facts=self.facts,
        )

        def finding(code: str, location: str, message: str) -> None:
            spec = DIAGNOSTICS.require(code)
            result.findings.append(Finding(code, spec.severity, location, message))

        for node in self.root.walk():
            startable = self.startable[node.path]
            if node.parent is None:
                continue
            parent_alive = bool(self.startable[node.parent.path])
            if not startable:
                result.dead_tasks.append(node.path)
                if parent_alive:
                    # only the topmost dead task is reported; its descendants
                    # are dead as a consequence, not as separate bugs
                    finding(
                        "E201",
                        node.path,
                        "task can never become ready: every alternative source "
                        "of every input set is transitively unsatisfiable",
                    )
                continue
            for binding in node.decl.input_sets:
                if binding.name not in startable:
                    finding(
                        "E203",
                        node.path,
                        f"input set {binding.name!r} can never be satisfied; "
                        f"the task only starts via "
                        f"{', '.join(sorted(repr(s) for s in startable))}",
                    )
            if node.is_compound and node.taskclass is not None:
                produced = self.facts.get(node.scope, set())
                for binding in node.decl.outputs:
                    if (node.local, "output", binding.name) not in produced:
                        finding(
                            "E204",
                            node.path,
                            f"output mapping {binding.name!r} can never fire",
                        )

        # root outcomes
        root_class = self.root.taskclass
        if root_class is not None:
            produced = self.facts.get("", set())
            for out in root_class.final_outputs():
                if (self.root.local, "output", out.name) in produced or (
                    not self.root.is_compound
                ):
                    result.reachable_outcomes.add(out.name)
                else:
                    result.unreachable_outcomes.append(out.name)
                    finding(
                        "E202",
                        self.root.path,
                        f"root outcome {out.name!r} is statically unreachable "
                        f"through the output mapping",
                    )
            if root_class.final_outputs() and not result.reachable_outcomes:
                finding(
                    "E200",
                    self.root.path,
                    "no final output of the root task is statically "
                    "producible: the workflow is guaranteed to stall",
                )
        return result


def check_liveness(
    script: Script,
    root_task: Optional[str] = None,
    input_set: str = "main",
) -> LivenessResult:
    """Run the static liveness pass; see :class:`LivenessResult`.

    With several top-level tasks and no ``root_task``, each top-level
    compound is analysed independently and the findings are merged (the
    per-root details come from the first).
    """
    if root_task is None:
        roots = list(script.tasks)
    else:
        if root_task not in script.tasks:
            raise KeyError(f"script has no top-level task {root_task!r}")
        roots = [root_task]
    results: List[LivenessResult] = []
    for name in roots:
        run = _LivenessPass(script, name, input_set)
        run.run()
        results.append(run.report())
    if not results:
        return LivenessResult(root_task="", input_set=input_set)
    merged = results[0]
    merged.roots = [r.root for r in results if r.root is not None]
    for extra in results[1:]:
        merged.findings.extend(extra.findings)
        merged.startable.update(extra.startable)
        merged.dead_tasks.extend(extra.dead_tasks)
        for scope, facts in extra.facts.items():
            merged.facts.setdefault(scope, set()).update(facts)
    return merged
