"""Finding model shared by every static checker.

A :class:`Finding` is one diagnostic: a stable registered code, a severity,
a script location (task path, declaration name, or ``a <-> b`` pair for
interference findings) and a human message.  :class:`StaticReport` is the
unified result of :func:`repro.analysis.analyze_script`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from .liveness import LivenessResult


class Severity(enum.Enum):
    """Finding severity, ordered most severe first."""

    ERROR = "error"
    WARNING = "warning"
    NOTE = "note"

    @property
    def rank(self) -> int:
        return {"error": 0, "warning": 1, "note": 2}[self.value]

    @property
    def sarif_level(self) -> str:
        """SARIF 2.1.0 ``level`` values happen to match our names."""
        return self.value


@dataclass(frozen=True)
class Finding:
    """One static-analysis diagnostic."""

    code: str
    severity: Severity
    location: str
    message: str
    # optional structured payload (e.g. the two task paths of a race pair)
    related: Tuple[str, ...] = ()

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.code} [{self.severity.value}] {self.location}: {self.message}"

    def as_dict(self) -> Dict[str, object]:
        data: Dict[str, object] = {
            "code": self.code,
            "severity": self.severity.value,
            "location": self.location,
            "message": self.message,
        }
        if self.related:
            data["related"] = list(self.related)
        return data


@dataclass
class StaticReport:
    """Everything :func:`repro.analysis.analyze_script` found."""

    source_name: str = "<script>"
    findings: List[Finding] = field(default_factory=list)
    liveness: Optional["LivenessResult"] = None

    def errors(self) -> List[Finding]:
        return [f for f in self.findings if f.severity is Severity.ERROR]

    def warnings(self) -> List[Finding]:
        return [f for f in self.findings if f.severity is Severity.WARNING]

    def by_code(self, code: str) -> List[Finding]:
        return [f for f in self.findings if f.code == code]

    @property
    def ok(self) -> bool:
        """True when no error-severity finding was produced."""
        return not self.errors()

    def render_text(self) -> str:
        if not self.findings:
            return f"{self.source_name}: clean — no findings"
        lines = [
            f"{self.source_name}: {len(self.errors())} error(s), "
            f"{len(self.warnings())} warning(s)"
        ]
        lines.extend(f"  {finding}" for finding in self.findings)
        return "\n".join(lines)

    def as_dict(self) -> Dict[str, object]:
        return {
            "source": self.source_name,
            "errors": len(self.errors()),
            "warnings": len(self.warnings()),
            "findings": [f.as_dict() for f in self.findings],
        }
