"""Locating analysable scripts: ``.wf`` text files and Python-embedded ones.

The repository's examples and workloads embed their script texts as
module-level ``SCRIPT`` / ``SCRIPT_TEXT`` constants; CI runs the analyser
over all of them (``repro lint examples/*.py``).  This module loads such a
``.py`` file *as a module* (its ``__main__`` guard keeps it from running)
and yields every embedded script, so the CLI, the CI job and the
known-findings baseline test share one extraction rule.
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path
from typing import Iterator, List, Optional, Tuple

_EMBED_SUFFIXES = ("SCRIPT", "SCRIPT_TEXT")


def iter_embedded_scripts(path: str) -> Iterator[Tuple[str, str]]:
    """Yield ``(name, script_text)`` for every embedded script in ``path``.

    A ``.py`` file contributes each module-level string attribute whose name
    is or ends with ``SCRIPT``/``SCRIPT_TEXT``; any other file contributes
    its whole contents under its own name.
    """
    file = Path(path)
    if file.suffix != ".py":
        yield file.name, file.read_text(encoding="utf-8")
        return
    dotted = _package_module_name(file)
    if dotted is not None:
        # a module inside an importable package (e.g. repro.workloads.*):
        # relative imports only resolve through the real import machinery
        module = importlib.import_module(dotted)
        yield from _embedded_attrs(file, module)
        return
    module_name = f"_repro_embedded_{file.stem}"
    spec = importlib.util.spec_from_file_location(module_name, file)
    if spec is None or spec.loader is None:  # pragma: no cover - defensive
        raise ImportError(f"cannot load {path!r}")
    module = importlib.util.module_from_spec(spec)
    # registered so dataclasses/pickling inside the example resolve, removed
    # right after: extraction must not leave import side effects behind
    sys.modules[module_name] = module
    try:
        spec.loader.exec_module(module)
        yield from _embedded_attrs(file, module)
    finally:
        sys.modules.pop(module_name, None)


def _package_module_name(file: Path) -> Optional[str]:
    """Dotted module name for ``file`` if it sits inside a package whose root
    is importable from ``sys.path``; ``None`` for standalone scripts."""
    parts = [file.stem]
    directory = file.resolve().parent
    while (directory / "__init__.py").exists():
        parts.append(directory.name)
        directory = directory.parent
    if len(parts) == 1:
        return None
    if str(directory) not in [str(Path(p).resolve()) for p in sys.path if p]:
        return None
    return ".".join(reversed(parts))


def _embedded_attrs(file: Path, module) -> Iterator[Tuple[str, str]]:
    for attr in sorted(vars(module)):
        if not attr.upper().endswith(_EMBED_SUFFIXES):
            continue
        value = getattr(module, attr)
        if isinstance(value, str) and value.strip():
            yield f"{file.name}:{attr}", value


def load_scripts(paths: List[str]) -> List[Tuple[str, str]]:
    """Flatten :func:`iter_embedded_scripts` over many paths."""
    found: List[Tuple[str, str]] = []
    for path in paths:
        found.extend(iter_embedded_scripts(path))
    return found
