"""Static lock-order analysis (``E403``).

An atomic task (one with an abort outcome, §4.2) runs as a transaction:
under strict two-phase locking (:mod:`repro.txn.locks`) its implementation
locks the objects it operates on and holds them to commit/abort.  The
objects a task operates on are exactly its declared input objects, and the
natural (and documented) acquisition order is their declaration order in
the input set — the same order :class:`~repro.engine.context.TaskContext`
presents them in.

Two atomic tasks that the concurrent engine may co-schedule and that lock
two shared objects in opposite declaration orders can therefore deadlock:
A holds x and waits for y while B holds y and waits for x.  The runtime
:class:`~repro.txn.locks.LockManager` detects the waits-for cycle only
once it has formed (``DeadlockError``); this pass reports the possibility
statically, before anything runs.

Method (reusing the interference machinery):

* *may-overlap* — same happens-before criterion as ``W301``: neither
  task's end reaches the other's start in the conservative HB graph;
* *acquisition profile* — per startable input set, the task's input
  objects resolved to their origins (:class:`_OriginResolver` — the same
  origin is the same lockable object) in declaration order, first
  occurrence kept;
* *inversion* — a pair of origins ``x``, ``y`` with ``x`` before ``y`` in
  one task's profile and ``y`` before ``x`` in the other's.

This detects 2-cycles (AB-BA inversions).  Longer cycles through three or
more tasks are not enumerated statically — the dynamic sanitizer
(:mod:`repro.analysis.dynamic`) still catches them at run time, and every
pair of adjacent tasks on such a cycle shares two objects in inverted
order whenever the cycle is closed by declaration order, so the common
cases surface here too.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

import networkx as nx

from ..core.schema import Script
from .findings import Finding
from .interference import _END, _START, Origin, _OriginResolver, _happens_before
from .liveness import FlowNode, LivenessResult, check_liveness
from .registry import DIAGNOSTICS

#: one acquisition profile: origins in declaration order (deduplicated)
Profile = Tuple[Origin, ...]


def acquisition_profiles(
    node: FlowNode, liveness: LivenessResult, resolver: _OriginResolver
) -> List[Profile]:
    """Every lock-acquisition order ``node`` can exhibit: one profile per
    startable input set, input objects in declaration order, each resolved
    to its origin set (a multi-origin alternative contributes every origin
    at that position — over-approximate, sound for a may-analysis)."""
    if node.parent is None:
        return []
    profiles: List[Profile] = []
    startable = liveness.startable.get(node.path, set())
    for binding in node.decl.input_sets:
        if binding.name not in startable:
            continue
        ordered: List[Origin] = []
        seen: Set[Origin] = set()
        for obj in binding.objects:
            position: Set[Origin] = set()
            for source in obj.sources:
                position.update(resolver.source_origins(node.parent, source))
            for origin in sorted(position):
                if origin not in seen:
                    seen.add(origin)
                    ordered.append(origin)
        if len(ordered) >= 2:
            profiles.append(tuple(ordered))
    return profiles


def _inverted_pair(
    a_profiles: List[Profile], b_profiles: List[Profile]
) -> Optional[Tuple[Origin, Origin]]:
    """A pair of origins acquired in opposite orders, if any."""
    for pa in a_profiles:
        index_a = {origin: i for i, origin in enumerate(pa)}
        for pb in b_profiles:
            index_b = {origin: i for i, origin in enumerate(pb)}
            shared = [o for o in pa if o in index_b]
            for i, x in enumerate(shared):
                for y in shared[i + 1 :]:
                    if (index_a[x] < index_a[y]) != (index_b[x] < index_b[y]):
                        first, second = sorted((x, y))
                        return first, second
    return None


def check_lockorder(
    script: Script, liveness: Optional[LivenessResult] = None
) -> List[Finding]:
    """All ``E403`` findings: potential AB-BA deadlocks between atomic
    tasks the concurrent engine may co-schedule."""
    if liveness is None:
        liveness = check_liveness(script)
    graph = _happens_before(liveness)
    resolver = _OriginResolver(liveness)
    spec = DIAGNOSTICS.require("E403")
    findings: List[Finding] = []
    for root in liveness.roots:
        atomic = [
            node
            for node in root.walk()
            if not node.is_compound
            and node.taskclass is not None
            and node.taskclass.is_atomic
            and liveness.may_start(node.path)
        ]
        reach: Dict[str, Set] = {
            node.path: nx.descendants(graph, (_END, node.path))
            for node in atomic
            if (_END, node.path) in graph
        }
        profiles = {
            node.path: acquisition_profiles(node, liveness, resolver)
            for node in atomic
        }
        for i, a in enumerate(atomic):
            for b in atomic[i + 1 :]:
                if (_START, b.path) in reach.get(a.path, set()):
                    continue  # ordered: a always ends before b starts
                if (_START, a.path) in reach.get(b.path, set()):
                    continue
                inverted = _inverted_pair(profiles[a.path], profiles[b.path])
                if inverted is None:
                    continue
                (ox, nx_), (oy, ny) = inverted
                findings.append(
                    Finding(
                        code="E403",
                        severity=spec.severity,
                        location=f"{a.path} <-> {b.path}",
                        message=(
                            "atomic tasks may run concurrently and lock "
                            f"{nx_!r} (from {ox}) and {ny!r} (from {oy}) in "
                            "opposite declaration order; under strict 2PL "
                            "this can deadlock at run time "
                            "(LockManager DeadlockError)"
                        ),
                        related=(a.path, b.path),
                    )
                )
    return findings
