"""Effect/recovery analysis (``W401`` / ``E402`` / ``W404``).

The reliability half of the language: which of a task's effects survive a
redispatch, and which abort paths can leave committed effects behind.

Effect classification follows §4.2's atomicity convention: a task class
with at least one abort outcome is *atomic* — its implementation runs as a
transaction, so its effects either commit exactly once or roll back.  Every
other task's effects are *bare*: the execution service's at-least-once
dispatch (timeout redispatch, hedging — :mod:`repro.services.execution`)
may run the implementation twice, and the journal deduplicates only the
*reply*, never the side effects (see the ``worker.execute.post`` crash
point in :mod:`repro.services.worker`).

Three checks, all computed over the liveness pass's may-startable relation
(so dead code is not reported twice):

* ``W401`` — a reachable non-atomic task with a bound implementation: its
  bare effects can be applied twice under redispatch/hedging.  This is
  deliberately broad (implementations are opaque, any of them could have
  effects), which is what makes the dynamic sanitizer's duplicate-effect
  findings (:mod:`repro.analysis.dynamic`) always statically predicted.
  Built-in ``system.timer`` tasks never reach a worker and are exempt.
* ``E402`` — a compound whose abort outcome can fire in an execution where
  an atomic constituent has already committed, while no other constituent
  consumes that constituent's committed results (no compensation hook, in
  the sense of the trip workload's ``flightCancellation`` consuming
  ``plane of task flightReservation``): the abort pretends nothing
  happened while committed effects stand.
* ``W404`` — a ``deadline`` implementation property that the execution
  service's ``_arm_deadlines`` will never honour (no abort outcome to fire
  it into), silently ignore (unparsable number), or fire degenerately (a
  non-positive delay lapses the instant it is armed).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Set

from ..core.schema import OutputKind, Script, Source
from .findings import Finding
from .liveness import FlowNode, LivenessResult, check_liveness
from .registry import DIAGNOSTICS

#: implementation codes the execution service handles itself — the task
#: never reaches a worker, so at-least-once duplication cannot touch it
_SERVICE_CODES = frozenset({"system.timer"})


def check_recovery(
    script: Script, liveness: Optional[LivenessResult] = None
) -> List[Finding]:
    """All recovery-safety findings: ``W401``, ``E402``, ``W404``."""
    if liveness is None:
        liveness = check_liveness(script)
    findings: List[Finding] = []
    for root in liveness.roots:
        for node in root.walk():
            findings.extend(_check_bare_effects(node, liveness))
            findings.extend(_check_deadline(node))
            if node.is_compound:
                findings.extend(_check_abort_compensation(node, liveness))
    return findings


# -- W401: bare effects under at-least-once dispatch ---------------------------


def _check_bare_effects(node: FlowNode, liveness: LivenessResult) -> List[Finding]:
    if node.is_compound or node.taskclass is None:
        return []
    if not liveness.may_start(node.path):
        return []  # dead task: E201 already covers it
    if node.taskclass.is_atomic:
        return []  # transactional effects: commit-or-rollback, applied once
    code = node.decl.implementation.code
    if code is None or code in _SERVICE_CODES:
        return []
    spec = DIAGNOSTICS.require("W401")
    return [
        Finding(
            code="W401",
            severity=spec.severity,
            location=node.path,
            message=(
                f"non-atomic task bound to {code!r} is reachable under "
                "at-least-once dispatch: a redispatch or hedge may run the "
                "implementation twice and only the reply is deduplicated, "
                "not its effects — declare an abort outcome to make the "
                "task atomic, or make the implementation idempotent"
            ),
        )
    ]


# -- W404: degenerate deadlines ------------------------------------------------


def _check_deadline(node: FlowNode) -> List[Finding]:
    raw = node.decl.implementation.get("deadline")
    if raw is None or node.taskclass is None:
        return []
    spec = DIAGNOSTICS.require("W404")

    def finding(message: str) -> Finding:
        return Finding("W404", spec.severity, node.path, message)

    if not node.taskclass.outputs_of_kind(OutputKind.ABORT):
        return [
            finding(
                f"deadline {raw!r} can never arm: the task class declares no "
                "abort outcome for the expiry to fire into"
            )
        ]
    try:
        delay = float(raw)
    except (TypeError, ValueError):
        return [
            finding(
                f"deadline {raw!r} is not a number and is silently ignored "
                "by the execution service"
            )
        ]
    if delay <= 0:
        return [
            finding(
                f"deadline {raw!r} is non-positive: it lapses the instant it "
                "is armed, aborting the task before inputs can arrive"
            )
        ]
    return []


# -- E402: abort paths over committed sibling effects --------------------------


def _source_demands_abort(source: Source, constituent: FlowNode) -> bool:
    """True when ``source`` can only fire via ``constituent``'s abort."""
    if source.task_name != constituent.local or constituent.taskclass is None:
        return False
    if source.guard_kind.value != "output" or source.guard_name is None:
        return False
    out = constituent.taskclass.output(source.guard_name)
    return out is not None and out.kind is OutputKind.ABORT


def _conjunct_avoidable(
    sources: Sequence[Source],
    constituent: FlowNode,
    producible: Set,
) -> bool:
    """Can this conjunct be satisfied without demanding the constituent's
    abort?  (Producibility per the liveness facts of the enclosing scope.)"""
    for source in sources:
        if _source_demands_abort(source, constituent):
            continue
        if source.guard_kind.value == "input":
            fact = (source.task_name, "input", source.guard_name)
            if fact in producible:
                return True
        elif source.guard_name is not None:
            fact = (source.task_name, "output", source.guard_name)
            if fact in producible:
                return True
        else:
            # unguarded: any producible outcome/mark of the producer
            if any(
                kind == "output" and producer == source.task_name
                for producer, kind, _name in producible
            ):
                return True
    return False


def _consumes_commit(node: FlowNode, constituent: FlowNode) -> bool:
    """Does ``node`` (a sibling) consume a committed (non-abort) result of
    ``constituent``?  Such a consumer is the compensation hook: it observes
    the committed effects and can undo them (trip's ``flightCancellation``
    consuming ``plane of task flightReservation``)."""
    for binding in node.decl.input_sets:
        groups: List[Sequence[Source]] = [obj.sources for obj in binding.objects]
        groups.extend(notif.sources for notif in binding.notifications)
        for sources in groups:
            for source in sources:
                if source.task_name != constituent.local:
                    continue
                if not _source_demands_abort(source, constituent):
                    return True
    return False


def _check_abort_compensation(
    compound: FlowNode, liveness: LivenessResult
) -> List[Finding]:
    if compound.taskclass is None or not liveness.may_start(compound.path):
        return []
    producible = liveness.facts.get(compound.scope, set())
    inner = liveness.facts.get(compound.path, set())
    abort_bindings = [
        binding
        for binding in compound.decl.outputs
        if (spec := compound.taskclass.output(binding.name)) is not None
        and spec.kind is OutputKind.ABORT
        and (compound.local, "output", binding.name) in producible
    ]
    if not abort_bindings:
        return []
    spec404 = DIAGNOSTICS.require("E402")
    findings: List[Finding] = []
    for constituent in compound.children:
        if constituent.is_compound or constituent.taskclass is None:
            continue
        if not constituent.taskclass.is_atomic:
            continue  # bare effects: W401's department, not E402's
        if not liveness.may_start(constituent.path):
            continue
        commits = [
            out
            for out in constituent.taskclass.final_outputs()
            if out.kind is OutputKind.OUTCOME
            and (constituent.local, "output", out.name) in inner
        ]
        if not commits:
            continue  # the constituent can never commit
        if any(
            sibling is not constituent and _consumes_commit(sibling, constituent)
            for sibling in compound.children
        ):
            continue  # a compensation hook observes the committed result
        uncompensated = []
        for binding in abort_bindings:
            groups: List[Sequence[Source]] = [
                obj.sources for obj in binding.objects
            ]
            groups.extend(notif.sources for notif in binding.notifications)
            # the abort can fire independently of the constituent's fate
            # when every conjunct has a producible alternative that does
            # not demand the constituent's abort
            if all(
                _conjunct_avoidable(sources, constituent, inner)
                for sources in groups
            ):
                uncompensated.append(binding.name)
        if not uncompensated:
            continue
        names = ", ".join(repr(n) for n in sorted(uncompensated))
        findings.append(
            Finding(
                code="E402",
                severity=spec404.severity,
                location=f"{compound.path} -> {constituent.path}",
                message=(
                    f"abort outcome(s) {names} can fire after atomic "
                    f"constituent {constituent.local!r} has committed, and "
                    "no sibling consumes its committed results: the abort "
                    "claims no effects happened while committed effects "
                    "stand uncompensated"
                ),
                related=(compound.path, constituent.path),
            )
        )
    return findings
