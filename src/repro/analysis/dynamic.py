"""Runtime sanitizer: the dynamic half of the recovery/concurrency analysis.

The static passes (:mod:`repro.analysis.interference`,
:mod:`repro.analysis.recovery`, :mod:`repro.analysis.lockorder`) are
*may*-analyses — they over-approximate what the engine can do.  This module
watches what the engine actually *does* and checks the containment the
analyzer promises: **every dynamic finding must be predicted by a static
one** (dynamic ⊆ static).  A dynamic finding with no static counterpart is
an analyzer bug, and ``repro analyze --sanitize`` / ``repro sanitize`` exit
non-zero on it.

Three detectors, one :class:`Sanitizer`:

* **races** (dynamic ``W301``) — vector clocks threaded through the
  instance tree.  A task's clock is the join of its parent compound's
  clock and the clocks of every event its chosen input set matched, plus
  one tick of its own; events are stamped with their publisher's clock.
  Two tasks that start with *incomparable* clocks while holding the same
  object reference (same provenance token) raced on it.
* **lock inversions and deadlocks** (dynamic ``E403``) — locksets threaded
  through :class:`~repro.txn.locks.LockManager`.  Acquisition-order edges
  are recorded per transaction; an AB-BA pair of edges from two different
  tasks is an inversion, and a runtime ``DeadlockError`` is the same
  finding caught the hard way.
* **duplicate effects** (dynamic ``W401``) — no hooks at all: the
  :class:`~repro.services.worker.TaskWorker` execution ledger is scanned
  after the run for ``(instance, path, execution_index)`` triples executed
  more than once.  A duplicate on a non-atomic task is a bare effect
  applied twice (the journal deduplicates only the reply).

The sanitizer attaches by *instance-level method wrapping* — it replaces
bound methods on one tree / one lock manager.  Unsanitized runs execute
the original methods with zero added branches, which is what keeps the
"0 overhead when disabled" guarantee honest.

All tree hooks run under the instance-tree lock, so the clock tables need
no locking of their own; the lock-manager hooks piggyback on the manager's
callers the same way.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Mapping, Optional, Sequence, Set, Tuple

from ..core.schema import CompoundTaskDecl, Script, TaskClass
from ..core.selection import source_matches
from ..core.values import ObjectRef
from ..txn.locks import DeadlockError, LockManager, LockMode
from .findings import StaticReport

#: provenance token identifying one shared object reference: producer,
#: producing outcome/input set, class, and the name the producer published
#: it under — the same granularity as the static analysis's origins, which
#: distinguish sibling objects of one event (and distinct environment
#: inputs) by name
AccessToken = Tuple[Optional[str], Optional[str], str, Optional[str]]


class VectorClock:
    """A plain path→counter vector clock (mutable, copy-on-share)."""

    __slots__ = ("clock",)

    def __init__(self, clock: Optional[Dict[str, int]] = None) -> None:
        self.clock: Dict[str, int] = dict(clock) if clock else {}

    def copy(self) -> "VectorClock":
        return VectorClock(self.clock)

    def join(self, other: Optional["VectorClock"]) -> None:
        if other is None:
            return
        for path, tick in other.clock.items():
            if tick > self.clock.get(path, 0):
                self.clock[path] = tick

    def increment(self, path: str) -> None:
        self.clock[path] = self.clock.get(path, 0) + 1

    def leq(self, other: "VectorClock") -> bool:
        return all(tick <= other.clock.get(path, 0) for path, tick in self.clock.items())

    def concurrent(self, other: "VectorClock") -> bool:
        # single pass over both clocks (this runs O(accesses^2) per token
        # on fan-heavy workloads, so it is the sanitizer's hottest loop)
        mine, theirs = self.clock, other.clock
        self_ahead = other_ahead = False
        get = theirs.get
        for path, tick in mine.items():
            delta = tick - get(path, 0)
            if delta > 0:
                if other_ahead:
                    return True
                self_ahead = True
            elif delta < 0:
                if self_ahead:
                    return True
                other_ahead = True
        if self_ahead and not other_ahead:
            get = mine.get
            for path, tick in theirs.items():
                if tick > get(path, 0):
                    return True
        return False

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"VC({self.clock!r})"


@dataclass(frozen=True)
class DynamicFinding:
    """One runtime observation, tagged with the static code that must
    predict it."""

    kind: str                    # "race" | "lock-inversion" | "deadlock" | "duplicate-effect"
    code: str                    # the static code expected to cover it
    subjects: Tuple[str, ...]    # task paths involved (sorted)
    detail: str

    def render(self) -> str:
        return f"[{self.kind} -> {self.code}] {' <-> '.join(self.subjects)}: {self.detail}"


class Sanitizer:
    """Vector-clock / lockset observer for one (or several) engine runs.

    Attach with :meth:`attach_tree` / :meth:`attach_locks`, run the
    workflow, then read :attr:`findings` (plus :meth:`scan_workers` for
    duplicate effects) and gate with :meth:`check_coverage`.
    """

    def __init__(self) -> None:
        self.findings: List[DynamicFinding] = []
        self._node_vc: Dict[str, VectorClock] = {}
        self._event_vc: Dict[Tuple[str, int], VectorClock] = {}
        self._accesses: Dict[AccessToken, List[Tuple[str, VectorClock]]] = {}
        # ref -> (name it was published under, publisher's clock); keyed by
        # id() but holding the ref itself so the id cannot be recycled while
        # the entry lives
        self._ref_names: Dict[int, Tuple[ObjectRef, str, VectorClock]] = {}
        self._race_details: Dict[AccessToken, str] = {}
        self._race_pairs: Set[Tuple[str, str]] = set()
        # lock bookkeeping
        self._txn_paths: Dict[str, str] = {}
        self._held_order: Dict[str, List[str]] = {}
        self._lock_edges: Dict[Tuple[str, str], Set[str]] = {}
        self._reported_inversions: Set[FrozenSet[str]] = set()
        self._reported_duplicates: Set[Tuple[str, str, int]] = set()
        self.trees_attached = 0
        self.managers_attached = 0

    # -- instance-tree hooks (races) ----------------------------------------------

    def attach_tree(self, tree) -> None:
        """Wrap ``tree._publish`` and ``tree._start_node`` in place."""
        original_publish = tree._publish
        original_start = tree._start_node
        sanitizer = self

        def publish(scope, node, kind, name, objects, local_name=None):
            event = original_publish(
                scope, node, kind, name, objects, local_name=local_name
            )
            vc = sanitizer._node_vc.get(node.path)
            stamped = vc.copy() if vc is not None else VectorClock()
            sanitizer._event_vc[(scope.path, event.seq)] = stamped
            for obj_name, ref in objects.items():
                if isinstance(ref, ObjectRef):
                    sanitizer._ref_names.setdefault(
                        id(ref), (ref, obj_name, stamped)
                    )
            return event

        def start_node(node, input_set, inputs):
            sanitizer._on_start(node, input_set, inputs)
            original_start(node, input_set, inputs)

        tree._publish = publish
        tree._start_node = start_node
        self.trees_attached += 1

    def _on_start(
        self, node, input_set: str, inputs: Mapping[str, ObjectRef]
    ) -> None:
        vc = VectorClock()
        if node.parent is not None:
            vc.join(self._node_vc.get(node.parent.path))
        # object bindings: join the publisher clocks of the refs actually
        # consumed (exact dataflow ordering, no event scan)
        ref_names = self._ref_names
        for ref in inputs.values():
            entry = ref_names.get(id(ref))
            if entry is not None and entry[0] is ref:
                vc.join(entry[2])
        # notification bindings never surface a ref in the chosen inputs, so
        # recover their ordering by matching the scope history (rare path —
        # most bindings carry only objects)
        binding = next(
            (b for b in node.decl.input_sets if b.name == input_set), None
        )
        if binding is not None and binding.notifications:
            by_producer: Dict[str, List] = {}
            for notif in binding.notifications:
                for s in notif.sources:
                    by_producer.setdefault(s.task_name, []).append(s)
            scope = node.outer_scope
            event_vc = self._event_vc
            for event in list(scope.events):
                candidates = by_producer.get(event.producer)
                if candidates and any(
                    source_matches(s, event) for s in candidates
                ):
                    vc.join(event_vc.get((scope.path, event.seq)))
        vc.increment(node.path)
        self._node_vc[node.path] = vc
        if not node.is_compound:
            self._record_accesses(node.path, vc, inputs)

    def _record_accesses(
        self, path: str, vc: VectorClock, inputs: Mapping[str, ObjectRef]
    ) -> None:
        ref_names = self._ref_names
        accesses = self._accesses
        race_pairs = self._race_pairs
        findings = self.findings
        for ref in inputs.values():
            if not isinstance(ref, ObjectRef) or ref.class_name == "<notification>":
                continue
            named = ref_names.get(id(ref))
            produced_as = named[1] if named is not None and named[0] is ref else None
            token: AccessToken = (
                ref.produced_by, ref.via, ref.class_name, produced_as,
            )
            history = accesses.setdefault(token, [])
            for other_path, other_vc in history:
                if other_path == path:
                    continue
                pair = (
                    (other_path, path) if other_path < path else (path, other_path)
                )
                if pair in race_pairs:
                    continue
                if vc.concurrent(other_vc):
                    race_pairs.add(pair)
                    detail = self._race_details.get(token)
                    if detail is None:
                        detail = (
                            f"both held {token[2]} produced by "
                            f"{token[0]}.{token[1]} with incomparable "
                            "vector clocks"
                        )
                        self._race_details[token] = detail
                    findings.append(
                        DynamicFinding(
                            kind="race",
                            code="W301",
                            subjects=pair,
                            detail=detail,
                        )
                    )
            history.append((path, vc))

    # -- lock-manager hooks (inversions, deadlocks) --------------------------------

    def bind_txn(self, txn: str, task_path: str) -> None:
        """Name the task on whose behalf ``txn`` acquires locks — the
        subject reported for that transaction's inversions/deadlocks."""
        self._txn_paths[txn] = task_path

    def _subject(self, txn: str) -> str:
        return self._txn_paths.get(txn, txn)

    def attach_locks(self, manager: LockManager) -> None:
        """Wrap ``try_acquire``/``acquire``/``transfer_all``/``release_all``
        on ``manager`` in place."""
        original_try = manager.try_acquire
        original_acquire = manager.acquire
        original_transfer = manager.transfer_all
        original_release = manager.release_all
        sanitizer = self

        def try_acquire(txn: str, obj: str, mode: LockMode = LockMode.EXCLUSIVE) -> bool:
            sanitizer._note_attempt(txn, obj)
            granted = original_try(txn, obj, mode)
            if granted:
                sanitizer._note_granted(txn, obj)
            return granted

        def acquire(txn: str, obj: str, mode: LockMode = LockMode.EXCLUSIVE, wait: bool = False):
            try:
                return original_acquire(txn, obj, mode, wait)
            except DeadlockError as error:
                sanitizer._note_deadlock(error)
                raise

        def transfer_all(child: str, parent: str) -> None:
            held = sanitizer._held_order.pop(child, [])
            order = sanitizer._held_order.setdefault(parent, [])
            order.extend(obj for obj in held if obj not in order)
            original_transfer(child, parent)

        def release_all(txn: str):
            sanitizer._held_order.pop(txn, None)
            return original_release(txn)

        manager.try_acquire = try_acquire
        manager.acquire = acquire
        manager.transfer_all = transfer_all
        manager.release_all = release_all
        self.managers_attached += 1

    def _note_attempt(self, txn: str, obj: str) -> None:
        subject = self._subject(txn)
        for held in self._held_order.get(txn, []):
            if held == obj:
                continue
            self._lock_edges.setdefault((held, obj), set()).add(subject)
            inverse = self._lock_edges.get((obj, held), set())
            for other in inverse:
                if other == subject:
                    continue
                pair = frozenset((subject, other))
                if pair in self._reported_inversions:
                    continue
                self._reported_inversions.add(pair)
                self.findings.append(
                    DynamicFinding(
                        kind="lock-inversion",
                        code="E403",
                        subjects=tuple(sorted(pair)),
                        detail=(
                            f"observed lock orders {held!r}->{obj!r} and "
                            f"{obj!r}->{held!r} on the same two objects"
                        ),
                    )
                )

    def _note_granted(self, txn: str, obj: str) -> None:
        order = self._held_order.setdefault(txn, [])
        if obj not in order:
            order.append(obj)

    def _note_deadlock(self, error: DeadlockError) -> None:
        involved = set(error.cycle) | {error.txn}
        subjects = tuple(sorted({self._subject(txn) for txn in involved}))
        self.findings.append(
            DynamicFinding(
                kind="deadlock",
                code="E403",
                subjects=subjects,
                detail=f"LockManager waits-for cycle: {' -> '.join(error.cycle)}",
            )
        )

    # -- duplicate effects (worker ledger scan) ------------------------------------

    def scan_workers(self, workers: Sequence, script: Script) -> None:
        """Scan :attr:`TaskWorker.executed` ledgers for task executions the
        at-least-once dispatch ran more than once; duplicates on non-atomic
        tasks are bare effects applied twice (dynamic ``W401``)."""
        counts: Dict[Tuple[str, str, int], int] = {}
        for worker in workers:
            for triple in getattr(worker, "executed", []):
                counts[triple] = counts.get(triple, 0) + 1
        for triple, count in sorted(counts.items()):
            if count < 2 or triple in self._reported_duplicates:
                continue
            instance, path, index = triple
            taskclass = _taskclass_at(script, path)
            if taskclass is None or taskclass.is_atomic:
                continue  # transactional effects roll back; not a bare duplicate
            self._reported_duplicates.add(triple)
            self.findings.append(
                DynamicFinding(
                    kind="duplicate-effect",
                    code="W401",
                    subjects=(path,),
                    detail=(
                        f"execution #{index} of {path!r} (instance "
                        f"{instance!r}) ran {count} times across workers"
                    ),
                )
            )

    # -- the containment check -----------------------------------------------------

    def check_coverage(self, report: StaticReport) -> List[DynamicFinding]:
        """Dynamic findings with **no** static counterpart (must be empty —
        anything returned is an analyzer bug, not an application bug)."""
        by_code: Dict[str, List] = {}
        for finding in report.findings:
            by_code.setdefault(finding.code, []).append(finding)
        uncovered: List[DynamicFinding] = []
        for dyn in self.findings:
            if not any(_covers(stat, dyn) for stat in by_code.get(dyn.code, [])):
                uncovered.append(dyn)
        return uncovered

    def render(self) -> List[str]:
        return [finding.render() for finding in self.findings]


def _covers(static_finding, dyn: DynamicFinding) -> bool:
    """Does one static finding predict one dynamic observation?"""
    subjects = set(dyn.subjects)
    if dyn.kind == "duplicate-effect":
        return static_finding.location in subjects
    related = set(static_finding.related)
    if not related:
        return False
    if dyn.kind == "race":
        return related == subjects
    # lock-inversion / deadlock: the static pair must lie on the observed
    # cycle (longer cycles list more than two subjects)
    return related <= subjects


def sanitized_exploration(
    script: Script,
    root_task: Optional[str] = None,
    input_set: str = "main",
    analysis=None,
    parallelism: int = 4,
    repeats: int = 3,
    sanitizer: Optional[Sanitizer] = None,
) -> Sanitizer:
    """Re-run the outcome explorer's witness assignments under a sanitized
    concurrent engine.

    :func:`repro.core.analysis.analyze_outcomes` already found, for every
    reachable outcome, one assignment of implementation choices that
    produces it; this replays each witness ``repeats`` times on the
    thread-pooled engine with the sanitizer attached, so the dynamic race
    detector observes real concurrent interleavings of every reachable
    behaviour.  Returns the sanitizer (accumulating if one is passed in).
    """
    from ..core.analysis import _UniversalRegistry, _synthetic_impl, analyze_outcomes
    from ..core.errors import ExecutionError
    from ..engine.concurrent import ConcurrentEngine

    if root_task is None:
        if len(script.tasks) != 1:
            raise ExecutionError("script has several top-level tasks; name one")
        root_task = next(iter(script.tasks))
    if analysis is None:
        analysis = analyze_outcomes(script, root_task, input_set=input_set)
    if sanitizer is None:
        sanitizer = Sanitizer()
    root_class = script.taskclass_of(script.tasks[root_task])
    spec = root_class.input_set(input_set)
    if spec is None and root_class.input_sets:
        spec = root_class.input_sets[0]
        input_set = spec.name
    inputs = (
        {obj.name: f"<{obj.name}>" for obj in spec.objects} if spec is not None else {}
    )
    for choices in analysis.reachable.values():
        registry = _UniversalRegistry(_synthetic_impl(choices))
        engine = ConcurrentEngine(
            registry,
            default_retries=0,
            max_repeats=2,
            parallelism=parallelism,
            sanitizer=sanitizer,
        )
        for _ in range(repeats):
            engine.run(script, root_task, inputs=inputs, input_set=input_set)
    return sanitizer


def _taskclass_at(script: Script, path: str) -> Optional[TaskClass]:
    """Resolve a runtime task path (``root/child/...``) to its task class;
    None when the path does not name a declared task."""
    parts = [p for p in path.split("/") if p]
    if not parts:
        return None
    decl = script.tasks.get(parts[0])
    for part in parts[1:]:
        if not isinstance(decl, CompoundTaskDecl):
            return None
        decl = decl.task(part)
    if decl is None:
        return None
    try:
        return script.taskclass_of(decl)
    except Exception:
        return None
