"""Fault-injection schedules.

Experiments E10/E14 need repeatable failure patterns: "crash node X at time t,
recover it at t+d", "crash a random node every ~p time units".  These helpers
arrange such patterns on the shared clock so benchmark code stays declarative.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set

from .clock import EventClock
from .network import Network
from .node import Node


@dataclass
class CrashEvent:
    """Record of one injected crash (for reporting)."""

    node: str
    crash_time: float
    recover_time: Optional[float]


@dataclass
class NetworkEvent:
    """Record of one injected network fault episode (for reporting)."""

    kind: str          # "partition" | "loss" | "dup" | "reorder"
    start: float
    end: Optional[float]
    detail: str = ""


class FaultPlan:
    """A declarative schedule of crashes and recoveries.

    Example::

        plan = FaultPlan(clock)
        plan.crash_at(node_a, when=10.0, down_for=5.0)
        plan.crash_at(node_b, when=12.0)          # stays down
        plan.arm()
    """

    def __init__(self, clock: EventClock) -> None:
        self.clock = clock
        self._pending: List[CrashEvent] = []
        self._nodes: Dict[str, Node] = {}
        self.history: List[CrashEvent] = []
        self.network_history: List[NetworkEvent] = []
        self._network_actions: List = []  # zero-arg closures run at arm()
        self._armed = False

    def crash_at(self, node: Node, when: float, down_for: Optional[float] = None) -> "FaultPlan":
        """Crash ``node`` at virtual time ``when``; recover ``down_for`` later
        (never, if ``down_for`` is None)."""
        recover_time = None if down_for is None else when + down_for
        self._pending.append(CrashEvent(node.name, when, recover_time))
        self._nodes[node.name] = node
        return self

    # -- network faults ------------------------------------------------------

    def partition_at(
        self,
        network: Network,
        when: float,
        group_a: Set[str],
        group_b: Set[str],
        heal_after: Optional[float] = None,
    ) -> "FaultPlan":
        """Partition ``group_a`` from ``group_b`` at ``when``; heal that cut
        ``heal_after`` later (never, if None)."""
        heal_at = None if heal_after is None else when + heal_after
        group_a, group_b = set(group_a), set(group_b)

        def start() -> None:
            network.partition(group_a, group_b)
            self.network_history.append(
                NetworkEvent(
                    "partition", when, heal_at,
                    f"{sorted(group_a)} x {sorted(group_b)}",
                )
            )
            if heal_at is not None:
                self.clock.call_at(
                    heal_at,
                    lambda: network.heal(group_a, group_b),
                    label="nemesis:heal",
                )

        self._network_actions.append(
            lambda: self.clock.call_at(when, start, label="nemesis:partition")
        )
        return self

    def _burst(
        self,
        network: Network,
        kind: str,
        attr: str,
        when: float,
        duration: float,
        value: float,
    ) -> "FaultPlan":
        """Raise a network knob to ``value`` for ``duration``, then restore
        the value it had when the burst began (bursts may nest; last restore
        wins, which is fine for the disjoint bursts schedules generate)."""

        def start() -> None:
            previous = getattr(network, attr)
            setattr(network, attr, value)
            self.network_history.append(
                NetworkEvent(kind, when, when + duration, f"{attr}={value}")
            )
            self.clock.call_at(
                when + duration,
                lambda: setattr(network, attr, previous),
                label=f"nemesis:{kind}-end",
            )

        self._network_actions.append(
            lambda: self.clock.call_at(when, start, label=f"nemesis:{kind}")
        )
        return self

    def loss_burst(
        self, network: Network, when: float, duration: float, rate: float
    ) -> "FaultPlan":
        """Drop datagrams with probability ``rate`` during the burst."""
        return self._burst(network, "loss", "loss_rate", when, duration, rate)

    def dup_burst(
        self, network: Network, when: float, duration: float, rate: float
    ) -> "FaultPlan":
        """Duplicate datagrams with probability ``rate`` during the burst."""
        return self._burst(network, "dup", "dup_rate", when, duration, rate)

    def reorder_burst(
        self, network: Network, when: float, duration: float, window: float
    ) -> "FaultPlan":
        """Hold roughly half of all datagrams back by up to ``window`` extra
        time units during the burst, letting later sends overtake them."""
        return self._burst(
            network, "reorder", "reorder_window", when, duration, window
        )

    def arm(self) -> None:
        """Schedule every planned event on the clock.  Idempotent.

        ``history`` records only *executed* crashes: an event is appended
        when its scheduled callback actually fires and finds the node alive,
        not at arm time — so a plan armed but never run (or a crash of an
        already-dead node) leaves no trace.  Network fault episodes are
        recorded in ``network_history`` when they begin.
        """
        if self._armed:
            return
        self._armed = True
        for event in self._pending:
            node = self._nodes[event.node]

            def fire(node=node, event=event) -> None:
                if node.alive:
                    node.crash()
                    self.history.append(event)

            self.clock.call_at(event.crash_time, fire, label=f"crash:{node.name}")
            if event.recover_time is not None:
                self.clock.call_at(event.recover_time, node.recover, label=f"recover:{node.name}")
        for schedule_action in self._network_actions:
            schedule_action()


class RandomCrasher:
    """Poisson-ish random crash/recover injector for a set of nodes.

    Every ``interval`` time units (exponentially distributed), one node chosen
    uniformly at random crashes, then recovers after ``downtime``.  Runs until
    :meth:`stop` or until ``limit`` crashes have been injected.  Deterministic
    under a fixed seed.
    """

    def __init__(
        self,
        clock: EventClock,
        nodes: Sequence[Node],
        interval: float,
        downtime: float,
        seed: int = 0,
        limit: Optional[int] = None,
    ) -> None:
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.clock = clock
        self.nodes = list(nodes)
        self.interval = interval
        self.downtime = downtime
        self.limit = limit
        self.injected: List[CrashEvent] = []
        self._rng = random.Random(seed)
        self._stopped = False

    def start(self) -> "RandomCrasher":
        self._schedule_next()
        return self

    def stop(self) -> None:
        self._stopped = True

    def _schedule_next(self) -> None:
        if self._stopped:
            return
        if self.limit is not None and len(self.injected) >= self.limit:
            return
        delay = self._rng.expovariate(1.0 / self.interval)
        self.clock.call_after(delay, self._strike, label="random-crash")

    def _strike(self) -> None:
        if self._stopped or not self.nodes:
            return
        node = self._rng.choice(self.nodes)
        if node.alive:
            node.crash()
            recover_at = self.clock.now + self.downtime
            self.clock.call_at(recover_at, node.recover, label=f"recover:{node.name}")
            self.injected.append(CrashEvent(node.name, self.clock.now, recover_at))
        self._schedule_next()
