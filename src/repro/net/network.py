"""Simulated message-passing network.

Models the failure environment the paper's execution service must survive:
message latency, transient message loss and network partitions.  Delivery is
asynchronous through the shared :class:`~repro.net.clock.EventClock`, so the
whole distributed system remains deterministic and replayable.

The network delivers *datagrams*: best-effort, unordered (subject to the
latency model), possibly dropped.  Reliable semantics (the "tasks eventually
receive their inputs" guarantee of the paper) are built *above* this layer by
the transactional execution service, exactly as in the paper.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, FrozenSet, Optional, Set, Tuple

from .clock import EventClock, SimulationError


@dataclass(frozen=True)
class Message:
    """A datagram in flight."""

    source: str
    destination: str
    payload: Any
    sent_at: float


@dataclass
class LatencyModel:
    """Per-hop latency: ``base`` plus uniform jitter in ``[0, jitter]``."""

    base: float = 1.0
    jitter: float = 0.0

    def sample(self, rng: random.Random) -> float:
        if self.jitter <= 0:
            return self.base
        return self.base + rng.uniform(0.0, self.jitter)


@dataclass
class NetworkStats:
    """Counters maintained by :class:`Network`."""

    sent: int = 0
    delivered: int = 0
    dropped_loss: int = 0
    dropped_partition: int = 0
    dropped_dead: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "sent": self.sent,
            "delivered": self.delivered,
            "dropped_loss": self.dropped_loss,
            "dropped_partition": self.dropped_partition,
            "dropped_dead": self.dropped_dead,
        }


class Network:
    """Best-effort simulated network between named endpoints.

    Endpoints register a receive callback with :meth:`attach`.  The network
    consults its partition sets and loss rate at *send* time, samples a
    latency, and schedules delivery on the shared clock.  A receiver that is
    detached (e.g. its node crashed) at delivery time silently loses the
    message — exactly the behaviour crash-recovery protocols must cope with.
    """

    def __init__(
        self,
        clock: EventClock,
        latency: Optional[LatencyModel] = None,
        loss_rate: float = 0.0,
        seed: int = 0,
    ) -> None:
        if not 0.0 <= loss_rate < 1.0:
            raise SimulationError(f"loss_rate must be in [0, 1), got {loss_rate!r}")
        self.clock = clock
        self.latency = latency or LatencyModel()
        self.loss_rate = loss_rate
        self.stats = NetworkStats()
        self._rng = random.Random(seed)
        self._endpoints: Dict[str, Callable[[Message], None]] = {}
        self._partitions: Set[FrozenSet[str]] = set()

    # -- endpoint management -------------------------------------------------

    def attach(self, name: str, receiver: Callable[[Message], None]) -> None:
        """Register ``receiver`` to handle messages addressed to ``name``."""
        self._endpoints[name] = receiver

    def detach(self, name: str) -> None:
        """Remove an endpoint (e.g. on node crash)."""
        self._endpoints.pop(name, None)

    def is_attached(self, name: str) -> bool:
        return name in self._endpoints

    # -- partitions -----------------------------------------------------------

    def partition(self, group_a: Set[str], group_b: Set[str]) -> None:
        """Sever communication between every endpoint in ``group_a`` and every
        endpoint in ``group_b`` (both directions)."""
        for a in group_a:
            for b in group_b:
                if a != b:
                    self._partitions.add(frozenset((a, b)))

    def heal(self, group_a: Optional[Set[str]] = None, group_b: Optional[Set[str]] = None) -> None:
        """Heal partitions.

        * ``heal()`` — clear every partition;
        * ``heal(group_a, group_b)`` — heal only the ``group_a`` x ``group_b``
          cut;
        * ``heal(group)`` (one group) — heal every severed edge *touching*
          that group, leaving unrelated partitions intact.  (Historically a
          single-group call silently cleared all partitions, which let
          partial-heal experiments pass vacuously.)
        """
        if group_a is None and group_b is None:
            self._partitions.clear()
            return
        if group_a is None or group_b is None:
            touched = set(group_a if group_a is not None else group_b)
            self._partitions = {
                pair for pair in self._partitions if not (pair & touched)
            }
            return
        for a in group_a:
            for b in group_b:
                self._partitions.discard(frozenset((a, b)))

    def partitioned(self, a: str, b: str) -> bool:
        return frozenset((a, b)) in self._partitions

    # -- sending ----------------------------------------------------------------

    def send(self, source: str, destination: str, payload: Any) -> None:
        """Send a datagram.  May be silently dropped (loss, partition, dead
        receiver); delivery order follows sampled latencies."""
        self.stats.sent += 1
        if self.partitioned(source, destination):
            self.stats.dropped_partition += 1
            return
        if self.loss_rate > 0.0 and self._rng.random() < self.loss_rate:
            self.stats.dropped_loss += 1
            return
        message = Message(source, destination, payload, self.clock.now)
        delay = self.latency.sample(self._rng)
        self.clock.call_after(delay, lambda: self._deliver(message), label=f"deliver->{destination}")

    def _deliver(self, message: Message) -> None:
        # Partition may have formed while the message was in flight.
        if self.partitioned(message.source, message.destination):
            self.stats.dropped_partition += 1
            return
        receiver = self._endpoints.get(message.destination)
        if receiver is None:
            self.stats.dropped_dead += 1
            return
        self.stats.delivered += 1
        receiver(message)
