"""Simulated message-passing network.

Models the failure environment the paper's execution service must survive:
message latency, transient message loss and network partitions.  Delivery is
asynchronous through the shared :class:`~repro.net.clock.EventClock`, so the
whole distributed system remains deterministic and replayable.

The network delivers *datagrams*: best-effort, unordered (subject to the
latency model), possibly dropped.  Reliable semantics (the "tasks eventually
receive their inputs" guarantee of the paper) are built *above* this layer by
the transactional execution service, exactly as in the paper.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, FrozenSet, List, Optional, Set, Tuple

from .clock import EventClock, SimulationError


@dataclass(frozen=True)
class Message:
    """A datagram in flight."""

    source: str
    destination: str
    payload: Any
    sent_at: float


@dataclass
class LatencyModel:
    """Per-hop latency: ``base`` plus uniform jitter in ``[0, jitter]``."""

    base: float = 1.0
    jitter: float = 0.0

    def sample(self, rng: random.Random) -> float:
        if self.jitter <= 0:
            return self.base
        return self.base + rng.uniform(0.0, self.jitter)


@dataclass
class NetworkStats:
    """Counters maintained by :class:`Network`."""

    sent: int = 0
    delivered: int = 0
    dropped_loss: int = 0
    dropped_partition: int = 0
    dropped_dead: int = 0
    dropped_stale: int = 0   # addressed to a crashed incarnation
    duplicated: int = 0      # extra copies injected by dup_rate
    reordered: int = 0       # held back by reorder_window

    def as_dict(self) -> Dict[str, int]:
        return {
            "sent": self.sent,
            "delivered": self.delivered,
            "dropped_loss": self.dropped_loss,
            "dropped_partition": self.dropped_partition,
            "dropped_dead": self.dropped_dead,
            "dropped_stale": self.dropped_stale,
            "duplicated": self.duplicated,
            "reordered": self.reordered,
        }


class Network:
    """Best-effort simulated network between named endpoints.

    Endpoints register a receive callback with :meth:`attach`.  The network
    consults its partition sets and loss rate at *send* time, samples a
    latency, and schedules delivery on the shared clock.  A receiver that is
    detached (e.g. its node crashed) at delivery time silently loses the
    message — exactly the behaviour crash-recovery protocols must cope with.
    """

    def __init__(
        self,
        clock: EventClock,
        latency: Optional[LatencyModel] = None,
        loss_rate: float = 0.0,
        seed: int = 0,
        dup_rate: float = 0.0,
        reorder_window: float = 0.0,
    ) -> None:
        if not 0.0 <= loss_rate < 1.0:
            raise SimulationError(f"loss_rate must be in [0, 1), got {loss_rate!r}")
        if not 0.0 <= dup_rate < 1.0:
            raise SimulationError(f"dup_rate must be in [0, 1), got {dup_rate!r}")
        if reorder_window < 0.0:
            raise SimulationError(
                f"reorder_window must be >= 0, got {reorder_window!r}"
            )
        self.clock = clock
        self.latency = latency or LatencyModel()
        self.loss_rate = loss_rate
        self.dup_rate = dup_rate
        self.reorder_window = reorder_window
        self.stats = NetworkStats()
        self._rng = random.Random(seed)
        self._endpoints: Dict[str, Callable[[Message], None]] = {}
        self._incarnations: Dict[str, int] = {}
        self._partitions: Set[FrozenSet[str]] = set()

    # -- endpoint management -------------------------------------------------

    def attach(
        self, name: str, receiver: Callable[[Message], None], incarnation: int = 0
    ) -> None:
        """Register ``receiver`` to handle messages addressed to ``name``.

        ``incarnation`` distinguishes successive lives of the same endpoint
        (a node passes its ``crash_count``): a datagram is stamped with the
        destination's incarnation at *send* time, and delivery to any other
        incarnation is dropped as ``dropped_stale`` — a message sent to a
        node that then crashed must not leak into its recovered self.
        """
        self._endpoints[name] = receiver
        self._incarnations[name] = incarnation

    def detach(self, name: str) -> None:
        """Remove an endpoint (e.g. on node crash)."""
        self._endpoints.pop(name, None)

    def is_attached(self, name: str) -> bool:
        return name in self._endpoints

    def incarnation(self, name: str) -> int:
        """The endpoint's current incarnation (last attached value)."""
        return self._incarnations.get(name, 0)

    # -- partitions -----------------------------------------------------------

    def partition(self, group_a: Set[str], group_b: Set[str]) -> None:
        """Sever communication between every endpoint in ``group_a`` and every
        endpoint in ``group_b`` (both directions)."""
        for a in group_a:
            for b in group_b:
                if a != b:
                    self._partitions.add(frozenset((a, b)))

    def heal(self, group_a: Optional[Set[str]] = None, group_b: Optional[Set[str]] = None) -> None:
        """Heal partitions.

        * ``heal()`` — clear every partition;
        * ``heal(group_a, group_b)`` — heal only the ``group_a`` x ``group_b``
          cut;
        * ``heal(group)`` (one group) — heal every severed edge *touching*
          that group, leaving unrelated partitions intact.  (Historically a
          single-group call silently cleared all partitions, which let
          partial-heal experiments pass vacuously.)
        """
        if group_a is None and group_b is None:
            self._partitions.clear()
            return
        if group_a is None or group_b is None:
            touched = set(group_a if group_a is not None else group_b)
            self._partitions = {
                pair for pair in self._partitions if not (pair & touched)
            }
            return
        for a in group_a:
            for b in group_b:
                self._partitions.discard(frozenset((a, b)))

    def partitioned(self, a: str, b: str) -> bool:
        return frozenset((a, b)) in self._partitions

    # -- sending ----------------------------------------------------------------

    def sample_delays(self, source: str, destination: str) -> Optional[List[float]]:
        """Apply the send-time failure model to one datagram.

        Returns ``None`` if the datagram is dropped at send time (partition
        or loss, counters updated), otherwise a non-empty list of delivery
        delays: the first is the message itself, any further entries are
        duplicate copies injected by ``dup_rate``.  ``reorder_window > 0``
        holds roughly half the messages back by an extra uniform delay in
        ``[0, reorder_window)`` (counted as ``reordered``), which lets later
        sends overtake them.  All sampling uses the network RNG, so runs
        stay deterministic under a fixed seed.

        Shared by :meth:`send` and the ORB's datagram legs so every message
        path in the system sees one failure model.
        """
        if self.partitioned(source, destination):
            self.stats.dropped_partition += 1
            return None
        if self.loss_rate > 0.0 and self._rng.random() < self.loss_rate:
            self.stats.dropped_loss += 1
            return None
        delay = self.latency.sample(self._rng)
        if self.reorder_window > 0.0 and self._rng.random() < 0.5:
            delay += self._rng.uniform(0.0, self.reorder_window)
            self.stats.reordered += 1
        delays = [delay]
        if self.dup_rate > 0.0 and self._rng.random() < self.dup_rate:
            self.stats.duplicated += 1
            delays.append(self.latency.sample(self._rng))
        return delays

    def send(self, source: str, destination: str, payload: Any) -> None:
        """Send a datagram.  May be silently dropped (loss, partition, dead
        or stale receiver), duplicated, or reordered; delivery order follows
        sampled latencies."""
        self.stats.sent += 1
        delays = self.sample_delays(source, destination)
        if delays is None:
            return
        message = Message(source, destination, payload, self.clock.now)
        stamp = self._incarnations.get(destination, 0)
        for delay in delays:
            self.clock.call_after(
                delay,
                lambda: self._deliver(message, stamp),
                label=f"deliver->{destination}",
            )

    def _deliver(self, message: Message, incarnation: int = 0) -> None:
        # Partition may have formed while the message was in flight.
        if self.partitioned(message.source, message.destination):
            self.stats.dropped_partition += 1
            return
        receiver = self._endpoints.get(message.destination)
        if receiver is None:
            self.stats.dropped_dead += 1
            return
        if self._incarnations.get(message.destination, incarnation) != incarnation:
            # the destination crashed (and recovered) after this datagram was
            # sent: it belongs to a dead incarnation, not the current one
            self.stats.dropped_stale += 1
            return
        self.stats.delivered += 1
        receiver(message)
