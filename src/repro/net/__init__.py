"""Simulated distributed environment: virtual time, nodes, faulty network.

This package is the substitute for the paper's real machines and network (see
DESIGN.md §2).  Everything is driven by one deterministic
:class:`~repro.net.clock.EventClock`, so any failure scenario can be replayed
bit-for-bit.
"""

from .clock import EventClock, EventHandle, SimulationError
from .failures import CrashEvent, FaultPlan, NetworkEvent, RandomCrasher
from .network import LatencyModel, Message, Network, NetworkStats
from .node import Node, NodeCrashed, Service

__all__ = [
    "CrashEvent",
    "NetworkEvent",
    "EventClock",
    "EventHandle",
    "FaultPlan",
    "LatencyModel",
    "Message",
    "Network",
    "NetworkStats",
    "Node",
    "NodeCrashed",
    "RandomCrasher",
    "Service",
    "SimulationError",
]
