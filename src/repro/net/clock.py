"""Discrete-event simulated clock.

The paper's execution environment runs long-lived applications on real
machines; we replace wall-clock time with a deterministic discrete-event
clock so that failures (crashes, partitions, timeouts) can be injected and
replayed exactly.  All components of the simulated world (`repro.net.node`,
`repro.net.network`, the distributed engine) share one :class:`EventClock`.

Events are ordered by ``(time, priority, sequence)``; the sequence number
makes scheduling deterministic for events at the same instant.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Optional


class SimulationError(RuntimeError):
    """Raised for misuse of the simulation substrate."""


@dataclass(order=True)
class _ScheduledEvent:
    time: float
    priority: int
    seq: int
    action: Callable[[], Any] = field(compare=False)
    cancelled: bool = field(compare=False, default=False)
    label: str = field(compare=False, default="")


class EventHandle:
    """Handle returned by :meth:`EventClock.call_at`; allows cancellation."""

    def __init__(self, event: _ScheduledEvent) -> None:
        self._event = event

    @property
    def time(self) -> float:
        return self._event.time

    @property
    def cancelled(self) -> bool:
        return self._event.cancelled

    def cancel(self) -> None:
        """Cancel the event.  Cancelling an already-run event is a no-op."""
        self._event.cancelled = True


class EventClock:
    """A deterministic discrete-event scheduler with virtual time.

    Usage::

        clock = EventClock()
        clock.call_at(5.0, lambda: print("five"))
        clock.call_after(1.0, lambda: print("one"))
        clock.run()          # runs everything, in time order
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)
        self._queue: list[_ScheduledEvent] = []
        self._seq = itertools.count()
        self._running = False

    @property
    def now(self) -> float:
        """Current virtual time."""
        return self._now

    def call_at(
        self,
        when: float,
        action: Callable[[], Any],
        priority: int = 0,
        label: str = "",
    ) -> EventHandle:
        """Schedule ``action`` to run at virtual time ``when``."""
        if when < self._now:
            raise SimulationError(
                f"cannot schedule event at {when!r}, clock already at {self._now!r}"
            )
        event = _ScheduledEvent(float(when), priority, next(self._seq), action, label=label)
        heapq.heappush(self._queue, event)
        return EventHandle(event)

    def call_after(
        self,
        delay: float,
        action: Callable[[], Any],
        priority: int = 0,
        label: str = "",
    ) -> EventHandle:
        """Schedule ``action`` to run ``delay`` time units from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay!r}")
        return self.call_at(self._now + delay, action, priority=priority, label=label)

    def pending(self) -> int:
        """Number of events still queued (including cancelled ones)."""
        return sum(1 for e in self._queue if not e.cancelled)

    def step(self) -> bool:
        """Run the next event.  Returns False when the queue is empty."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self._now = event.time
            event.action()
            return True
        return False

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> int:
        """Run events until the queue drains, ``until`` is reached, or
        ``max_events`` have run.  Returns the number of events executed."""
        if self._running:
            raise SimulationError("clock is already running (re-entrant run())")
        self._running = True
        executed = 0
        try:
            while self._queue:
                if max_events is not None and executed >= max_events:
                    break
                head = self._queue[0]
                if head.cancelled:
                    heapq.heappop(self._queue)
                    continue
                if until is not None and head.time > until:
                    self._now = until
                    break
                if not self.step():
                    break
                executed += 1
            else:
                if until is not None and until > self._now:
                    self._now = until
        finally:
            self._running = False
        return executed

    def advance(self, delta: float) -> int:
        """Run all events within the next ``delta`` time units."""
        if delta < 0:
            raise SimulationError(f"negative delta {delta!r}")
        return self.run(until=self._now + delta)
