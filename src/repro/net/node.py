"""Simulated processing nodes.

A :class:`Node` models one machine of the paper's distributed environment: it
hosts services, owns volatile state that is lost on crash, and owns *stable
storage* (provided by ``repro.txn.store``) that survives crashes.  Crash and
recovery are first-class operations so experiments can inject the "finite
number of intervening processor crashes" the paper's guarantees refer to.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from .clock import EventClock, SimulationError
from .network import Message, Network


class NodeCrashed(RuntimeError):
    """Raised when an operation is attempted on a crashed node."""


class Service:
    """Base class for software hosted on a :class:`Node`.

    Subclasses override :meth:`on_message` for asynchronous datagrams and
    :meth:`on_recover` to rebuild volatile state from stable storage after a
    crash.  Service methods may also be invoked synchronously through the ORB
    (see :mod:`repro.orb`).
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self.node: Optional["Node"] = None

    def bind(self, node: "Node") -> None:
        self.node = node

    def on_start(self) -> None:
        """Called when the service is first installed on a live node."""

    def on_message(self, message: Message) -> None:
        """Handle a datagram addressed to this service."""

    def on_recover(self) -> None:
        """Called after the hosting node restarts following a crash."""


class Node:
    """One simulated machine: endpoint on the network + service host.

    Volatile state (the services' in-memory attributes) must be rebuilt in
    ``on_recover``; anything that must survive crashes belongs in the node's
    stable store, which the crash deliberately leaves untouched.
    """

    def __init__(self, name: str, clock: EventClock, network: Network) -> None:
        self.name = name
        self.clock = clock
        self.network = network
        self.alive = True
        self.crash_count = 0
        self._services: Dict[str, Service] = {}
        self.stable_store: Dict[str, Any] = {}
        network.attach(name, self._receive, incarnation=self.crash_count)

    # -- service hosting ----------------------------------------------------

    def install(self, service: Service) -> Service:
        if service.name in self._services:
            raise SimulationError(f"service {service.name!r} already installed on {self.name!r}")
        self._services[service.name] = service
        service.bind(self)
        if self.alive:
            service.on_start()
        return service

    def service(self, name: str) -> Service:
        try:
            return self._services[name]
        except KeyError:
            raise SimulationError(f"no service {name!r} on node {self.name!r}") from None

    def services(self) -> List[Service]:
        return list(self._services.values())

    # -- messaging ------------------------------------------------------------

    def send(self, destination: str, payload: Any) -> None:
        """Send a datagram from this node.  Crashed nodes cannot send."""
        self._check_alive()
        self.network.send(self.name, destination, payload)

    def _receive(self, message: Message) -> None:
        if not self.alive:
            return
        service_name = getattr(message.payload, "service", None)
        if isinstance(message.payload, dict):
            service_name = message.payload.get("service", service_name)
        if service_name and service_name in self._services:
            self._services[service_name].on_message(message)
            return
        # Broadcast to all services when unaddressed; simple and sufficient
        # for the small number of services per node in this system.
        for service in self._services.values():
            service.on_message(message)

    # -- timers -----------------------------------------------------------------

    def call_after(self, delay: float, action: Callable[[], Any], label: str = "") -> Any:
        """Schedule a local timer.  The action is suppressed if the node is
        down when it fires (a crashed machine's timers do not run)."""
        self._check_alive()
        epoch = self.crash_count

        def guarded() -> None:
            if self.alive and self.crash_count == epoch:
                action()

        return self.clock.call_after(delay, guarded, label=label or f"timer@{self.name}")

    # -- failure model -------------------------------------------------------------

    def crash(self) -> None:
        """Crash the node: volatile state is lost, stable storage survives,
        in-flight messages to the node will be dropped."""
        if not self.alive:
            return
        self.alive = False
        self.crash_count += 1
        self.network.detach(self.name)

    def recover(self) -> None:
        """Restart the node and let each service rebuild from stable storage.

        Re-attaching with the bumped ``crash_count`` gives the endpoint a
        fresh incarnation: datagrams stamped for the pre-crash incarnation
        are dropped as stale rather than delivered to the recovered node.
        """
        if self.alive:
            return
        self.alive = True
        self.network.attach(self.name, self._receive, incarnation=self.crash_count)
        for service in self._services.values():
            service.on_recover()

    def _check_alive(self) -> None:
        if not self.alive:
            raise NodeCrashed(f"node {self.name!r} is crashed")
