"""Dispatch resilience: adaptive retries, circuit breakers, health routing.

The paper (§3) places fault tolerance at *two* levels: applications express
alternatives/compensation in the script, while the execution environment
guarantees that tasks eventually receive their inputs despite crashes and
network failures.  This package is the system half grown up — the naive
fixed-timeout/blind-rotation dispatch loop of the execution service replaced
by a production-grade resilience layer:

* :mod:`repro.resilience.policy` — :class:`RetryPolicy`: exponential backoff
  with deterministic seeded jitter, per-flight next-attempt deadlines, a
  redispatch cap that surfaces a system failure instead of retrying forever,
  and deterministic post-recovery staggering (no thundering herd).
* :mod:`repro.resilience.breaker` — :class:`CircuitBreaker`: per-worker
  closed/open/half-open breakers driven by timeouts and reply observations.
* :mod:`repro.resilience.health` — :class:`HealthRegistry`: EWMA reply
  latency, in-flight counts and failure streaks per worker; routes each
  dispatch to the healthiest admissible worker.
* :mod:`repro.resilience.events` — :class:`ResilienceLog`: every resilience
  decision (dispatch, redispatch, hedge, breaker transition, failover,
  abandonment, stagger) as a timestamped event, renderable next to the
  workflow trace.
* :class:`ResilienceConfig` bundles the knobs; ``ResilienceConfig.disabled()``
  reproduces the legacy fixed-interval dispatch behaviour exactly.

Everything is deterministic under the simulation's seeds: jitter is derived
by hashing ``(seed, flight key, attempt)``, never from a live RNG.
"""

from .breaker import BreakerConfig, BreakerState, CircuitBreaker
from .config import ResilienceConfig
from .events import ResilienceEvent, ResilienceLog, render_resilience
from .health import HealthRegistry, WorkerHealth
from .policy import RetryPolicy

__all__ = [
    "BreakerConfig",
    "BreakerState",
    "CircuitBreaker",
    "HealthRegistry",
    "ResilienceConfig",
    "ResilienceEvent",
    "ResilienceLog",
    "RetryPolicy",
    "WorkerHealth",
    "render_resilience",
]
