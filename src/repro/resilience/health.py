"""Worker health registry and health-aware routing.

Replaces the execution service's blind rotation (``(crc32(key) +
redispatches) % len(workers)``) with an informed choice: every dispatch,
reply and timeout updates a per-worker :class:`WorkerHealth` record — EWMA
reply latency, current in-flight count, consecutive-failure streak and a
:class:`~repro.resilience.breaker.CircuitBreaker` — and
:meth:`HealthRegistry.route` picks the admissible worker with the lowest
health score.  Scores and tie-breaks are fully deterministic, so simulated
runs stay replayable.

The registry is *volatile* by design: a recovered coordinator starts with a
blank view of the fleet (it cannot know who crashed while it was down) and
relearns it from fresh observations, exactly like a restarted load balancer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from .breaker import BreakerState, CircuitBreaker
from .config import ResilienceConfig
from .events import ResilienceLog


@dataclass
class WorkerHealth:
    """Mutable health record for one worker."""

    name: str
    breaker: CircuitBreaker
    ewma_latency: Optional[float] = None   # None until first observation
    in_flight: int = 0
    streak: int = 0                        # consecutive timeouts/failures
    replies: int = 0
    timeouts: int = 0

    def as_dict(self, now: float) -> Dict[str, object]:
        return {
            "worker": self.name,
            "state": self.breaker.state(now).value,
            "ewma_latency": self.ewma_latency,
            "in_flight": self.in_flight,
            "streak": self.streak,
            "replies": self.replies,
            "timeouts": self.timeouts,
            "trips": self.breaker.trips,
        }


class HealthRegistry:
    """Health view over the worker fleet, fed by the execution service."""

    # score weights: latency dominates, queueing and instability penalise
    _INFLIGHT_WEIGHT = 0.5
    _STREAK_WEIGHT = 2.0
    _LATENCY_PRIOR = 1.0   # assumed EWMA before any observation

    def __init__(
        self,
        worker_names: Sequence[str],
        config: ResilienceConfig,
        log: Optional[ResilienceLog] = None,
        stats: Optional[Dict[str, int]] = None,
    ) -> None:
        self.config = config
        self.log = log
        self.stats = stats
        self.workers: Dict[str, WorkerHealth] = {}
        self._names = list(worker_names)
        self.reset()

    def reset(self) -> None:
        """Forget everything (a recovered coordinator relearns the fleet).
        Cumulative trip counts in ``stats`` are preserved by the caller."""
        self.workers = {
            name: WorkerHealth(name, CircuitBreaker(self.config.breaker, name=name))
            for name in self._names
        }

    def health(self, name: str) -> WorkerHealth:
        return self.workers[name]

    # -- observations --------------------------------------------------------------

    def on_dispatch(self, name: str, now: float) -> None:
        health = self.workers.get(name)
        if health is not None:
            health.in_flight += 1

    def on_reply(self, name: str, latency: float, now: float) -> None:
        """A reply came back ``latency`` after its send (implementation
        errors included: the worker demonstrably processed the request)."""
        health = self.workers.get(name)
        if health is None:
            return
        health.in_flight = max(0, health.in_flight - 1)
        health.replies += 1
        health.streak = 0
        alpha = self.config.ewma_alpha
        if health.ewma_latency is None:
            health.ewma_latency = latency
        else:
            health.ewma_latency += alpha * (latency - health.ewma_latency)
        if health.breaker.record_success(now) is BreakerState.CLOSED:
            self._transition(now, name, "breaker-close", "reply observed")

    def on_timeout(self, name: str, now: float) -> None:
        """A flight (or hedge) to this worker went unanswered past its
        deadline."""
        health = self.workers.get(name)
        if health is None:
            return
        health.in_flight = max(0, health.in_flight - 1)
        health.timeouts += 1
        health.streak += 1
        if health.breaker.record_failure(now) is BreakerState.OPEN:
            if self.stats is not None:
                self.stats["breaker_trips"] = self.stats.get("breaker_trips", 0) + 1
            self._transition(
                now, name, "breaker-open", f"{health.streak} consecutive timeouts"
            )

    def _transition(self, now: float, name: str, kind: str, detail: str) -> None:
        if self.log is not None:
            self.log.record(now, kind, worker=name, detail=detail)

    # -- routing --------------------------------------------------------------------

    def score(self, name: str) -> float:
        """Lower is healthier.  Deterministic."""
        health = self.workers[name]
        latency = (
            health.ewma_latency if health.ewma_latency is not None else self._LATENCY_PRIOR
        )
        return (
            latency
            + self._INFLIGHT_WEIGHT * health.in_flight
            + self._STREAK_WEIGHT * health.streak
        )

    def allows(self, name: str, now: float) -> bool:
        """Would the breaker admit a dispatch to ``name``?  (Peek only —
        does not consume a half-open probe slot.)"""
        health = self.workers.get(name)
        return health is None or health.breaker.state(now) is not BreakerState.OPEN

    def route(self, now: float, exclude: Iterable[str] = ()) -> Optional[str]:
        """The healthiest worker whose breaker admits a dispatch.

        If every candidate's breaker refuses, falls back to the least-bad
        candidate anyway — a fully-open fleet must not stall the workflow
        (progress beats caution; the paper's §3 liveness guarantee wins).
        Returns None only when ``exclude`` rules out every worker.
        """
        excluded = set(exclude)
        candidates = [n for n in self._names if n not in excluded]
        if not candidates:
            return None
        admitted = [n for n in candidates if self.workers[n].breaker.allow(now)]
        pool = admitted or candidates
        return min(pool, key=lambda n: (self.score(n), n))

    # -- reporting ---------------------------------------------------------------------

    def snapshot(self, now: float) -> List[Dict[str, object]]:
        return [self.workers[name].as_dict(now) for name in self._names]
