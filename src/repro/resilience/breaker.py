"""Per-worker circuit breakers.

A breaker shields the dispatcher from a worker that is crashed, partitioned
away or persistently failing: after ``failure_threshold`` consecutive bad
observations (timeouts or transport failures) the breaker *opens* and the
router stops selecting that worker.  After ``cooldown`` virtual-time units
the breaker becomes *half-open*: up to ``half_open_probes`` trial dispatches
are admitted; the first successful reply closes the breaker, another failure
re-opens it for a fresh cooldown.

Observations arrive from the execution service at reply/timeout time — the
breaker itself never looks at the clock spontaneously; every method takes
``now`` so the whole layer stays deterministic under the simulated clock.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional


class BreakerState(enum.Enum):
    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"


@dataclass(frozen=True)
class BreakerConfig:
    failure_threshold: int = 3   # consecutive timeouts/failures to trip
    cooldown: float = 60.0       # OPEN holds for this long, then HALF_OPEN
    half_open_probes: int = 1    # trial dispatches admitted while HALF_OPEN

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if self.cooldown < 0:
            raise ValueError("cooldown must be non-negative")
        if self.half_open_probes < 1:
            raise ValueError("half_open_probes must be >= 1")


class CircuitBreaker:
    """One worker's breaker.  State transitions are lazy: OPEN reports
    HALF_OPEN once the cooldown has elapsed, without needing a timer."""

    def __init__(self, config: Optional[BreakerConfig] = None, name: str = "") -> None:
        self.config = config or BreakerConfig()
        self.name = name
        self.failures = 0            # consecutive bad observations
        self.trips = 0               # times the breaker opened
        self.opened_at: Optional[float] = None
        self._probes = 0             # trial dispatches admitted while half-open

    # -- state ---------------------------------------------------------------------

    def state(self, now: float) -> BreakerState:
        if self.opened_at is None:
            return BreakerState.CLOSED
        if now - self.opened_at >= self.config.cooldown:
            return BreakerState.HALF_OPEN
        return BreakerState.OPEN

    def allow(self, now: float) -> bool:
        """May a dispatch be routed to this worker right now?

        While half-open, admits at most ``half_open_probes`` dispatches
        until an observation resolves the probe (the admission itself is
        counted — callers must only ask when they intend to dispatch).
        """
        state = self.state(now)
        if state is BreakerState.CLOSED:
            return True
        if state is BreakerState.OPEN:
            return False
        if self._probes < self.config.half_open_probes:
            self._probes += 1
            return True
        return False

    # -- observations ----------------------------------------------------------------

    def record_success(self, now: float) -> Optional[BreakerState]:
        """A reply arrived.  Returns the new state if a transition occurred."""
        transitioned = self.opened_at is not None
        self.failures = 0
        self.opened_at = None
        self._probes = 0
        return BreakerState.CLOSED if transitioned else None

    def record_failure(self, now: float) -> Optional[BreakerState]:
        """A timeout or transport failure was observed.  Returns OPEN when
        this observation trips (or re-trips) the breaker."""
        self.failures += 1
        state = self.state(now)
        if state is BreakerState.HALF_OPEN or (
            state is BreakerState.CLOSED
            and self.failures >= self.config.failure_threshold
        ):
            self.opened_at = now
            self._probes = 0
            self.trips += 1
            return BreakerState.OPEN
        return None
