"""The resilience layer's knob bundle.

One :class:`ResilienceConfig` travels from :class:`~repro.services.system.
WorkflowSystem` into the execution service and parameterises all four
mechanisms.  Two constructors cover the common cases:

* :meth:`ResilienceConfig.for_timeouts` — the adaptive default, derived from
  the service's ``dispatch_timeout`` / ``sweep_interval`` so existing call
  sites keep their familiar time scale (first attempt awaited
  ``~dispatch_timeout``, hedges after two sweep intervals);
* :meth:`ResilienceConfig.disabled` — byte-for-byte legacy behaviour:
  fixed-interval redispatch, blind crc32 rotation, no breakers, no hedging.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from .breaker import BreakerConfig
from .policy import RetryPolicy


@dataclass(frozen=True)
class ResilienceConfig:
    """Everything the adaptive dispatch layer can be told."""

    enabled: bool = True
    policy: RetryPolicy = field(default_factory=RetryPolicy)
    breaker: BreakerConfig = field(default_factory=BreakerConfig)
    # virtual-time wait before a duplicate (hedged) dispatch; None = off.
    # Hedging is safe because the journal applies exactly one reply per
    # (task path, execution index) — the loser is counted, not applied.
    hedge_delay: Optional[float] = None
    ewma_alpha: float = 0.3          # smoothing of per-worker reply latency
    event_limit: int = 2000          # bound on the resilience decision log

    @classmethod
    def for_timeouts(
        cls,
        dispatch_timeout: float,
        sweep_interval: float,
        seed: int = 0,
        hedging: bool = True,
        max_redispatches: Optional[int] = 40,
    ) -> "ResilienceConfig":
        """Adaptive defaults on the service's existing time scale."""
        policy = RetryPolicy(
            base_delay=dispatch_timeout,
            multiplier=2.0,
            max_delay=4.0 * dispatch_timeout,
            jitter=0.15,
            max_redispatches=max_redispatches,
            recovery_stagger=sweep_interval,
            seed=seed,
        )
        breaker = BreakerConfig(
            failure_threshold=3,
            cooldown=2.0 * dispatch_timeout,
            half_open_probes=1,
        )
        hedge = 2.0 * sweep_interval if hedging else None
        return cls(enabled=True, policy=policy, breaker=breaker, hedge_delay=hedge)

    @classmethod
    def disabled(cls) -> "ResilienceConfig":
        """Legacy dispatch: fixed-interval redispatch, blind rotation."""
        return cls(enabled=False, hedge_delay=None)
