"""Retry scheduling: exponential backoff, deterministic jitter, caps.

The execution service's sweeper used one global ``dispatch_timeout`` for
every unanswered flight.  :class:`RetryPolicy` replaces that with a
per-flight schedule: attempt *n* is awaited for ``base_delay *
multiplier**n`` (clamped to ``max_delay``), spread by a jitter fraction so
simultaneous flights do not retry in lock-step.  The jitter is **not**
random at run time — it is derived by hashing ``(seed, flight key,
attempt)``, so a replayed simulation (and a hypothesis test) sees the exact
same schedule.

``max_redispatches`` bounds the loop: a flight redispatched that many times
is *abandoned* — the execution service journals a system failure for the
task, which then takes the ordinary path of the paper's §3 semantics
(automatic retries per the task's ``retries`` property, then the first
declared abort outcome).  Forward progress is preserved either way; what the
cap removes is the unbounded retransmission of a request the fleet clearly
cannot serve.

``recovery_stagger`` spaces out the post-recovery redispatch herd: after a
coordinator crash every surviving flight must be re-sent, and doing so in
one burst is exactly the load spike that knocked the fleet over in the first
place.  :meth:`RetryPolicy.stagger` gives each flight a deterministic offset
in ``[0, recovery_stagger)``.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import List, Optional


def _unit(seed: int, material: str) -> float:
    """Deterministic pseudo-uniform draw in ``[0, 1)`` from hashed material."""
    return zlib.crc32(f"{seed}:{material}".encode()) / 2**32


@dataclass(frozen=True)
class RetryPolicy:
    """Backoff schedule for one dispatch flight.

    ``attempt`` throughout is the number of redispatches already performed:
    attempt 0 is the first send, whose reply is awaited ``~base_delay``.
    """

    base_delay: float = 30.0
    multiplier: float = 2.0
    max_delay: float = 120.0
    jitter: float = 0.15            # ± fraction applied to each delay
    max_redispatches: Optional[int] = 40   # None = retry forever (legacy)
    recovery_stagger: float = 5.0   # window for post-recovery spreading
    seed: int = 0

    def __post_init__(self) -> None:
        if self.base_delay <= 0:
            raise ValueError("base_delay must be positive")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")

    # -- the schedule ------------------------------------------------------------

    def raw_delay(self, attempt: int) -> float:
        """Un-jittered backoff for ``attempt`` (clamped to ``max_delay``)."""
        return min(self.base_delay * self.multiplier ** max(attempt, 0), self.max_delay)

    def delay(self, key: str, attempt: int) -> float:
        """Jittered await-interval for ``attempt`` of flight ``key``.

        Deterministic: the same ``(seed, key, attempt)`` always yields the
        same delay, inside ``[raw * (1-jitter), raw * (1+jitter)]``.
        """
        raw = self.raw_delay(attempt)
        if self.jitter == 0.0:
            return raw
        spread = _unit(self.seed, f"{key}:{attempt}")  # [0, 1)
        return raw * (1.0 - self.jitter + 2.0 * self.jitter * spread)

    def next_attempt_at(self, key: str, attempt: int, now: float) -> float:
        """Absolute virtual time at which the flight becomes overdue."""
        return now + self.delay(key, attempt)

    def schedule(self, key: str, attempts: int) -> List[float]:
        """The first ``attempts`` jittered delays (for tests and reports)."""
        return [self.delay(key, n) for n in range(attempts)]

    # -- bounds -------------------------------------------------------------------

    def exhausted(self, redispatches: int) -> bool:
        """Has this flight used up its redispatch budget?"""
        return self.max_redispatches is not None and redispatches >= self.max_redispatches

    # -- cooperative overload backoff ---------------------------------------------

    def overload_backoff(self, key: str, attempt: int, retry_after: float = 0.0) -> float:
        """Client-side delay before retrying an ``Overloaded`` refusal.

        Never earlier than the service's deterministic ``retry_after`` hint,
        never in lock-step with other refused clients: the hint is stretched
        by this policy's jittered exponential schedule (keyed separately
        from dispatch flights, so the two schedules cannot correlate).
        """
        return max(retry_after, self.delay(f"overload:{key}", attempt))

    # -- recovery staggering ------------------------------------------------------

    def stagger(self, key: str) -> float:
        """Deterministic offset in ``[0, recovery_stagger)`` for flight ``key``."""
        if self.recovery_stagger <= 0:
            return 0.0
        return self.recovery_stagger * _unit(self.seed, f"stagger:{key}")
