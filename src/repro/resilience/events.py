"""Resilience decision log.

Every decision the dispatch layer takes — initial routing, redispatch,
hedge, breaker transition, pin failover, abandonment, recovery stagger — is
recorded as a :class:`ResilienceEvent` so operators can see *why* a task
went where it went, next to the workflow's own event trace
(:func:`repro.engine.trace.render_trace` appends the rendering).

The log is bounded (oldest entries dropped) and keeps per-kind counters
that are never truncated.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

# Event kinds (the closed vocabulary used by the execution service):
#   dispatch, redispatch, hedge, timeout, failover, abandon, stagger,
#   breaker-open, breaker-half-open, breaker-close, plus the overload
#   layer's admission decisions (docs/PROTOCOLS.md §13):
#   queue, promote, shed, reject, window
_GLYPH = {
    "dispatch": "→",
    "redispatch": "↻",
    "hedge": "⇉",
    "timeout": "⌛",
    "failover": "⤳",
    "abandon": "✖",
    "stagger": "…",
    "breaker-open": "⊘",
    "breaker-half-open": "◒",
    "breaker-close": "●",
    "queue": "⧖",
    "promote": "⇧",
    "shed": "⊖",
    "reject": "⊠",
    "window": "⌖",
}


@dataclass(frozen=True)
class ResilienceEvent:
    """One timestamped dispatch-layer decision."""

    time: float
    kind: str
    instance: str = ""       # workflow instance id ("" for worker-level events)
    task: str = ""           # task path ("" for worker-level events)
    worker: str = ""         # worker involved ("" when not applicable)
    detail: str = ""

    def format(self) -> str:
        glyph = _GLYPH.get(self.kind, "?")
        where = f" {self.task}" if self.task else ""
        who = f" @{self.worker}" if self.worker else ""
        detail = f"  ({self.detail})" if self.detail else ""
        return f"t={self.time:<8.1f} {glyph} {self.kind}{where}{who}{detail}"


class ResilienceLog:
    """Bounded chronological record of resilience decisions."""

    def __init__(self, limit: int = 2000) -> None:
        self.limit = limit
        self.entries: List[ResilienceEvent] = []
        self.counts: "Counter[str]" = Counter()
        self.dropped = 0

    def record(
        self,
        time: float,
        kind: str,
        instance: str = "",
        task: str = "",
        worker: str = "",
        detail: str = "",
    ) -> ResilienceEvent:
        event = ResilienceEvent(time, kind, instance, task, worker, detail)
        self.entries.append(event)
        self.counts[kind] += 1
        if len(self.entries) > self.limit:
            overflow = len(self.entries) - self.limit
            del self.entries[:overflow]
            self.dropped += overflow
        return event

    def for_instance(self, instance: str) -> List[ResilienceEvent]:
        """Events touching one workflow instance (worker-level breaker events
        carry no instance and are included for context)."""
        return [e for e in self.entries if e.instance in ("", instance)]

    def of_kind(self, kind: str) -> List[ResilienceEvent]:
        return [e for e in self.entries if e.kind == kind]

    def summary(self) -> Dict[str, int]:
        return dict(self.counts)

    def __len__(self) -> int:
        return len(self.entries)


def render_resilience(
    events: Sequence[ResilienceEvent], title: Optional[str] = "resilience"
) -> str:
    """Render a batch of events, one line each (empty string for none)."""
    if not events:
        return ""
    lines: List[str] = []
    if title:
        lines.append(f"-- {title} --")
    lines.extend(event.format() for event in events)
    return "\n".join(lines)
