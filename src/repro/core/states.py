"""The task state machine of paper Fig. 3.

A task instance is initially ``WAIT``ing for one of its input sets to be
satisfied.  It may abort while waiting (timer expiry, user abort, forced by
the environment).  Once started it ``EXECUTE``s; during execution it may emit
*mark* outputs (early release — after which aborting is forbidden, §4.2) and
*repeat* outputs (re-enter execution via a fresh WAIT on its inputs).  It
terminates in a named outcome or abort outcome.

The machine is engine-agnostic: both the local and the distributed engine
drive :class:`TaskStateMachine`, and the distributed engine persists
:meth:`snapshot` images in atomic objects so crashes cannot corrupt the
life-cycle.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from .errors import ExecutionError
from .schema import OutputKind, TaskClass


class TaskState(enum.Enum):
    WAIT = "wait"
    EXECUTING = "executing"
    COMPLETED = "completed"   # terminated in an `outcome`
    ABORTED = "aborted"       # terminated in an `abort outcome`


class IllegalTransition(ExecutionError):
    """A transition not permitted by Fig. 3 was attempted."""


@dataclass
class TransitionRecord:
    """One observed transition, for event logs and experiment assertions."""

    from_state: TaskState
    to_state: TaskState
    label: str


class TaskStateMachine:
    """Life-cycle driver for one task instance.

    The machine validates output names and kinds against the task class, so an
    implementation cannot terminate a task in an output its class does not
    declare — the run-time half of the language's type checking.
    """

    def __init__(self, task_path: str, taskclass: TaskClass) -> None:
        self.task_path = task_path
        self.taskclass = taskclass
        self.state = TaskState.WAIT
        self.outcome: Optional[str] = None
        self.marked = False
        self.marks_emitted: List[str] = []
        self.repeats = 0
        self.starts = 0
        self.history: List[TransitionRecord] = []

    # -- queries ------------------------------------------------------------------

    @property
    def terminal(self) -> bool:
        return self.state in (TaskState.COMPLETED, TaskState.ABORTED)

    @property
    def can_abort(self) -> bool:
        """Marks forfeit the right to abort (§4.2)."""
        return not self.terminal and not self.marked

    # -- transitions ---------------------------------------------------------------

    def start(self) -> None:
        """WAIT -> EXECUTING (an input set was satisfied)."""
        self._require(TaskState.WAIT, "start")
        self._move(TaskState.EXECUTING, "start")
        self.starts += 1

    def mark(self, name: str) -> None:
        """Emit a mark output during execution.  Each mark may be produced
        once per execution (§4.2: "may be produced once")."""
        self._require(TaskState.EXECUTING, f"mark {name!r}")
        spec = self._output(name, OutputKind.MARK)
        if name in self.marks_emitted:
            raise IllegalTransition(
                f"{self.task_path}: mark {name!r} already produced this execution"
            )
        self.marked = True
        self.marks_emitted.append(name)
        self.history.append(TransitionRecord(self.state, self.state, f"mark:{name}"))

    def repeat(self, name: str) -> None:
        """EXECUTING -> WAIT via a repeat outcome."""
        self._require(TaskState.EXECUTING, f"repeat {name!r}")
        self._output(name, OutputKind.REPEAT)
        self.repeats += 1
        self.marks_emitted = []   # a new execution may emit its marks again
        self.marked = False       # the next execution regains abort rights
        self._move(TaskState.WAIT, f"repeat:{name}")

    def complete(self, name: str) -> None:
        """EXECUTING -> COMPLETED in a (non-abort) outcome."""
        self._require(TaskState.EXECUTING, f"complete {name!r}")
        self._output(name, OutputKind.OUTCOME)
        self.outcome = name
        self._move(TaskState.COMPLETED, f"outcome:{name}")

    def abort(self, name: str) -> None:
        """WAIT or EXECUTING -> ABORTED in an abort outcome.

        Aborting from WAIT models timer expiry / forced abort; aborting from
        EXECUTING models an atomic task rolling back.  Forbidden after a mark.
        """
        if self.terminal:
            raise IllegalTransition(f"{self.task_path}: abort after termination")
        if self.marked:
            raise IllegalTransition(
                f"{self.task_path}: cannot abort after producing a mark output"
            )
        self._output(name, OutputKind.ABORT)
        self.outcome = name
        self._move(TaskState.ABORTED, f"abort:{name}")

    def system_retry(self) -> None:
        """EXECUTING -> WAIT silently: the execution environment re-runs a
        task that hit a *system-level* problem (server crash, transaction
        abort) without surfacing any output event (§3).  Forbidden once a
        mark has been released."""
        self._require(TaskState.EXECUTING, "system retry")
        if self.marked:
            raise IllegalTransition(
                f"{self.task_path}: cannot silently retry after a mark output"
            )
        self._move(TaskState.WAIT, "system-retry")

    def reset_for_retry(self) -> None:
        """ABORTED -> WAIT: the system-level automatic retry of §3.

        Legal because an abort outcome means "no changes were performed"."""
        if self.state is not TaskState.ABORTED:
            raise IllegalTransition(f"{self.task_path}: retry of non-aborted task")
        self.outcome = None
        self._move(TaskState.WAIT, "retry")

    # -- persistence --------------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        return {
            "state": self.state.value,
            "outcome": self.outcome,
            "marked": self.marked,
            "marks_emitted": list(self.marks_emitted),
            "repeats": self.repeats,
            "starts": self.starts,
        }

    def restore(self, snapshot: Dict[str, Any]) -> None:
        self.state = TaskState(snapshot["state"])
        self.outcome = snapshot["outcome"]
        self.marked = snapshot["marked"]
        self.marks_emitted = list(snapshot["marks_emitted"])
        self.repeats = snapshot["repeats"]
        self.starts = snapshot["starts"]

    # -- internals ---------------------------------------------------------------

    def _require(self, state: TaskState, action: str) -> None:
        if self.state is not state:
            raise IllegalTransition(
                f"{self.task_path}: {action} in state {self.state.value!r} "
                f"(requires {state.value!r})"
            )

    def _output(self, name: str, kind: OutputKind):
        spec = self.taskclass.output(name)
        if spec is None:
            raise IllegalTransition(
                f"{self.task_path}: taskclass {self.taskclass.name!r} has no "
                f"output {name!r}"
            )
        if spec.kind is not kind:
            raise IllegalTransition(
                f"{self.task_path}: output {name!r} is a {spec.kind.value}, "
                f"not a {kind.value}"
            )
        return spec

    def _move(self, to_state: TaskState, label: str) -> None:
        self.history.append(TransitionRecord(self.state, to_state, label))
        self.state = to_state
