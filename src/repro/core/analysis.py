"""Outcome-reachability analysis: lightweight verification of schemas.

Given a workflow, which of its declared outcomes can actually happen?  The
language makes this answerable: task implementations are opaque, but their
*interfaces* are not — each simple task terminates in one of its class's
final outputs.  Enumerating those choices and running the real engine with
synthetic implementations explores the workflow's whole behaviour space
(application logic decides *which* branch; the analysis covers *all*).

Reported per root outcome: reachable (with a witness assignment) or
unreachable — unreachable outcomes are usually bugs in the output mapping,
the class of mistake the paper's own Fig. 7 listing contains.  Cases that
terminate no root outcome are reported as stalls (dead-end assignments).

Bounded: tasks with repeat outcomes are explored without taking the repeat
(loops are cut once); marks are emitted before each chosen outcome so
mark-fed consumers are covered.  The case product is capped by ``max_cases``.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from ..engine.context import TaskContext, TaskResult, outcome as make_outcome
from ..engine.events import WorkflowStatus
from ..engine.local import LocalEngine
from ..engine.registry import ImplementationRegistry
from .errors import ExecutionError
from .schema import (
    AnyTaskDecl,
    CompoundTaskDecl,
    OutputKind,
    Script,
    TaskClass,
    TaskDecl,
)

Assignment = Dict[str, str]  # task path -> chosen output name


@dataclass
class OutcomeAnalysis:
    """Result of :func:`analyze_outcomes`."""

    root_task: str
    cases_explored: int
    truncated: bool
    reachable: Dict[str, Assignment] = field(default_factory=dict)
    unreachable: List[str] = field(default_factory=list)
    stall_witness: Optional[Assignment] = None
    stalls: int = 0

    def summary(self) -> str:
        lines = [
            f"analysis of {self.root_task!r}: {self.cases_explored} cases"
            + (" (truncated)" if self.truncated else "")
        ]
        for name, witness in self.reachable.items():
            pretty = ", ".join(f"{p.split('/')[-1]}={o}" for p, o in witness.items())
            lines.append(f"  reachable   {name}  e.g. [{pretty}]")
        for name in self.unreachable:
            lines.append(f"  UNREACHABLE {name}")
        if self.stalls:
            lines.append(f"  {self.stalls} assignment(s) stall without any outcome")
        return "\n".join(lines)


def _simple_tasks(script: Script, decl: AnyTaskDecl, path: str) -> List[Tuple[str, TaskClass]]:
    if isinstance(decl, CompoundTaskDecl):
        found: List[Tuple[str, TaskClass]] = []
        for child in decl.tasks:
            found.extend(_simple_tasks(script, child, f"{path}/{child.name}"))
        return found
    return [(path, script.taskclass_of(decl))]


def _choice_space(taskclass: TaskClass) -> List[str]:
    finals = [o.name for o in taskclass.final_outputs()]
    return finals or [""]


def _synthetic_impl(choices: Mapping[str, str]):
    """One implementation serving every task: terminates each task in its
    assigned output, emitting every declared mark first with dummy values."""

    def impl(ctx: TaskContext) -> TaskResult:
        chosen = choices.get(ctx.task_path)
        if not chosen:
            raise ExecutionError(f"{ctx.task_path}: no outcome assigned")
        spec = ctx.taskclass.output(chosen)
        if spec.kind is not OutputKind.ABORT:
            # marks may only precede non-abort terminations (§4.2)
            for mark in ctx.taskclass.outputs_of_kind(OutputKind.MARK):
                ctx.mark(
                    mark.name,
                    **{obj.name: f"<{obj.name}>" for obj in mark.objects},
                )
        objects = {obj.name: f"<{obj.name}>" for obj in spec.objects}
        return TaskResult(spec.kind, chosen, objects)

    return impl


def analyze_outcomes(
    script: Script,
    root_task: Optional[str] = None,
    input_set: str = "main",
    max_cases: int = 20_000,
) -> OutcomeAnalysis:
    """Explore every combination of constituent outcomes; classify the root
    task's declared outcomes as reachable or unreachable."""
    if root_task is None:
        if len(script.tasks) != 1:
            raise ExecutionError("script has several top-level tasks; name one")
        root_task = next(iter(script.tasks))
    root = script.tasks[root_task]
    root_class = script.taskclass_of(root)
    tasks = _simple_tasks(script, root, root_task)
    spaces = [(path, _choice_space(taskclass)) for path, taskclass in tasks]

    spec = root_class.input_set(input_set)
    if spec is None and root_class.input_sets:
        spec = root_class.input_sets[0]
        input_set = spec.name
    inputs = (
        {obj.name: f"<{obj.name}>" for obj in spec.objects} if spec is not None else {}
    )

    analysis = OutcomeAnalysis(root_task, 0, False)
    declared = [o.name for o in root_class.final_outputs()]

    product = itertools.product(*(space for _path, space in spaces))
    for combo in product:
        if analysis.cases_explored >= max_cases:
            analysis.truncated = True
            break
        analysis.cases_explored += 1
        choices = {path: name for (path, _), name in zip(spaces, combo)}
        registry = _UniversalRegistry(_synthetic_impl(choices))
        engine = LocalEngine(registry, default_retries=0, max_repeats=2)
        result = engine.run(script, root_task, inputs=inputs, input_set=input_set)
        if result.status in (WorkflowStatus.COMPLETED, WorkflowStatus.ABORTED):
            analysis.reachable.setdefault(result.outcome, choices)
        else:
            analysis.stalls += 1
            if analysis.stall_witness is None:
                analysis.stall_witness = choices
    analysis.unreachable = [
        name for name in declared if name not in analysis.reachable
    ]
    return analysis


class _UniversalRegistry(ImplementationRegistry):
    """Registry that answers every code name with one synthetic callable."""

    def __init__(self, impl) -> None:
        super().__init__()
        self._impl = impl

    def resolve(self, code_name):  # noqa: D102 - see base class
        return self._impl

    def child(self, **bindings):  # noqa: D102 - engines wrap registries
        return self
