"""The schema model: the language's abstract syntax as validated data.

This is the core data structure of the reproduction — the in-memory form of a
workflow *script* (the paper calls the stored form a *schema*).  The textual
language (:mod:`repro.lang`) parses into these classes; the programmatic
builder (:mod:`repro.core.builder`) constructs them directly; both engines
execute them; the repository service stores them.

Terminology follows the paper (§4):

* ``ObjectClass`` — opaque named type; scripts move *references* around.
* ``TaskClass`` — a task signature: alternative *input sets* and named,
  typed *outputs* of four kinds (outcome / abort outcome / repeat outcome /
  mark).
* ``TaskDecl`` — a task instance: taskclass + late-bound implementation +
  per-input-object ordered alternative *sources* + notification dependencies.
* ``CompoundTaskDecl`` — constituent task instances + a mapping from
  constituent outputs onto the compound's own outputs.
* ``TaskTemplate`` — a parameterised task/compound declaration.
* ``Script`` — a compilation unit holding all of the above.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Dict, Iterator, Mapping, Optional, Tuple, Union

from .errors import SchemaError


class OutputKind(enum.Enum):
    """The four output types of §4.2."""

    OUTCOME = "outcome"
    ABORT = "abort outcome"
    REPEAT = "repeat outcome"
    MARK = "mark"


class GuardKind(enum.Enum):
    """What a source's ``if`` clause refers to."""

    OUTPUT = "output"   # ... if output <name>
    INPUT = "input"     # ... if input <set name>
    ANY = "any"         # no guard: any non-abort, non-repeat output


# ---------------------------------------------------------------------------
# Task classes
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ObjectDecl:
    """``name of class ClassName`` — a typed object reference slot."""

    name: str
    class_name: str


@dataclass(frozen=True)
class InputSetSpec:
    """One alternative input set of a task class."""

    name: str
    objects: Tuple[ObjectDecl, ...] = ()

    def object(self, name: str) -> Optional[ObjectDecl]:
        for decl in self.objects:
            if decl.name == name:
                return decl
        return None


@dataclass(frozen=True)
class OutputSpec:
    """One named output of a task class, of a given :class:`OutputKind`."""

    name: str
    kind: OutputKind
    objects: Tuple[ObjectDecl, ...] = ()

    def object(self, name: str) -> Optional[ObjectDecl]:
        for decl in self.objects:
            if decl.name == name:
                return decl
        return None


@dataclass(frozen=True)
class TaskClass:
    """A task signature (``taskclass`` construct)."""

    name: str
    input_sets: Tuple[InputSetSpec, ...] = ()
    outputs: Tuple[OutputSpec, ...] = ()

    def __post_init__(self) -> None:
        seen = set()
        for spec in self.input_sets:
            if spec.name in seen:
                raise SchemaError(f"duplicate input set {spec.name!r}", self.name)
            seen.add(spec.name)
            names = [o.name for o in spec.objects]
            if len(names) != len(set(names)):
                raise SchemaError(f"duplicate input object in set {spec.name!r}", self.name)
        seen = set()
        for out in self.outputs:
            if out.name in seen:
                raise SchemaError(f"duplicate output {out.name!r}", self.name)
            seen.add(out.name)
            names = [o.name for o in out.objects]
            if len(names) != len(set(names)):
                raise SchemaError(f"duplicate output object in {out.name!r}", self.name)
        if self.is_atomic and any(o.kind is OutputKind.MARK for o in self.outputs):
            # §4.2: a task that produced a mark can no longer abort; an atomic
            # task produces outputs only after commit, so marks are forbidden.
            raise SchemaError("atomic task class cannot declare mark outputs", self.name)

    # -- lookups ---------------------------------------------------------------

    def input_set(self, name: str) -> Optional[InputSetSpec]:
        for spec in self.input_sets:
            if spec.name == name:
                return spec
        return None

    def output(self, name: str) -> Optional[OutputSpec]:
        for out in self.outputs:
            if out.name == name:
                return out
        return None

    @property
    def is_atomic(self) -> bool:
        """A task class with at least one abort outcome is atomic (§4.2)."""
        return any(o.kind is OutputKind.ABORT for o in self.outputs)

    def outputs_of_kind(self, kind: OutputKind) -> Tuple[OutputSpec, ...]:
        return tuple(o for o in self.outputs if o.kind is kind)

    def final_outputs(self) -> Tuple[OutputSpec, ...]:
        """Outputs that terminate the task (outcomes + abort outcomes)."""
        return tuple(
            o for o in self.outputs if o.kind in (OutputKind.OUTCOME, OutputKind.ABORT)
        )


# ---------------------------------------------------------------------------
# Sources and bindings (task instances)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Source:
    """One alternative source for an input object or a notification.

    ``object_name`` is None for pure notifications.  ``task_name`` is the
    producer, resolved in the enclosing compound's scope (a sibling
    constituent or the enclosing compound itself).
    """

    task_name: str
    object_name: Optional[str] = None
    guard_kind: GuardKind = GuardKind.ANY
    guard_name: Optional[str] = None

    def __post_init__(self) -> None:
        if self.guard_kind is GuardKind.ANY and self.guard_name is not None:
            raise SchemaError("unguarded source cannot carry a guard name")
        if self.guard_kind is not GuardKind.ANY and not self.guard_name:
            raise SchemaError(f"{self.guard_kind.value} guard requires a name")

    @property
    def is_notification(self) -> bool:
        return self.object_name is None


@dataclass(frozen=True)
class InputObjectBinding:
    """``inputobject <name> from { <sources> }`` — ordered alternatives."""

    name: str
    sources: Tuple[Source, ...]

    def __post_init__(self) -> None:
        if not self.sources:
            raise SchemaError(f"input object {self.name!r} has no sources")
        for source in self.sources:
            if source.is_notification:
                raise SchemaError(
                    f"input object {self.name!r} lists a notification source"
                )


@dataclass(frozen=True)
class NotificationBinding:
    """``notification from { <sources> }`` — any alternative satisfies it."""

    sources: Tuple[Source, ...]

    def __post_init__(self) -> None:
        if not self.sources:
            raise SchemaError("notification has no sources")
        for source in self.sources:
            if not source.is_notification:
                raise SchemaError("notification source cannot name an object")


@dataclass(frozen=True)
class InputSetBinding:
    """Bindings for one input set of a task instance."""

    name: str
    objects: Tuple[InputObjectBinding, ...] = ()
    notifications: Tuple[NotificationBinding, ...] = ()

    def object(self, name: str) -> Optional[InputObjectBinding]:
        for binding in self.objects:
            if binding.name == name:
                return binding
        return None


@dataclass(frozen=True)
class Implementation:
    """The ``implementation`` clause: late-bound keyword/value pairs (§4.3).

    Well-known keywords: ``code`` (implementation name resolved in the
    registry at run time — may name a callable or another script), plus
    ``location``, ``agent``, ``deadline``, ``priority``, ``retries``.
    """

    properties: Tuple[Tuple[str, str], ...] = ()

    @classmethod
    def of(cls, **properties: str) -> "Implementation":
        return cls(tuple(sorted((k, str(v)) for k, v in properties.items())))

    def get(self, keyword: str, default: Optional[str] = None) -> Optional[str]:
        for key, value in self.properties:
            if key == keyword:
                return value
        return default

    @property
    def code(self) -> Optional[str]:
        return self.get("code")

    def as_dict(self) -> Dict[str, str]:
        return dict(self.properties)


@dataclass(frozen=True)
class TaskDecl:
    """A (simple) task instance (``task`` construct)."""

    name: str
    taskclass_name: str
    implementation: Implementation = field(default_factory=Implementation)
    input_sets: Tuple[InputSetBinding, ...] = ()

    def input_set(self, name: str) -> Optional[InputSetBinding]:
        for binding in self.input_sets:
            if binding.name == name:
                return binding
        return None

    @property
    def is_compound(self) -> bool:
        return False


# ---------------------------------------------------------------------------
# Compound tasks
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class OutputObjectBinding:
    """``outputobject <name> from { <sources> }`` in a compound's outputs."""

    name: str
    sources: Tuple[Source, ...]

    def __post_init__(self) -> None:
        if not self.sources:
            raise SchemaError(f"output object {self.name!r} has no sources")
        for source in self.sources:
            if source.is_notification:
                raise SchemaError(f"output object {self.name!r} lists a notification source")


@dataclass(frozen=True)
class OutputBinding:
    """Mapping of one compound output onto constituent events."""

    name: str
    objects: Tuple[OutputObjectBinding, ...] = ()
    notifications: Tuple[NotificationBinding, ...] = ()

    def object(self, name: str) -> Optional[OutputObjectBinding]:
        for binding in self.objects:
            if binding.name == name:
                return binding
        return None


@dataclass(frozen=True)
class CompoundTaskDecl:
    """A compound task instance (``compoundtask`` construct, §4.4)."""

    name: str
    taskclass_name: str
    input_sets: Tuple[InputSetBinding, ...] = ()
    tasks: Tuple[Union[TaskDecl, "CompoundTaskDecl"], ...] = ()
    outputs: Tuple[OutputBinding, ...] = ()
    implementation: Implementation = field(default_factory=Implementation)

    def __post_init__(self) -> None:
        names = [t.name for t in self.tasks]
        if len(names) != len(set(names)):
            raise SchemaError("duplicate constituent task name", self.name)
        if self.name in names:
            raise SchemaError(
                "constituent task shadows the compound's own name", self.name
            )

    def input_set(self, name: str) -> Optional[InputSetBinding]:
        for binding in self.input_sets:
            if binding.name == name:
                return binding
        return None

    def task(self, name: str) -> Optional[Union[TaskDecl, "CompoundTaskDecl"]]:
        for task in self.tasks:
            if task.name == name:
                return task
        return None

    def output(self, name: str) -> Optional[OutputBinding]:
        for binding in self.outputs:
            if binding.name == name:
                return binding
        return None

    @property
    def is_compound(self) -> bool:
        return True


AnyTaskDecl = Union[TaskDecl, CompoundTaskDecl]


# ---------------------------------------------------------------------------
# Templates
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class TaskTemplate:
    """``tasktemplate`` — a parameterised task declaration (§4.5).

    ``parameters`` are names that may appear as the ``task_name`` of sources
    in the body; instantiation substitutes the arguments positionally and
    renames the declaration.
    """

    name: str
    parameters: Tuple[str, ...]
    body: AnyTaskDecl

    def __post_init__(self) -> None:
        if len(set(self.parameters)) != len(self.parameters):
            raise SchemaError("duplicate template parameter", self.name)

    def instantiate(self, instance_name: str, arguments: Tuple[str, ...]) -> AnyTaskDecl:
        if len(arguments) != len(self.parameters):
            raise SchemaError(
                f"template {self.name!r} expects {len(self.parameters)} argument(s), "
                f"got {len(arguments)}",
                instance_name,
            )
        mapping = dict(zip(self.parameters, arguments))
        mapping[self.body.name] = instance_name
        return _substitute(self.body, mapping, rename=instance_name)


def _substitute_source(source: Source, mapping: Mapping[str, str]) -> Source:
    target = mapping.get(source.task_name, source.task_name)
    return replace(source, task_name=target)


def _substitute_input_sets(
    input_sets: Tuple[InputSetBinding, ...], mapping: Mapping[str, str]
) -> Tuple[InputSetBinding, ...]:
    return tuple(
        InputSetBinding(
            name=binding.name,
            objects=tuple(
                InputObjectBinding(
                    obj.name,
                    tuple(_substitute_source(s, mapping) for s in obj.sources),
                )
                for obj in binding.objects
            ),
            notifications=tuple(
                NotificationBinding(
                    tuple(_substitute_source(s, mapping) for s in notif.sources)
                )
                for notif in binding.notifications
            ),
        )
        for binding in input_sets
    )


def _substitute(decl: AnyTaskDecl, mapping: Mapping[str, str], rename: str) -> AnyTaskDecl:
    if isinstance(decl, TaskDecl):
        return TaskDecl(
            name=rename,
            taskclass_name=decl.taskclass_name,
            implementation=decl.implementation,
            input_sets=_substitute_input_sets(decl.input_sets, mapping),
        )
    return CompoundTaskDecl(
        name=rename,
        taskclass_name=decl.taskclass_name,
        implementation=decl.implementation,
        input_sets=_substitute_input_sets(decl.input_sets, mapping),
        tasks=tuple(_substitute(t, mapping, rename=t.name) for t in decl.tasks),
        outputs=tuple(
            OutputBinding(
                name=out.name,
                objects=tuple(
                    OutputObjectBinding(
                        obj.name,
                        tuple(_substitute_source(s, mapping) for s in obj.sources),
                    )
                    for obj in out.objects
                ),
                notifications=tuple(
                    NotificationBinding(
                        tuple(_substitute_source(s, mapping) for s in notif.sources)
                    )
                    for notif in out.notifications
                ),
            )
            for out in decl.outputs
        ),
    )


# ---------------------------------------------------------------------------
# Script (compilation unit / stored schema)
# ---------------------------------------------------------------------------


@dataclass
class Script:
    """A full workflow script: classes, task classes, declarations, templates.

    ``classes`` maps each object class to its supertype name (or None for a
    root class).  Object sub-typing is the extension the paper's §7 names as
    future work ("the addition of sub-typing of object would be
    straightforward"): a reference of a subclass may flow anywhere its
    superclass is expected, enabling "building block" tasks over supertypes.
    """

    classes: Dict[str, Optional[str]] = field(default_factory=dict)
    taskclasses: Dict[str, TaskClass] = field(default_factory=dict)
    tasks: Dict[str, AnyTaskDecl] = field(default_factory=dict)
    templates: Dict[str, TaskTemplate] = field(default_factory=dict)

    # -- construction -----------------------------------------------------------

    def add_class(self, name: str, extends: Optional[str] = None) -> None:
        self.classes[name] = extends

    def is_subclass(self, sub: str, sup: str) -> bool:
        """True iff ``sub`` equals ``sup`` or transitively extends it."""
        seen = set()
        current: Optional[str] = sub
        while current is not None and current not in seen:
            if current == sup:
                return True
            seen.add(current)
            current = self.classes.get(current)
        return False

    def add_taskclass(self, taskclass: TaskClass) -> None:
        if taskclass.name in self.taskclasses:
            raise SchemaError(f"taskclass {taskclass.name!r} already declared")
        self.taskclasses[taskclass.name] = taskclass

    def add_task(self, decl: AnyTaskDecl) -> None:
        if decl.name in self.tasks:
            raise SchemaError(f"task {decl.name!r} already declared")
        self.tasks[decl.name] = decl

    def add_template(self, template: TaskTemplate) -> None:
        if template.name in self.templates:
            raise SchemaError(f"template {template.name!r} already declared")
        self.templates[template.name] = template

    def instantiate_template(
        self, instance_name: str, template_name: str, arguments: Tuple[str, ...]
    ) -> AnyTaskDecl:
        try:
            template = self.templates[template_name]
        except KeyError:
            raise SchemaError(f"unknown template {template_name!r}", instance_name) from None
        decl = template.instantiate(instance_name, arguments)
        self.add_task(decl)
        return decl

    # -- lookups -----------------------------------------------------------------

    def taskclass_of(self, decl: AnyTaskDecl) -> TaskClass:
        try:
            return self.taskclasses[decl.taskclass_name]
        except KeyError:
            raise SchemaError(
                f"unknown taskclass {decl.taskclass_name!r}", decl.name
            ) from None

    def walk_tasks(self) -> Iterator[Tuple[str, AnyTaskDecl]]:
        """Yield every declaration, depth-first, with '/'-separated paths."""

        def walk(prefix: str, decl: AnyTaskDecl) -> Iterator[Tuple[str, AnyTaskDecl]]:
            path = f"{prefix}/{decl.name}" if prefix else decl.name
            yield path, decl
            if isinstance(decl, CompoundTaskDecl):
                for child in decl.tasks:
                    yield from walk(path, child)

        for decl in self.tasks.values():
            yield from walk("", decl)
