"""Schema validation and dependency-graph extraction.

:func:`validate_script` performs the whole-script semantic analysis the
paper's repository service applies before accepting a schema: every name must
resolve, every source must be type-correct, every compound output must be
fully mapped.  :func:`dependency_graph` extracts the task-dependency digraph
of a compound (the structure drawn in the paper's figures), used by the
figure-regeneration benchmarks and by the structural diagnostics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple, Union

import networkx as nx

from .errors import SchemaError, ValidationReport
from .schema import (
    AnyTaskDecl,
    CompoundTaskDecl,
    GuardKind,
    InputSetBinding,
    ObjectDecl,
    OutputKind,
    Script,
    Source,
    TaskClass,
    TaskDecl,
)


@dataclass
class _ScopeInfo:
    """Names visible to source resolution at one nesting level."""

    # local name -> (taskclass, is_enclosing_compound)
    names: Dict[str, Tuple[TaskClass, bool]]
    where: str


class Validator:
    """Collects every schema error in a script (does not stop at the first).

    Each error also carries a stable diagnostic code (``E1xx``, declared in
    :mod:`repro.analysis.registry`) in :attr:`coded` so the static analyser
    can merge validation into its unified report.  ``placeholders`` names
    producers to skip silently — the template parameters of a
    :class:`~repro.core.schema.TaskTemplate` body, opaque until
    instantiation.
    """

    def __init__(
        self, script: Script, placeholders: Iterable[str] = ()
    ) -> None:
        self.script = script
        self.errors: List[SchemaError] = []
        self.coded: List[Tuple[str, str, str]] = []  # (code, location, message)
        self.placeholders: Set[str] = set(placeholders)

    # -- public ------------------------------------------------------------------

    def validate(self) -> List[SchemaError]:
        self._validate_class_hierarchy()
        self._validate_taskclasses()
        root_names: Dict[str, Tuple[TaskClass, bool]] = {}
        for decl in self.script.tasks.values():
            taskclass = self.script.taskclasses.get(decl.taskclass_name)
            if taskclass is not None:
                root_names[decl.name] = (taskclass, False)
        root = _ScopeInfo(root_names, "<script>")
        for decl in self.script.tasks.values():
            self._validate_decl(decl, root)
        return self.errors

    # -- object classes -------------------------------------------------------------

    def _validate_class_hierarchy(self) -> None:
        for name, parent in self.script.classes.items():
            if parent is None:
                continue
            if parent not in self.script.classes:
                self._error(f"extends undeclared class {parent!r}", name)
                continue
            # cycle check: walk up; a repeat of `name` means a cycle
            seen = {name}
            current = parent
            while current is not None:
                if current in seen:
                    self._error("inheritance cycle", name)
                    break
                seen.add(current)
                current = self.script.classes.get(current)

    # -- task classes -------------------------------------------------------------

    def _validate_taskclasses(self) -> None:
        for taskclass in self.script.taskclasses.values():
            for spec in taskclass.input_sets:
                for obj in spec.objects:
                    self._check_class(obj, taskclass.name)
            for out in taskclass.outputs:
                for obj in out.objects:
                    self._check_class(obj, taskclass.name)

    def _check_class(self, obj: ObjectDecl, where: str) -> None:
        if obj.class_name not in self.script.classes:
            self._error(f"object {obj.name!r} uses undeclared class {obj.class_name!r}", where)

    # -- declarations --------------------------------------------------------------

    def _validate_decl(self, decl: AnyTaskDecl, scope: _ScopeInfo) -> None:
        taskclass = self.script.taskclasses.get(decl.taskclass_name)
        if taskclass is None:
            self._error(f"unknown taskclass {decl.taskclass_name!r}", decl.name)
            return
        self._validate_input_sets(decl, taskclass, scope)
        if isinstance(decl, CompoundTaskDecl):
            self._validate_compound(decl, taskclass)

    def _validate_input_sets(
        self, decl: AnyTaskDecl, taskclass: TaskClass, scope: _ScopeInfo
    ) -> None:
        for binding in decl.input_sets:
            spec = taskclass.input_set(binding.name)
            if spec is None:
                self._error(
                    f"taskclass {taskclass.name!r} has no input set {binding.name!r}",
                    decl.name,
                    code="E106",
                )
                continue
            bound = {b.name for b in binding.objects}
            declared = {o.name for o in spec.objects}
            for missing in sorted(declared - bound):
                self._error(
                    f"input set {binding.name!r} does not bind object {missing!r}",
                    decl.name,
                    code="E106",
                )
            for extra in sorted(bound - declared):
                self._error(
                    f"input set {binding.name!r} binds unknown object {extra!r}",
                    decl.name,
                    code="E106",
                )
            for obj_binding in binding.objects:
                obj_spec = spec.object(obj_binding.name)
                for source in obj_binding.sources:
                    self._validate_source(
                        source, obj_spec, decl, scope, f"input {binding.name!r}"
                    )
            for notif in binding.notifications:
                for source in notif.sources:
                    self._validate_source(
                        source, None, decl, scope, f"input {binding.name!r}"
                    )

    def _validate_compound(self, decl: CompoundTaskDecl, taskclass: TaskClass) -> None:
        inner_names: Dict[str, Tuple[TaskClass, bool]] = {}
        for child in decl.tasks:
            child_class = self.script.taskclasses.get(child.taskclass_name)
            if child_class is None:
                self._error(f"unknown taskclass {child.taskclass_name!r}", child.name)
            else:
                inner_names[child.name] = (child_class, False)
        inner_names[decl.name] = (taskclass, True)
        inner = _ScopeInfo(inner_names, decl.name)
        for child in decl.tasks:
            self._validate_decl(child, inner)
        # outputs mapping
        bound_outputs = {b.name for b in decl.outputs}
        for out_spec in taskclass.outputs:
            binding = decl.output(out_spec.name)
            if binding is None:
                # Unmapped outputs are legal only if they carry no objects and
                # the compound has some other way to finish; flag outputs with
                # objects, which can never be produced.
                if out_spec.objects:
                    self._error(
                        f"compound does not map output {out_spec.name!r} "
                        f"(which carries objects)",
                        decl.name,
                        code="E108",
                    )
                continue
            mapped = {b.name for b in binding.objects}
            declared = {o.name for o in out_spec.objects}
            for missing in sorted(declared - mapped):
                self._error(
                    f"output {out_spec.name!r} does not map object {missing!r}",
                    decl.name,
                    code="E108",
                )
            for extra in sorted(mapped - declared):
                self._error(
                    f"output {out_spec.name!r} maps unknown object {extra!r}",
                    decl.name,
                    code="E108",
                )
            if not binding.objects and not binding.notifications:
                self._error(
                    f"output {out_spec.name!r} has an empty mapping",
                    decl.name,
                    code="E108",
                )
            for obj_binding in binding.objects:
                obj_spec = out_spec.object(obj_binding.name)
                for source in obj_binding.sources:
                    self._validate_source(
                        source, obj_spec, decl, inner, f"output {out_spec.name!r}",
                        consumer_name=decl.name,
                    )
            for notif in binding.notifications:
                for source in notif.sources:
                    self._validate_source(
                        source, None, decl, inner, f"output {out_spec.name!r}",
                        consumer_name=decl.name,
                    )
        for extra in sorted(bound_outputs - {o.name for o in taskclass.outputs}):
            self._error(f"mapping for unknown output {extra!r}", decl.name, code="E108")

    # -- sources ----------------------------------------------------------------------

    def _validate_source(
        self,
        source: Source,
        obj_spec: Optional[ObjectDecl],
        decl: AnyTaskDecl,
        scope: _ScopeInfo,
        context: str,
        consumer_name: Optional[str] = None,
    ) -> None:
        where = f"{decl.name}.{context}"
        consumer = consumer_name or decl.name
        if source.task_name in self.placeholders:
            return  # template parameter: producer opaque until instantiation
        entry = scope.names.get(source.task_name)
        if entry is None:
            self._error(
                f"source names unknown task {source.task_name!r}", where, code="E101"
            )
            return
        producer_class, _is_enclosing = entry
        if source.object_name is None and source.guard_kind is GuardKind.ANY:
            self._error("notification source must carry an `if` guard", where, code="E102")
            return
        if source.guard_kind is GuardKind.OUTPUT:
            out = producer_class.output(source.guard_name)
            if out is None:
                self._error(
                    f"task {source.task_name!r} ({producer_class.name}) has no "
                    f"output {source.guard_name!r}",
                    where,
                    code="E102",
                )
                return
            if out.kind is OutputKind.REPEAT and source.task_name != consumer:
                # §4.2: repeat objects are private to the producing task.
                if source.object_name is not None:
                    self._error(
                        f"object from repeat output {source.guard_name!r} of "
                        f"another task {source.task_name!r}",
                        where,
                        code="E105",
                    )
                    return
            if source.object_name is not None:
                produced = out.object(source.object_name)
                if produced is None:
                    self._error(
                        f"output {source.guard_name!r} of {source.task_name!r} "
                        f"carries no object {source.object_name!r}",
                        where,
                        code="E103",
                    )
                    return
                self._check_compatible(produced, obj_spec, where)
        elif source.guard_kind is GuardKind.INPUT:
            in_set = producer_class.input_set(source.guard_name)
            if in_set is None:
                self._error(
                    f"task {source.task_name!r} ({producer_class.name}) has no "
                    f"input set {source.guard_name!r}",
                    where,
                    code="E102",
                )
                return
            if source.object_name is not None:
                carried = in_set.object(source.object_name)
                if carried is None:
                    self._error(
                        f"input set {source.guard_name!r} of {source.task_name!r} "
                        f"carries no object {source.object_name!r}",
                        where,
                        code="E103",
                    )
                    return
                self._check_compatible(carried, obj_spec, where)
        else:  # ANY, object source
            candidates = [
                out
                for out in producer_class.outputs
                if out.kind in (OutputKind.OUTCOME, OutputKind.MARK)
                and out.object(source.object_name) is not None
            ]
            if not candidates:
                self._error(
                    f"no outcome/mark of {source.task_name!r} carries object "
                    f"{source.object_name!r}",
                    where,
                    code="E103",
                )
                return
            for out in candidates:
                self._check_compatible(out.object(source.object_name), obj_spec, where)

    def _check_compatible(
        self, produced: Optional[ObjectDecl], expected: Optional[ObjectDecl], where: str
    ) -> None:
        # Compatibility is class equality or sub-typing: a produced subclass
        # reference may flow where its superclass is expected (the §7
        # extension; see Script.is_subclass).
        if produced is None or expected is None:
            return
        if not self.script.is_subclass(produced.class_name, expected.class_name):
            self._error(
                f"class mismatch: source provides {produced.class_name!r}, "
                f"consumer expects {expected.class_name!r}",
                where,
                code="E104",
            )

    def _error(self, message: str, location: str, code: str = "E107") -> None:
        self.errors.append(SchemaError(message, location))
        self.coded.append((code, location, message))


def validate_script(script: Script) -> List[SchemaError]:
    """Return all semantic errors in ``script`` (empty list when valid)."""
    return Validator(script).validate()


def check(script: Script) -> Script:
    """Validate and return ``script``; raise :class:`ValidationReport` if bad."""
    errors = validate_script(script)
    if errors:
        raise ValidationReport(errors)
    return script


# ---------------------------------------------------------------------------
# Dependency graph extraction (the structures in the paper's figures)
# ---------------------------------------------------------------------------


def dependency_graph(compound: CompoundTaskDecl) -> "nx.MultiDiGraph":
    """Digraph of one compound's constituents.

    Nodes are constituent names plus the compound's own name.  Each source
    becomes one edge producer -> consumer with attributes ``flavour``
    ("data" | "notify"), ``object`` and ``guard``.  This is exactly the
    drawing convention of the paper's figures: solid arcs are dataflow,
    dotted arcs are notifications.
    """
    graph = nx.MultiDiGraph(name=compound.name)
    graph.add_node(compound.name, role="compound")
    for child in compound.tasks:
        graph.add_node(child.name, role="task", taskclass=child.taskclass_name)

    def add_edges(consumer: str, input_sets: Sequence[InputSetBinding]) -> None:
        for binding in input_sets:
            for obj in binding.objects:
                for source in obj.sources:
                    graph.add_edge(
                        source.task_name,
                        consumer,
                        flavour="data",
                        object=obj.name,
                        guard=source.guard_name,
                        input_set=binding.name,
                    )
            for notif in binding.notifications:
                for source in notif.sources:
                    graph.add_edge(
                        source.task_name,
                        consumer,
                        flavour="notify",
                        object=None,
                        guard=source.guard_name,
                        input_set=binding.name,
                    )

    for child in compound.tasks:
        add_edges(child.name, child.input_sets)
    for out in compound.outputs:
        for obj in out.objects:
            for source in obj.sources:
                graph.add_edge(
                    source.task_name,
                    compound.name,
                    flavour="data",
                    object=obj.name,
                    guard=source.guard_name,
                    output=out.name,
                )
        for notif in out.notifications:
            for source in notif.sources:
                graph.add_edge(
                    source.task_name,
                    compound.name,
                    flavour="notify",
                    object=None,
                    guard=source.guard_name,
                    output=out.name,
                )
    return graph


def find_cycles(compound: CompoundTaskDecl, script: Script) -> List[List[str]]:
    """Dependency cycles among constituents that do *not* go through a repeat
    output or a self-loop.  Such cycles usually mean the workflow can never
    make progress, so they are reported as a lint by the repository service.
    """
    graph = dependency_graph(compound)
    filtered = nx.DiGraph()
    for producer, consumer, data in graph.edges(data=True):
        if producer == consumer:
            continue
        guard = data.get("guard")
        producer_decl = compound.task(producer)
        if producer_decl is not None and guard:
            producer_class = script.taskclasses.get(producer_decl.taskclass_name)
            if producer_class is not None:
                out = producer_class.output(guard)
                if out is not None and out.kind is OutputKind.REPEAT:
                    continue
        # The compound's input port and output port are distinct: values flow
        # in through `if input ...` sources and out through the output
        # mapping, so edges touching the compound must not close a cycle.
        if producer == compound.name:
            producer = f"{compound.name}<in>"
        if consumer == compound.name:
            consumer = f"{compound.name}<out>"
        filtered.add_edge(producer, consumer)
    return [list(cycle) for cycle in nx.simple_cycles(filtered)]


def structure_summary(compound: CompoundTaskDecl) -> Dict[str, int]:
    """Counts used by the figure benchmarks to assert regenerated shapes."""
    graph = dependency_graph(compound)
    data_edges = sum(1 for *_e, d in graph.edges(data=True) if d["flavour"] == "data")
    notify_edges = sum(1 for *_e, d in graph.edges(data=True) if d["flavour"] == "notify")
    return {
        "tasks": len(compound.tasks),
        "data_edges": data_edges,
        "notification_edges": notify_edges,
        "outputs": len(compound.outputs),
    }
