"""Input-dependency satisfaction: events, source matching, trackers.

This module is the run-time meaning of §4.3's dataflow and notification
dependencies, shared by both engines:

* Producers emit :class:`WorkflowEvent`\\ s into their *scope* (the enclosing
  compound): a terminal ``OUTCOME``/``ABORT``, an early ``MARK``, a
  ``REPEAT``, or an ``INPUT`` event recording that an input set was satisfied
  (other tasks may source objects "from an input to another task instance").
* Consumers hold a :class:`TaskInputTracker`; every event is *offered* to it.
  An input object binding keeps the **first alternative in its declared list**
  among those available (§4.3: order is significant); a notification binding
  is satisfied by any alternative; an input set is satisfied when all its
  object and notification bindings are; when several sets are satisfied the
  **first declared** one wins (§3: "chosen deterministically").

Matching rules:

* ``... if output X``  — matches OUTCOME/ABORT/MARK/REPEAT events named X.
* ``... if input S``   — matches INPUT events named S.
* unguarded (no ``if``) — matches any OUTCOME or MARK event that carries the
  requested object (abort outcomes signal "no effects happened" and repeat
  objects are private to the producing task, §4.2, so neither satisfies an
  unguarded source).
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from ..orb.marshal import transferable
from .schema import (
    GuardKind,
    InputObjectBinding,
    InputSetBinding,
    NotificationBinding,
    OutputKind,
)
from .values import ObjectRef


class EventKind(enum.Enum):
    OUTCOME = "outcome"
    ABORT = "abort"
    MARK = "mark"
    REPEAT = "repeat"
    INPUT = "input"


_OUTPUT_KINDS = (EventKind.OUTCOME, EventKind.ABORT, EventKind.MARK, EventKind.REPEAT)

_EVENT_KIND_FOR_OUTPUT = {
    OutputKind.OUTCOME: EventKind.OUTCOME,
    OutputKind.ABORT: EventKind.ABORT,
    OutputKind.MARK: EventKind.MARK,
    OutputKind.REPEAT: EventKind.REPEAT,
}


def event_kind_for(kind: OutputKind) -> EventKind:
    """Map a schema output kind to the event kind its production emits."""
    return _EVENT_KIND_FOR_OUTPUT[kind]


class HotpathStats:
    """Counters for the event hot path, shared by both tracker families.

    ``publishes`` counts events entering scopes; ``source_evals`` counts
    individual source-alternative examinations (each :func:`source_matches`
    call here, each candidate examined by the compiled
    :class:`~repro.engine.plan.PlanTracker`).  ``source_evals / publishes``
    is therefore the per-publish readiness re-evaluation cost the plan
    compiler exists to shrink.  Counters are best-effort under the
    concurrent engine (unsynchronised increments) — they instrument
    benchmarks, not semantics.
    """

    __slots__ = ("publishes", "source_evals")

    def __init__(self) -> None:
        self.publishes = 0
        self.source_evals = 0

    def reset(self) -> None:
        self.publishes = 0
        self.source_evals = 0

    def evals_per_publish(self) -> float:
        return self.source_evals / self.publishes if self.publishes else 0.0


HOTPATH_STATS = HotpathStats()


@transferable
@dataclass(frozen=True)
class WorkflowEvent:
    """Something a task did, visible to its scope.

    ``producer`` is the scope-local task name (engines translate instance
    paths to local names when publishing into a scope).
    """

    producer: str
    kind: EventKind
    name: str
    objects: Mapping[str, ObjectRef] = field(default_factory=dict)
    seq: int = 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<event #{self.seq} {self.producer}.{self.kind.value}:{self.name}>"


def source_matches(source, event: WorkflowEvent) -> Optional[ObjectRef]:
    """Return the matched value (or a notification token) if ``source``
    accepts ``event``, else None.

    For notification sources the return value is a placeholder ObjectRef so
    callers can treat both uniformly; its class name is ``"<notification>"``.
    """
    HOTPATH_STATS.source_evals += 1
    if source.task_name != event.producer:
        return None
    if source.guard_kind is GuardKind.OUTPUT:
        if event.kind not in _OUTPUT_KINDS or event.name != source.guard_name:
            return None
    elif source.guard_kind is GuardKind.INPUT:
        if event.kind is not EventKind.INPUT or event.name != source.guard_name:
            return None
    else:  # ANY: unguarded
        if event.kind not in (EventKind.OUTCOME, EventKind.MARK):
            return None
        if source.object_name is not None and source.object_name not in event.objects:
            return None
    if source.object_name is None:
        return ObjectRef("<notification>", None, event.producer, event.name)
    value = event.objects.get(source.object_name)
    if value is None:
        return None
    return value


# ---------------------------------------------------------------------------
# Trackers
# ---------------------------------------------------------------------------


class InputObjectTracker:
    """Tracks one ``inputobject ... from { alternatives }`` binding."""

    def __init__(self, binding: InputObjectBinding) -> None:
        self.binding = binding
        self.best_index: Optional[int] = None
        self.value: Optional[ObjectRef] = None

    def offer(self, event: WorkflowEvent) -> bool:
        """Offer an event; returns True if the tracker improved.

        The *earliest-listed* available alternative wins (§4.3: order is
        significant).  A fresh event matching the currently-best alternative
        replaces the value — the producer fired again (e.g. a repeat round),
        and the newest occurrence is the live one.
        """
        changed = False
        for index, source in enumerate(self.binding.sources):
            if self.best_index is not None and index > self.best_index:
                break
            value = source_matches(source, event)
            if value is not None:
                changed = self.best_index != index or value != self.value
                self.best_index = index
                self.value = value
                break
        return changed

    @property
    def satisfied(self) -> bool:
        return self.best_index is not None


class NotificationTracker:
    """Tracks one ``notification from { alternatives }`` binding."""

    def __init__(self, binding: NotificationBinding) -> None:
        self.binding = binding
        self.matched_index: Optional[int] = None
        self.matched_by: Optional[str] = None

    def offer(self, event: WorkflowEvent) -> bool:
        if self.matched_index is not None:
            return False
        for index, source in enumerate(self.binding.sources):
            if source_matches(source, event) is not None:
                self.matched_index = index
                self.matched_by = event.producer
                return True
        return False

    @property
    def satisfied(self) -> bool:
        return self.matched_index is not None


class InputSetTracker:
    """Tracks one input set of a task instance."""

    def __init__(self, binding: InputSetBinding) -> None:
        self.binding = binding
        self.objects = [InputObjectTracker(b) for b in binding.objects]
        self.notifications = [NotificationTracker(b) for b in binding.notifications]

    def offer(self, event: WorkflowEvent) -> bool:
        changed = False
        for tracker in self.objects:
            changed |= tracker.offer(event)
        for tracker in self.notifications:
            changed |= tracker.offer(event)
        return changed

    @property
    def satisfied(self) -> bool:
        return all(t.satisfied for t in self.objects) and all(
            t.satisfied for t in self.notifications
        )

    def values(self) -> Dict[str, ObjectRef]:
        if not self.satisfied:
            raise ValueError(f"input set {self.binding.name!r} is not satisfied")
        return {t.binding.name: t.value for t in self.objects}


class TaskInputTracker:
    """All input sets of one task instance; knows when the task can start."""

    def __init__(self, input_sets: Iterable[InputSetBinding]) -> None:
        self.sets = [InputSetTracker(binding) for binding in input_sets]

    def offer(self, event: WorkflowEvent) -> bool:
        changed = False
        for tracker in self.sets:
            changed |= tracker.offer(event)
        return changed

    def offer_all(self, events: Iterable[WorkflowEvent]) -> bool:
        changed = False
        for event in events:
            changed |= self.offer(event)
        return changed

    def ready(self) -> Optional[Tuple[str, Dict[str, ObjectRef]]]:
        """First declared satisfied input set (name, chosen values), if any —
        the deterministic choice rule of §3."""
        for tracker in self.sets:
            if tracker.satisfied:
                return tracker.binding.name, tracker.values()
        return None


# ---------------------------------------------------------------------------
# Scopes
# ---------------------------------------------------------------------------


class Scope:
    """The event space inside one compound task instance.

    Retains its event log so trackers created late (dynamically added tasks,
    repeat-reset tasks, crash-recovered tasks) can be replayed to the current
    state — the engine-side half of dynamic reconfiguration.
    """

    def __init__(self, path: str) -> None:
        self.path = path
        self.events: List[WorkflowEvent] = []
        self._seq = itertools.count(1)

    def publish(
        self,
        producer: str,
        kind: EventKind,
        name: str,
        objects: Optional[Mapping[str, ObjectRef]] = None,
    ) -> WorkflowEvent:
        event = WorkflowEvent(producer, kind, name, dict(objects or {}), next(self._seq))
        self.events.append(event)
        return event

    def replay_into(self, tracker: TaskInputTracker) -> bool:
        return tracker.offer_all(self.events)
