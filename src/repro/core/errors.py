"""Exception hierarchy for the workflow language and engines."""

from __future__ import annotations

from typing import List, Optional, Tuple


class WorkflowError(Exception):
    """Base class for every error raised by this library."""


class SchemaError(WorkflowError):
    """A script/schema is structurally ill-formed (duplicate names, missing
    references, kind mismatches...)."""

    def __init__(self, message: str, location: Optional[str] = None) -> None:
        self.location = location
        super().__init__(f"{location}: {message}" if location else message)


class ValidationReport(WorkflowError):
    """Aggregate of several :class:`SchemaError` messages, raised by the
    analyzer so a user sees every problem at once."""

    def __init__(self, errors: List[SchemaError]) -> None:
        self.errors = list(errors)
        lines = "\n".join(f"  - {e}" for e in self.errors)
        super().__init__(f"{len(self.errors)} schema error(s):\n{lines}")


class ParseError(WorkflowError):
    """Syntax error in a workflow script."""

    def __init__(self, message: str, line: int = 0, column: int = 0) -> None:
        self.line = line
        self.column = column
        super().__init__(f"line {line}, column {column}: {message}" if line else message)


class ExecutionError(WorkflowError):
    """Error during workflow instance execution."""


class TaskFailure(ExecutionError):
    """A task implementation raised an unexpected exception."""

    def __init__(self, task: str, cause: BaseException) -> None:
        self.task = task
        self.cause = cause
        super().__init__(f"task {task!r} implementation failed: {cause!r}")


class BindingError(ExecutionError):
    """No implementation could be bound for a task's code name."""


class TaskTimeout(ExecutionError):
    """A task implementation exceeded its wall-clock ``timeout`` property.

    Raised by :meth:`repro.engine.TaskContext.check_timeout`; the engine
    treats it like any other implementation failure (system retries, then
    the first declared abort outcome).
    """


class ReconfigurationError(WorkflowError):
    """A dynamic reconfiguration request could not be applied."""
