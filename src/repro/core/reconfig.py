"""Dynamic reconfiguration: transactional schema changes.

The paper (§3) requires that a *running* application can have tasks,
notifications and dependencies added or removed, with transactions making the
change atomic with respect to normal processing.  We implement changes as
first-class :class:`Change` values over immutable schemas: applying a change
produces a *new* ``Script`` (structural sharing keeps this cheap), validation
runs on the result, and the engines swap schemas at a quiescent point inside a
transaction.  Because schemas are immutable, a failed change leaves nothing to
undo — atomicity by construction, mirroring the paper's use of atomic objects.

Task paths address nested declarations: ``""`` is the script's top level,
``"order"`` the top-level task *order*, ``"trip/businessReservation"`` a
constituent inside a compound.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple, Union

from .errors import ReconfigurationError
from .graph import validate_script
from .schema import (
    AnyTaskDecl,
    CompoundTaskDecl,
    Implementation,
    InputObjectBinding,
    InputSetBinding,
    NotificationBinding,
    OutputBinding,
    Script,
    Source,
    TaskDecl,
)


def _split(path: str) -> List[str]:
    return [part for part in path.split("/") if part]


def _find(script: Script, path: str) -> AnyTaskDecl:
    parts = _split(path)
    if not parts:
        raise ReconfigurationError(f"path {path!r} does not name a task")
    try:
        decl: AnyTaskDecl = script.tasks[parts[0]]
    except KeyError:
        raise ReconfigurationError(f"no top-level task {parts[0]!r}") from None
    for part in parts[1:]:
        if not isinstance(decl, CompoundTaskDecl):
            raise ReconfigurationError(f"{decl.name!r} is not a compound task")
        child = decl.task(part)
        if child is None:
            raise ReconfigurationError(f"{decl.name!r} has no constituent {part!r}")
        decl = child
    return decl


def _rebuild(script: Script, path: str, fn: Callable[[AnyTaskDecl], AnyTaskDecl]) -> Script:
    """Return a new script where the declaration at ``path`` is ``fn(old)``;
    every compound on the way down is rebuilt, everything else is shared."""
    parts = _split(path)
    if not parts:
        raise ReconfigurationError(f"path {path!r} does not name a task")

    def descend(decl: AnyTaskDecl, remaining: List[str]) -> AnyTaskDecl:
        if not remaining:
            return fn(decl)
        if not isinstance(decl, CompoundTaskDecl):
            raise ReconfigurationError(f"{decl.name!r} is not a compound task")
        head = remaining[0]
        child = decl.task(head)
        if child is None:
            raise ReconfigurationError(f"{decl.name!r} has no constituent {head!r}")
        new_child = descend(child, remaining[1:])
        new_tasks = tuple(new_child if t.name == head else t for t in decl.tasks)
        return dataclasses.replace(decl, tasks=new_tasks)

    root_name = parts[0]
    if root_name not in script.tasks:
        raise ReconfigurationError(f"no top-level task {root_name!r}")
    new_root = descend(script.tasks[root_name], parts[1:])
    new_tasks = dict(script.tasks)
    new_tasks[root_name] = new_root
    return Script(
        classes=dict(script.classes),
        taskclasses=dict(script.taskclasses),
        tasks=new_tasks,
        templates=dict(script.templates),
    )


# ---------------------------------------------------------------------------
# Changes
# ---------------------------------------------------------------------------


class Change:
    """One atomic reconfiguration step."""

    description: str = ""

    def apply(self, script: Script) -> Script:
        raise NotImplementedError

    def apply_checked(self, script: Script) -> Script:
        """Apply, then validate the result; raise without effect if invalid."""
        result = self.apply(script)
        errors = validate_script(result)
        if errors:
            summary = "; ".join(str(e) for e in errors[:3])
            raise ReconfigurationError(
                f"change {self.description or type(self).__name__!r} would break "
                f"the schema: {summary}"
            )
        return result


@dataclass
class AddTask(Change):
    """Add a constituent to the compound at ``compound_path`` (the paper's
    own scenario: add t5 with dependencies from t2 and t4)."""

    compound_path: str
    decl: AnyTaskDecl

    @property
    def description(self) -> str:
        return f"add task {self.decl.name!r} to {self.compound_path!r}"

    def apply(self, script: Script) -> Script:
        def add(decl: AnyTaskDecl) -> AnyTaskDecl:
            if not isinstance(decl, CompoundTaskDecl):
                raise ReconfigurationError(f"{decl.name!r} is not a compound task")
            if decl.task(self.decl.name) is not None:
                raise ReconfigurationError(
                    f"{decl.name!r} already has a constituent {self.decl.name!r}"
                )
            return dataclasses.replace(decl, tasks=decl.tasks + (self.decl,))

        return _rebuild(script, self.compound_path, add)


@dataclass
class RemoveTask(Change):
    """Remove a constituent.  Refused while other constituents (or the
    compound's outputs) still depend on it, preserving well-formedness."""

    compound_path: str
    task_name: str

    @property
    def description(self) -> str:
        return f"remove task {self.task_name!r} from {self.compound_path!r}"

    def apply(self, script: Script) -> Script:
        def remove(decl: AnyTaskDecl) -> AnyTaskDecl:
            if not isinstance(decl, CompoundTaskDecl):
                raise ReconfigurationError(f"{decl.name!r} is not a compound task")
            if decl.task(self.task_name) is None:
                raise ReconfigurationError(
                    f"{decl.name!r} has no constituent {self.task_name!r}"
                )
            dependents = _dependents_of(decl, self.task_name)
            if dependents:
                raise ReconfigurationError(
                    f"cannot remove {self.task_name!r}: still referenced by "
                    f"{sorted(dependents)}"
                )
            new_tasks = tuple(t for t in decl.tasks if t.name != self.task_name)
            return dataclasses.replace(decl, tasks=new_tasks)

        return _rebuild(script, self.compound_path, remove)


@dataclass
class AddDependency(Change):
    """Add an input-object or notification dependency to a task instance.

    Locality of modification (§2): only the consumer's declaration changes.
    """

    task_path: str
    input_set: str
    object_name: Optional[str]       # None => notification dependency
    sources: Tuple[Source, ...]

    @property
    def description(self) -> str:
        what = f"object {self.object_name!r}" if self.object_name else "notification"
        return f"add {what} dependency to {self.task_path!r}.{self.input_set}"

    def apply(self, script: Script) -> Script:
        def add(decl: AnyTaskDecl) -> AnyTaskDecl:
            binding = decl.input_set(self.input_set)
            if binding is None:
                binding = InputSetBinding(self.input_set)
                new_sets = decl.input_sets + (binding,)
            else:
                new_sets = decl.input_sets
            if self.object_name is None:
                new_binding = dataclasses.replace(
                    binding,
                    notifications=binding.notifications
                    + (NotificationBinding(self.sources),),
                )
            else:
                if binding.object(self.object_name) is not None:
                    raise ReconfigurationError(
                        f"{decl.name!r} already binds object {self.object_name!r} "
                        f"in set {self.input_set!r}"
                    )
                new_binding = dataclasses.replace(
                    binding,
                    objects=binding.objects
                    + (InputObjectBinding(self.object_name, self.sources),),
                )
            rebuilt = tuple(
                new_binding if s.name == self.input_set else s for s in new_sets
            )
            return dataclasses.replace(decl, input_sets=rebuilt)

        return _rebuild(script, self.task_path, add)


@dataclass
class RemoveDependency(Change):
    """Remove a notification (by index) or an input-object binding."""

    task_path: str
    input_set: str
    object_name: Optional[str] = None
    notification_index: Optional[int] = None

    @property
    def description(self) -> str:
        what = (
            f"object {self.object_name!r}"
            if self.object_name
            else f"notification #{self.notification_index}"
        )
        return f"remove {what} dependency from {self.task_path!r}.{self.input_set}"

    def apply(self, script: Script) -> Script:
        def remove(decl: AnyTaskDecl) -> AnyTaskDecl:
            binding = decl.input_set(self.input_set)
            if binding is None:
                raise ReconfigurationError(
                    f"{decl.name!r} has no input set {self.input_set!r}"
                )
            if self.object_name is not None:
                if binding.object(self.object_name) is None:
                    raise ReconfigurationError(
                        f"set {self.input_set!r} does not bind {self.object_name!r}"
                    )
                new_binding = dataclasses.replace(
                    binding,
                    objects=tuple(
                        b for b in binding.objects if b.name != self.object_name
                    ),
                )
            else:
                index = self.notification_index or 0
                if not 0 <= index < len(binding.notifications):
                    raise ReconfigurationError(
                        f"set {self.input_set!r} has no notification #{index}"
                    )
                new_binding = dataclasses.replace(
                    binding,
                    notifications=tuple(
                        n for i, n in enumerate(binding.notifications) if i != index
                    ),
                )
            rebuilt = tuple(
                new_binding if s.name == self.input_set else s for s in decl.input_sets
            )
            return dataclasses.replace(decl, input_sets=rebuilt)

        return _rebuild(script, self.task_path, remove)


@dataclass
class AddTemplateInstances(Change):
    """Instantiate a task template N times into a running compound.

    This is the §5.3 "dynamic task containing several parallel requests"
    made explicit: the checkFlightReservation pattern can grow another
    parallel query at run time by stamping the template again.  Arguments
    are resolved against the template as usual; the new constituents join in
    WAIT and replay the scope history like any added task.
    """

    compound_path: str
    template_name: str
    instances: Tuple[Tuple[str, Tuple[str, ...]], ...]  # (name, args)...

    @property
    def description(self) -> str:
        names = ", ".join(name for name, _ in self.instances)
        return (
            f"instantiate template {self.template_name!r} as [{names}] in "
            f"{self.compound_path!r}"
        )

    def apply(self, script: Script) -> Script:
        try:
            template = script.templates[self.template_name]
        except KeyError:
            raise ReconfigurationError(
                f"unknown template {self.template_name!r}"
            ) from None

        def grow(decl: AnyTaskDecl) -> AnyTaskDecl:
            if not isinstance(decl, CompoundTaskDecl):
                raise ReconfigurationError(f"{decl.name!r} is not a compound task")
            added = []
            for name, args in self.instances:
                if decl.task(name) is not None:
                    raise ReconfigurationError(
                        f"{decl.name!r} already has a constituent {name!r}"
                    )
                added.append(template.instantiate(name, tuple(args)))
            return dataclasses.replace(decl, tasks=decl.tasks + tuple(added))

        return _rebuild(script, self.compound_path, grow)


@dataclass
class ReplaceOutputMapping(Change):
    """Rewire one output of a compound task to new sources.

    Needed when reconfiguration extends a workflow past its old final task
    (e.g. the paper's add-t5 scenario: the compound's outcome must now wait
    for t5 instead of t4)."""

    compound_path: str
    output: "OutputBinding"

    @property
    def description(self) -> str:
        return f"replace output {self.output.name!r} of {self.compound_path!r}"

    def apply(self, script: Script) -> Script:
        def rewire(decl: AnyTaskDecl) -> AnyTaskDecl:
            if not isinstance(decl, CompoundTaskDecl):
                raise ReconfigurationError(f"{decl.name!r} is not a compound task")
            if decl.output(self.output.name) is None:
                new_outputs = decl.outputs + (self.output,)
            else:
                new_outputs = tuple(
                    self.output if b.name == self.output.name else b
                    for b in decl.outputs
                )
            return dataclasses.replace(decl, outputs=new_outputs)

        return _rebuild(script, self.compound_path, rewire)


@dataclass
class ReplaceImplementation(Change):
    """Swap a task's late-bound implementation (online upgrade, §3)."""

    task_path: str
    implementation: Implementation

    @property
    def description(self) -> str:
        return f"replace implementation of {self.task_path!r}"

    def apply(self, script: Script) -> Script:
        def swap(decl: AnyTaskDecl) -> AnyTaskDecl:
            return dataclasses.replace(decl, implementation=self.implementation)

        return _rebuild(script, self.task_path, swap)


def apply_changes(script: Script, changes: List[Change]) -> Script:
    """Apply a batch of changes atomically: all validate or none apply."""
    result = script
    for change in changes:
        result = change.apply(result)
    errors = validate_script(result)
    if errors:
        summary = "; ".join(str(e) for e in errors[:3])
        raise ReconfigurationError(f"batch would break the schema: {summary}")
    return result


def _dependents_of(compound: CompoundTaskDecl, producer: str) -> List[str]:
    """Constituents (or outputs) of ``compound`` that source from ``producer``."""
    dependents: List[str] = []
    for child in compound.tasks:
        if child.name == producer:
            continue
        for binding in child.input_sets:
            for obj in binding.objects:
                if any(s.task_name == producer for s in obj.sources):
                    dependents.append(child.name)
            for notif in binding.notifications:
                if any(s.task_name == producer for s in notif.sources):
                    dependents.append(child.name)
    for out in compound.outputs:
        for obj in out.objects:
            if any(s.task_name == producer for s in obj.sources):
                dependents.append(f"{compound.name}.outputs.{out.name}")
        for notif in out.notifications:
            if any(s.task_name == producer for s in notif.sources):
                dependents.append(f"{compound.name}.outputs.{out.name}")
    return sorted(set(dependents))
