"""Programmatic script construction.

The paper ships both a textual and a graphical programming environment; this
builder is the library's second front end — a fluent Python API producing the
same validated :class:`~repro.core.schema.Script` objects as the parser, handy
for tests, generated workloads and embedding.

Example::

    b = ScriptBuilder()
    b.object_classes("Order", "DispatchNote")
    (b.taskclass("Dispatch")
        .input_set("main", order="Order")
        .outcome("dispatchCompleted", dispatch="DispatchNote")
        .abort_outcome("dispatchFailed"))
    (b.compound("processOrder", "ProcessOrder")
        .task("dispatch", "Dispatch")
            .implementation(code="refDispatch")
            .input("main", "order", from_input("processOrder", "main", "order"))
        .up()
        .output("done").object("note", from_output("dispatch", "dispatchCompleted", "dispatch")))
    script = b.build()          # validated
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, Union

from .errors import SchemaError
from .graph import check
from .schema import (
    CompoundTaskDecl,
    GuardKind,
    Implementation,
    InputObjectBinding,
    InputSetBinding,
    InputSetSpec,
    NotificationBinding,
    ObjectDecl,
    OutputBinding,
    OutputKind,
    OutputObjectBinding,
    OutputSpec,
    Script,
    Source,
    TaskClass,
    TaskDecl,
    TaskTemplate,
)


# -- source helpers (module-level so call sites stay short) --------------------


def from_output(task: str, output: str, obj: Optional[str] = None) -> Source:
    """``[obj] of task <task> if output <output>`` (or a notification)."""
    return Source(task, obj, GuardKind.OUTPUT, output)


def from_input(task: str, input_set: str, obj: Optional[str] = None) -> Source:
    """``[obj] of task <task> if input <input_set>`` (or a notification)."""
    return Source(task, obj, GuardKind.INPUT, input_set)


def from_task(task: str, obj: str) -> Source:
    """Unguarded ``<obj> of task <task>``: any outcome/mark carrying it."""
    return Source(task, obj, GuardKind.ANY, None)


class TaskClassBuilder:
    """Builds one :class:`TaskClass`."""

    def __init__(self, parent: "ScriptBuilder", name: str) -> None:
        self._parent = parent
        self._name = name
        self._input_sets: List[InputSetSpec] = []
        self._outputs: List[OutputSpec] = []

    def input_set(self, name: str, **objects: str) -> "TaskClassBuilder":
        decls = tuple(ObjectDecl(n, c) for n, c in objects.items())
        self._input_sets.append(InputSetSpec(name, decls))
        return self

    def _output(self, name: str, kind: OutputKind, objects: Dict[str, str]) -> "TaskClassBuilder":
        decls = tuple(ObjectDecl(n, c) for n, c in objects.items())
        self._outputs.append(OutputSpec(name, kind, decls))
        return self

    def outcome(self, name: str, **objects: str) -> "TaskClassBuilder":
        return self._output(name, OutputKind.OUTCOME, objects)

    def abort_outcome(self, name: str, **objects: str) -> "TaskClassBuilder":
        return self._output(name, OutputKind.ABORT, objects)

    def repeat_outcome(self, name: str, **objects: str) -> "TaskClassBuilder":
        return self._output(name, OutputKind.REPEAT, objects)

    def mark(self, name: str, **objects: str) -> "TaskClassBuilder":
        return self._output(name, OutputKind.MARK, objects)

    def done(self) -> "ScriptBuilder":
        self._parent._finalize(self)
        return self._parent

    def _finish(self) -> TaskClass:
        return TaskClass(self._name, tuple(self._input_sets), tuple(self._outputs))


class _InputsMixin:
    """Shared input-binding surface of task and compound builders."""

    _input_sets: Dict[str, Tuple[List[InputObjectBinding], List[NotificationBinding]]]

    def _set(self, name: str):
        return self._input_sets.setdefault(name, ([], []))

    def input(self, set_name: str, object_name: str, *sources: Source):
        """Bind ``object_name`` in input set ``set_name`` to ordered sources."""
        objects, _ = self._set(set_name)
        fixed = tuple(
            Source(s.task_name, object_name, s.guard_kind, s.guard_name)
            if s.object_name is None and s.guard_kind is not GuardKind.ANY
            else s
            for s in sources
        )
        objects.append(InputObjectBinding(object_name, fixed))
        return self

    def notify(self, set_name: str, *sources: Source):
        """Add one notification dependency (alternatives) to ``set_name``."""
        _, notifications = self._set(set_name)
        notifications.append(NotificationBinding(tuple(sources)))
        return self

    def empty_input_set(self, set_name: str):
        """Declare an input set with no dependencies (starts immediately)."""
        self._set(set_name)
        return self

    def _built_input_sets(self) -> Tuple[InputSetBinding, ...]:
        return tuple(
            InputSetBinding(name, tuple(objects), tuple(notifications))
            for name, (objects, notifications) in self._input_sets.items()
        )


class TaskBuilder(_InputsMixin):
    """Builds one :class:`TaskDecl` (possibly nested in a compound)."""

    def __init__(
        self,
        parent: Union["ScriptBuilder", "CompoundBuilder"],
        name: str,
        taskclass: str,
    ) -> None:
        self._parent = parent
        self._name = name
        self._taskclass = taskclass
        self._implementation = Implementation()
        self._input_sets = {}

    def implementation(self, **properties: str) -> "TaskBuilder":
        self._implementation = Implementation.of(**properties)
        return self

    def up(self) -> Union["ScriptBuilder", "CompoundBuilder"]:
        self._parent._finalize(self)
        return self._parent

    def _finish(self) -> TaskDecl:
        return TaskDecl(
            self._name, self._taskclass, self._implementation, self._built_input_sets()
        )


class OutputBuilder:
    """Builds one output mapping of a compound."""

    def __init__(self, parent: "CompoundBuilder", name: str) -> None:
        self._parent = parent
        self._name = name
        self._objects: List[OutputObjectBinding] = []
        self._notifications: List[NotificationBinding] = []

    def object(self, object_name: str, *sources: Source) -> "OutputBuilder":
        fixed = tuple(
            Source(s.task_name, object_name, s.guard_kind, s.guard_name)
            if s.object_name is None and s.guard_kind is not GuardKind.ANY
            else s
            for s in sources
        )
        self._objects.append(OutputObjectBinding(object_name, fixed))
        return self

    def notify(self, *sources: Source) -> "OutputBuilder":
        self._notifications.append(NotificationBinding(tuple(sources)))
        return self

    def up(self) -> "CompoundBuilder":
        return self._parent

    def _finish(self) -> OutputBinding:
        return OutputBinding(self._name, tuple(self._objects), tuple(self._notifications))


class CompoundBuilder(_InputsMixin):
    """Builds one :class:`CompoundTaskDecl`."""

    def __init__(
        self,
        parent: Union["ScriptBuilder", "CompoundBuilder"],
        name: str,
        taskclass: str,
    ) -> None:
        self._parent = parent
        self._name = name
        self._taskclass = taskclass
        self._implementation = Implementation()
        self._input_sets = {}
        self._tasks: List[Union[TaskDecl, CompoundTaskDecl]] = []
        self._outputs: List[OutputBuilder] = []

    @property
    def name(self) -> str:
        return self._name

    def implementation(self, **properties: str) -> "CompoundBuilder":
        self._implementation = Implementation.of(**properties)
        return self

    def task(self, name: str, taskclass: str) -> TaskBuilder:
        builder = TaskBuilder(self, name, taskclass)
        self._tasks.append(builder)
        return builder

    def compound(self, name: str, taskclass: str) -> "CompoundBuilder":
        builder = CompoundBuilder(self, name, taskclass)
        self._tasks.append(builder)
        return builder

    def add(self, decl: Union[TaskDecl, CompoundTaskDecl]) -> "CompoundBuilder":
        """Add a pre-built declaration (e.g. a template instantiation)."""
        self._tasks.append(decl)
        return self

    def output(self, name: str) -> OutputBuilder:
        builder = OutputBuilder(self, name)
        self._outputs.append(builder)
        return builder

    def _finalize(self, child: Union[TaskBuilder, "CompoundBuilder"]) -> None:
        index = self._tasks.index(child)
        self._tasks[index] = child._finish()

    def up(self) -> Union["ScriptBuilder", "CompoundBuilder"]:
        self._parent._finalize(self)
        return self._parent

    def _finish(self) -> CompoundTaskDecl:
        tasks = tuple(
            entry._finish() if isinstance(entry, (TaskBuilder, CompoundBuilder)) else entry
            for entry in self._tasks
        )
        return CompoundTaskDecl(
            name=self._name,
            taskclass_name=self._taskclass,
            implementation=self._implementation,
            input_sets=self._built_input_sets(),
            tasks=tasks,
            outputs=tuple(b._finish() for b in self._outputs),
        )


class ScriptBuilder:
    """Top-level builder producing a validated :class:`Script`."""

    def __init__(self) -> None:
        self._script = Script()
        self._pending: List[Union[TaskClassBuilder, TaskBuilder, CompoundBuilder]] = []

    # -- declarations -------------------------------------------------------------

    def object_class(self, name: str, extends: Optional[str] = None) -> "ScriptBuilder":
        self._script.add_class(name, extends)
        return self

    def object_classes(self, *names: str) -> "ScriptBuilder":
        for name in names:
            self._script.add_class(name)
        return self

    def taskclass(self, name: str) -> TaskClassBuilder:
        builder = TaskClassBuilder(self, name)
        self._pending.append(builder)
        return builder

    def task(self, name: str, taskclass: str) -> TaskBuilder:
        builder = TaskBuilder(self, name, taskclass)
        self._pending.append(builder)
        return builder

    def compound(self, name: str, taskclass: str) -> CompoundBuilder:
        builder = CompoundBuilder(self, name, taskclass)
        self._pending.append(builder)
        return builder

    def template(
        self, name: str, parameters: Tuple[str, ...], body: Union[TaskDecl, CompoundTaskDecl]
    ) -> "ScriptBuilder":
        self._script.add_template(TaskTemplate(name, tuple(parameters), body))
        return self

    def instantiate(self, instance: str, template: str, *arguments: str) -> "ScriptBuilder":
        self._script.instantiate_template(instance, template, tuple(arguments))
        return self

    # -- registration hooks used by sub-builders -----------------------------------

    def _finalize(self, child: Union[TaskClassBuilder, TaskBuilder, CompoundBuilder]) -> None:
        self._pending.remove(child)
        result = child._finish()
        if isinstance(result, TaskClass):
            self._script.add_taskclass(result)
        else:
            self._script.add_task(result)

    # -- finishing -------------------------------------------------------------------

    def build(self, validate: bool = True) -> Script:
        """Finalize dangling sub-builders, then validate and return the script."""
        while self._pending:
            self._finalize(self._pending[0])
        return check(self._script) if validate else self._script

    @property
    def script(self) -> Script:
        """The script under construction (not yet validated)."""
        return self._script
