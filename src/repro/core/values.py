"""Run-time object references.

The language moves *references* to application objects between tasks; the
script never looks inside them (§4.1).  An :class:`ObjectRef` is such a typed
reference plus provenance (which task produced it, through which output) —
provenance is what makes event logs and experiment assertions meaningful.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from ..orb.marshal import transferable


@transferable
@dataclass(frozen=True)
class ObjectRef:
    """A typed reference to an application object."""

    class_name: str
    value: Any = None
    produced_by: Optional[str] = None   # task path, e.g. "order/dispatch"
    via: Optional[str] = None           # output or input-set name

    def with_provenance(self, task_path: str, via: str) -> "ObjectRef":
        return ObjectRef(self.class_name, self.value, task_path, via)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        origin = f" from {self.produced_by}.{self.via}" if self.produced_by else ""
        return f"<{self.class_name}:{self.value!r}{origin}>"


def ref(class_name: str, value: Any = None) -> ObjectRef:
    """Convenience constructor used by task implementations."""
    return ObjectRef(class_name, value)
