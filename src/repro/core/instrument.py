"""Process-global I/O-path counters (the ``HOTPATH_STATS`` pattern).

``IOPATH_STATS`` counts the raw-speed I/O core's work: WAL forces vs the
physical syncs that actually hit the mirror file (group commit coalesces
many forces behind one sync), journal entries vs the batched transactions
that persist them, and marshal calls vs the zero-copy fast-path hits that
avoided a structural copy.  Benchmarks and tests reset it via the autouse
fixtures in ``tests/conftest.py`` / ``benchmarks/conftest.py``; production
code only ever increments, so the counters are free of branches.
"""

from __future__ import annotations

from typing import Dict


class IopathStats:
    """Counters for the I/O hot path (WAL, journal, marshal)."""

    __slots__ = (
        "wal_forces",
        "wal_syncs",
        "wal_records_mirrored",
        "journal_entries",
        "journal_batches",
        "marshal_calls",
        "marshal_fast_hits",
    )

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        self.wal_forces = 0            # WriteAheadLog.force() calls
        self.wal_syncs = 0             # physical sync operations (fsyncs)
        self.wal_records_mirrored = 0  # records written to the disk mirror
        self.journal_entries = 0       # execution-service journal entries
        self.journal_batches = 0       # journal flush transactions
        self.marshal_calls = 0         # top-level marshal() calls
        self.marshal_fast_hits = 0     # calls answered by reference (no copy)

    # -- derived ratios (guarded against division by zero) ----------------------

    def forces_per_sync(self) -> float:
        return self.wal_forces / self.wal_syncs if self.wal_syncs else 0.0

    def entries_per_batch(self) -> float:
        return self.journal_entries / self.journal_batches if self.journal_batches else 0.0

    def fast_hit_rate(self) -> float:
        return self.marshal_fast_hits / self.marshal_calls if self.marshal_calls else 0.0

    def snapshot(self) -> Dict[str, float]:
        return {
            "wal_forces": self.wal_forces,
            "wal_syncs": self.wal_syncs,
            "wal_records_mirrored": self.wal_records_mirrored,
            "journal_entries": self.journal_entries,
            "journal_batches": self.journal_batches,
            "marshal_calls": self.marshal_calls,
            "marshal_fast_hits": self.marshal_fast_hits,
            "forces_per_sync": round(self.forces_per_sync(), 3),
            "entries_per_batch": round(self.entries_per_batch(), 3),
            "marshal_fast_hit_rate": round(self.fast_hit_rate(), 3),
        }


IOPATH_STATS = IopathStats()
