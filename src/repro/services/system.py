"""Assembly of the whole workflow management system (paper Fig. 4).

One :class:`WorkflowSystem` builds the simulated world: a repository node, an
execution-service node, a configurable pool of worker nodes and a client
node, all joined by the ORB over the (faulty, partitionable) network.  It
exposes the same client surface the paper's Java-applet administration tools
used: deploy a script, instantiate it, watch it run, reconfigure it — while
experiments crash nodes and drop messages underneath.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional

from ..engine.events import WorkflowStatus
from ..engine.registry import ImplementationRegistry
from ..net.clock import EventClock
from ..net.network import LatencyModel, Network
from ..net.node import Node
from ..orb.broker import ObjectBroker
from ..orb.proxy import Proxy
from ..resilience import ResilienceConfig
from ..txn.store import ObjectStore
from .execution import EXECUTION_INTERFACE, ExecutionService
from .repository import REPOSITORY_INTERFACE, RepositoryService
from .worker import WORKER_INTERFACE, TaskWorker

TERMINAL = (
    WorkflowStatus.COMPLETED.value,
    WorkflowStatus.ABORTED.value,
    WorkflowStatus.FAILED.value,
)


class WorkflowSystem:
    """The full distributed workflow system, simulated on one event clock."""

    def __init__(
        self,
        workers: int = 2,
        latency: Optional[LatencyModel] = None,
        loss_rate: float = 0.0,
        seed: int = 0,
        durable: bool = True,
        dispatch_timeout: float = 30.0,
        sweep_interval: float = 10.0,
        registry: Optional[ImplementationRegistry] = None,
        resilience: Optional[ResilienceConfig] = None,
        dup_rate: float = 0.0,
        reorder_window: float = 0.0,
        journal_batch: bool = True,
        journal_window: float = 5.0,
        group_commit: bool = True,
        mirror_path: Optional[str] = None,
    ) -> None:
        """``resilience`` tunes the adaptive dispatch layer (backoff, circuit
        breakers, health routing, hedging).  Defaults to
        ``ResilienceConfig.for_timeouts(dispatch_timeout, sweep_interval,
        seed=seed)``; pass ``ResilienceConfig.disabled()`` for the legacy
        fixed-interval dispatcher.  ``dup_rate``/``reorder_window`` feed the
        network's duplication and reordering fault model.

        The I/O core (docs/PROTOCOLS.md §11) is on by default:
        ``journal_batch`` batches the execution journal's appends into one
        transaction per durability barrier and ``group_commit`` coalesces
        the execution store's WAL mirror fsyncs; ``mirror_path`` attaches a
        real on-disk JSON-lines mirror so those fsyncs have physical cost
        (benchmarks use this to measure fsyncs/step honestly)."""
        self.clock = EventClock()
        self.network = Network(
            self.clock,
            latency or LatencyModel(1.0, 0.5),
            loss_rate,
            seed,
            dup_rate=dup_rate,
            reorder_window=reorder_window,
        )
        self.broker = ObjectBroker(self.clock, self.network)
        self.registry = registry or ImplementationRegistry()

        self.repository_node = Node("repository-node", self.clock, self.network)
        self.repository_store = ObjectStore("repository-store")
        self.repository = RepositoryService("repository", self.repository_store)
        self.repository_node.install(self.repository)
        self.broker.register(
            "repository", REPOSITORY_INTERFACE, self.repository, self.repository_node
        )

        self.worker_nodes: List[Node] = []
        self.workers: List[TaskWorker] = []
        worker_names: List[str] = []
        for index in range(workers):
            node = Node(f"worker-node-{index + 1}", self.clock, self.network)
            worker = TaskWorker(f"worker-{index + 1}", self.registry)
            node.install(worker)
            name = f"worker-{index + 1}"
            self.broker.register(name, WORKER_INTERFACE, worker, node)
            self.worker_nodes.append(node)
            self.workers.append(worker)
            worker_names.append(name)

        self.execution_node = Node("execution-node", self.clock, self.network)
        self.execution_store = ObjectStore(
            "execution-store", mirror_path=mirror_path, group_commit=group_commit
        )
        self.execution = ExecutionService(
            "execution",
            self.execution_store,
            self.broker,
            repository_name="repository",
            worker_names=worker_names,
            durable=durable,
            dispatch_timeout=dispatch_timeout,
            sweep_interval=sweep_interval,
            resilience=resilience
            or ResilienceConfig.for_timeouts(
                dispatch_timeout, sweep_interval, seed=seed
            ),
            journal_batch=journal_batch,
            journal_window=journal_window,
        )
        self.execution_node.install(self.execution)
        self.broker.register(
            "execution", EXECUTION_INTERFACE, self.execution, self.execution_node
        )

        self.client_node = Node("client-node", self.clock, self.network)

    # -- client-side proxies (what the paper's browser tools talk to) ----------------

    def repository_proxy(self, from_node: Optional[Node] = None) -> Proxy:
        return Proxy(self.broker, from_node or self.client_node, "repository")

    def execution_proxy(self, from_node: Optional[Node] = None) -> Proxy:
        return Proxy(self.broker, from_node or self.client_node, "execution")

    # -- convenience client operations ---------------------------------------------------

    def deploy(self, script_name: str, text: str) -> int:
        return self.repository_proxy().store_script(script_name, text)

    def instantiate(
        self,
        script_name: str,
        root_task: str,
        inputs: Optional[Mapping[str, Any]] = None,
        input_set: str = "main",
    ) -> str:
        return self.execution_proxy().instantiate(
            script_name, root_task, input_set, dict(inputs or {})
        )

    def status(self, iid: str) -> Dict[str, Any]:
        return self.execution_proxy().status(iid)

    def result(self, iid: str) -> Dict[str, Any]:
        return self.execution_proxy().result(iid)

    def run_until_terminal(
        self, iid: str, max_time: float = 100_000.0, check_every: float = 25.0
    ) -> Dict[str, Any]:
        """Advance simulated time until the instance terminates (or the time
        budget runs out — the result then reports its last observed state).

        Status is read directly off the execution service (not through the
        ORB) so monitoring does not perturb the experiment; when the
        execution node is down the system simply keeps running time forward,
        exactly as an operator would wait out an outage.
        """
        deadline = self.clock.now + max_time
        while self.clock.now < deadline:
            self.clock.advance(check_every)
            if not self.execution_node.alive:
                continue
            runtime = self.execution.runtimes.get(iid)
            if runtime is None:
                if self.execution.durable:
                    continue  # not yet recovered
                break  # lost for good: the ablation outcome
            if runtime.tree.status.value in TERMINAL:
                break
        if self.execution_node.alive and iid in self.execution.runtimes:
            return self.execution.result(iid)
        return {"instance": iid, "status": "lost", "outcome": None, "objects": {},
                "marks": [], "error": "instance not present on execution node"}
