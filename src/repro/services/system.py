"""Assembly of the whole workflow management system (paper Fig. 4).

One :class:`WorkflowSystem` builds the simulated world: a repository node, an
execution-service node, a configurable pool of worker nodes and a client
node, all joined by the ORB over the (faulty, partitionable) network.  It
exposes the same client surface the paper's Java-applet administration tools
used: deploy a script, instantiate it, watch it run, reconfigure it — while
experiments crash nodes and drop messages underneath.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional

from ..engine.events import WorkflowStatus
from ..engine.registry import ImplementationRegistry
from ..net.clock import EventClock
from ..net.network import LatencyModel, Network
from ..net.node import Node
from ..orb.broker import CommFailure, ObjectBroker, Overloaded
from ..orb.proxy import Proxy
from ..overload import OverloadConfig
from ..replication import (
    LEASE_INTERFACE,
    LeaseService,
    REPLICA_INTERFACE,
    ReplicatedExecutionService,
    Role,
)
from ..resilience import ResilienceConfig
from ..txn.store import ObjectStore
from .execution import EXECUTION_INTERFACE, ExecutionService
from .repository import REPOSITORY_INTERFACE, RepositoryService
from .worker import WORKER_INTERFACE, ServiceProfile, TaskWorker

TERMINAL = (
    WorkflowStatus.COMPLETED.value,
    WorkflowStatus.ABORTED.value,
    WorkflowStatus.FAILED.value,
)


class WorkflowSystem:
    """The full distributed workflow system, simulated on one event clock."""

    def __init__(
        self,
        workers: int = 2,
        latency: Optional[LatencyModel] = None,
        loss_rate: float = 0.0,
        seed: int = 0,
        durable: bool = True,
        dispatch_timeout: float = 30.0,
        sweep_interval: float = 10.0,
        registry: Optional[ImplementationRegistry] = None,
        resilience: Optional[ResilienceConfig] = None,
        dup_rate: float = 0.0,
        reorder_window: float = 0.0,
        journal_batch: bool = True,
        journal_window: float = 5.0,
        group_commit: bool = True,
        mirror_path: Optional[str] = None,
        replicas: int = 0,
        lease_duration: float = 60.0,
        repl_interval: float = 5.0,
        overload: Optional[OverloadConfig] = None,
        worker_service_time: float = 0.0,
        worker_lanes: int = 1,
    ) -> None:
        """``resilience`` tunes the adaptive dispatch layer (backoff, circuit
        breakers, health routing, hedging).  Defaults to
        ``ResilienceConfig.for_timeouts(dispatch_timeout, sweep_interval,
        seed=seed)``; pass ``ResilienceConfig.disabled()`` for the legacy
        fixed-interval dispatcher.  ``dup_rate``/``reorder_window`` feed the
        network's duplication and reordering fault model.

        The I/O core (docs/PROTOCOLS.md §11) is on by default:
        ``journal_batch`` batches the execution journal's appends into one
        transaction per durability barrier and ``group_commit`` coalesces
        the execution store's WAL mirror fsyncs; ``mirror_path`` attaches a
        real on-disk JSON-lines mirror so those fsyncs have physical cost
        (benchmarks use this to measure fsyncs/step honestly).

        ``replicas`` > 0 builds a replicated execution service instead of a
        standalone one (docs/PROTOCOLS.md §12): that many
        :class:`~repro.replication.ReplicatedExecutionService` copies — one
        per node — plus a :class:`~repro.replication.LeaseService` arbiter.
        The first replica wins the bootstrap lease and registers itself under
        the public ``"execution"`` name; the rest tail its WAL as warm
        standbys and take over (with a fresh fencing epoch) when the lease
        lapses.  ``replicas=0`` is the legacy unreplicated layout, unchanged.

        ``overload`` tunes the admission layer (docs/PROTOCOLS.md §13):
        bounded admission queue, adaptive concurrency window and priority
        shedding on the execution service.  ``worker_service_time`` /
        ``worker_lanes`` give every worker a finite-capacity profile (each
        task occupies one of ``worker_lanes`` lanes for
        ``worker_service_time`` virtual seconds) — 0 keeps workers
        instantaneous, the legacy behaviour."""
        self.clock = EventClock()
        self.network = Network(
            self.clock,
            latency or LatencyModel(1.0, 0.5),
            loss_rate,
            seed,
            dup_rate=dup_rate,
            reorder_window=reorder_window,
        )
        self.broker = ObjectBroker(self.clock, self.network)
        self.registry = registry or ImplementationRegistry()

        self.repository_node = Node("repository-node", self.clock, self.network)
        self.repository_store = ObjectStore("repository-store")
        self.repository = RepositoryService("repository", self.repository_store)
        self.repository_node.install(self.repository)
        self.broker.register(
            "repository", REPOSITORY_INTERFACE, self.repository, self.repository_node
        )

        self.worker_nodes: List[Node] = []
        self.workers: List[TaskWorker] = []
        worker_names: List[str] = []
        profile = (
            ServiceProfile(worker_service_time, worker_lanes)
            if worker_service_time > 0
            else None
        )
        for index in range(workers):
            node = Node(f"worker-node-{index + 1}", self.clock, self.network)
            worker = TaskWorker(f"worker-{index + 1}", self.registry, profile=profile)
            node.install(worker)
            name = f"worker-{index + 1}"
            self.broker.register(name, WORKER_INTERFACE, worker, node)
            self.worker_nodes.append(node)
            self.workers.append(worker)
            worker_names.append(name)

        resilience = resilience or ResilienceConfig.for_timeouts(
            dispatch_timeout, sweep_interval, seed=seed
        )
        self.lease_node: Optional[Node] = None
        self.lease: Optional[LeaseService] = None
        self.replica_nodes: List[Node] = []
        self.execution_replicas: List[ReplicatedExecutionService] = []
        if replicas > 0:
            # The arbiter comes up first: replicas acquire during on_start.
            self.lease_node = Node("lease-node", self.clock, self.network)
            self.lease_store = ObjectStore("lease-store")
            self.lease = LeaseService("lease", self.lease_store, duration=lease_duration)
            self.lease_node.install(self.lease)
            self.broker.register("lease", LEASE_INTERFACE, self.lease, self.lease_node)

            replica_names = [f"execution-r{i + 1}" for i in range(replicas)]
            for i, rname in enumerate(replica_names):
                # replica 1 keeps the legacy node name so nemesis schedules
                # written against "execution-node" hit the bootstrap primary
                node_name = "execution-node" if i == 0 else f"standby-node-{i + 1}"
                node = Node(node_name, self.clock, self.network)
                store = ObjectStore(
                    f"execution-store-r{i + 1}",
                    mirror_path=mirror_path if i == 0 else None,
                    group_commit=group_commit,
                )
                service = ReplicatedExecutionService(
                    rname,
                    store,
                    self.broker,
                    repository_name="repository",
                    worker_names=worker_names,
                    lease_name="lease",
                    peer_names=replica_names,
                    repl_interval=repl_interval,
                    durable=True,
                    dispatch_timeout=dispatch_timeout,
                    sweep_interval=sweep_interval,
                    resilience=resilience,
                    journal_batch=journal_batch,
                    journal_window=journal_window,
                    overload=overload,
                )
                self.replica_nodes.append(node)
                self.execution_replicas.append(service)
                # every replica is reachable under its own (unfenced-stream)
                # name before any on_start runs, so the bootstrap primary can
                # ship to standbys installed after it
                self.broker.register(
                    rname, REPLICA_INTERFACE, service, node, fence=service._fence
                )
            for node, service in zip(self.replica_nodes, self.execution_replicas):
                node.install(service)  # replica 1 wins the bootstrap lease
            self.execution_node = self.replica_nodes[0]
            self.execution_store = self.execution_replicas[0].store
            self.execution: ExecutionService = self.execution_replicas[0]
        else:
            self.execution_node = Node("execution-node", self.clock, self.network)
            self.execution_store = ObjectStore(
                "execution-store", mirror_path=mirror_path, group_commit=group_commit
            )
            self.execution = ExecutionService(
                "execution",
                self.execution_store,
                self.broker,
                repository_name="repository",
                worker_names=worker_names,
                durable=durable,
                dispatch_timeout=dispatch_timeout,
                sweep_interval=sweep_interval,
                resilience=resilience,
                journal_batch=journal_batch,
                journal_window=journal_window,
                overload=overload,
            )
            self.execution_node.install(self.execution)
            self.broker.register(
                "execution", EXECUTION_INTERFACE, self.execution, self.execution_node
            )

        self.client_node = Node("client-node", self.clock, self.network)

    def primary_execution(self) -> Optional[ExecutionService]:
        """The execution service currently owning the instances: the live
        primary replica when replicated, the single service otherwise (or
        None while no live primary exists — e.g. mid-failover)."""
        if not self.execution_replicas:
            return self.execution if self.execution_node.alive else None
        for node, service in zip(self.replica_nodes, self.execution_replicas):
            if node.alive and service.role is Role.PRIMARY:
                return service
        return None

    # -- client-side proxies (what the paper's browser tools talk to) ----------------

    def repository_proxy(self, from_node: Optional[Node] = None) -> Proxy:
        return Proxy(self.broker, from_node or self.client_node, "repository")

    def execution_proxy(self, from_node: Optional[Node] = None) -> Proxy:
        return Proxy(self.broker, from_node or self.client_node, "execution")

    # -- convenience client operations ---------------------------------------------------

    def deploy(self, script_name: str, text: str) -> int:
        return self.repository_proxy().store_script(script_name, text)

    def instantiate(
        self,
        script_name: str,
        root_task: str,
        inputs: Optional[Mapping[str, Any]] = None,
        input_set: str = "main",
    ) -> str:
        if not self.execution_replicas:
            return self.execution_proxy().instantiate(
                script_name, root_task, input_set, dict(inputs or {})
            )
        # Replicated: the "execution" alias may momentarily point at a dead
        # or demoted replica mid-failover; retry across lease turnover like
        # any CORBA client facing COMM_FAILURE would.
        last: Optional[Exception] = None
        for _attempt in range(40):
            try:
                return self.execution_proxy().instantiate(
                    script_name, root_task, input_set, dict(inputs or {})
                )
            except Overloaded:
                # A backpressure refusal is not a failover: surface it to the
                # caller's cooperative backoff instead of hammering the
                # primary 40 more times (Overloaded subclasses CommFailure).
                raise
            except CommFailure as exc:
                last = exc
                self.clock.advance(self.execution.repl_interval)
        raise last if last is not None else CommFailure("no primary")

    def status(self, iid: str) -> Dict[str, Any]:
        return self.execution_proxy().status(iid)

    def result(self, iid: str) -> Dict[str, Any]:
        return self.execution_proxy().result(iid)

    def run_until_terminal(
        self, iid: str, max_time: float = 100_000.0, check_every: float = 25.0
    ) -> Dict[str, Any]:
        """Advance simulated time until the instance terminates (or the time
        budget runs out — the result then reports its last observed state).

        Status is read directly off the execution service (not through the
        ORB) so monitoring does not perturb the experiment; when the
        execution node is down the system simply keeps running time forward,
        exactly as an operator would wait out an outage.
        """
        deadline = self.clock.now + max_time
        while self.clock.now < deadline:
            self.clock.advance(check_every)
            service = self.primary_execution()
            if service is None:
                continue  # node down / failover in progress: wait it out
            runtime = service.runtimes.get(iid)
            if runtime is None:
                if service.durable:
                    continue  # not yet recovered (or not yet replicated over)
                break  # lost for good: the ablation outcome
            if runtime.tree.status.value in TERMINAL:
                break
        service = self.primary_execution()
        if service is not None and iid in service.runtimes:
            return service.result(iid)
        return {"instance": iid, "status": "lost", "outcome": None, "objects": {},
                "marks": [], "error": "instance not present on execution node"}
