"""Administrative applications, themselves expressed as workflows.

The paper (§3) points out that its management tools — instantiating,
monitoring and dynamically reconfiguring workflows — are *themselves*
workflow applications, which makes them fault-tolerant "without any extra
effort".  This module reproduces that: a monitoring workflow whose task polls
a target instance through the execution service and loops via a *repeat
outcome* until the target terminates, and a reconfiguration workflow that
applies a schema change as a task.
"""

from __future__ import annotations

from typing import Optional

from ..engine import ImplementationRegistry, outcome, repeat
from ..lang import compile_script
from .system import TERMINAL, WorkflowSystem

MONITOR_SCRIPT = """
class InstanceId;
class Report;

taskclass MonitorApplication
{
    inputs { input main { instance of class InstanceId } };
    outputs { outcome finished { report of class Report } }
};

taskclass CheckStatus
{
    inputs { input main { instance of class InstanceId } };
    outputs
    {
        outcome terminal { report of class Report };
        repeat outcome poll { }
    }
};

compoundtask monitorApplication of taskclass MonitorApplication
{
    task checkStatus of taskclass CheckStatus
    {
        implementation { "code" is "refCheckStatus" };
        inputs
        {
            input main
            {
                inputobject instance from
                {
                    instance of task monitorApplication if input main
                }
            }
        }
    };
    outputs
    {
        outcome finished
        {
            outputobject report from
            {
                report of task checkStatus if output terminal
            }
        }
    }
};
"""

RECONFIGURE_SCRIPT = """
class InstanceId;
class ScriptText;
class Report;

taskclass ReconfigureApplication
{
    inputs
    {
        input main
        {
            instance of class InstanceId;
            script of class ScriptText
        }
    };
    outputs
    {
        outcome applied { report of class Report };
        outcome rejected { report of class Report }
    }
};

taskclass ApplyChange
{
    inputs
    {
        input main
        {
            instance of class InstanceId;
            script of class ScriptText
        }
    };
    outputs
    {
        outcome changed { report of class Report };
        outcome refused { report of class Report }
    }
};

compoundtask reconfigureApplication of taskclass ReconfigureApplication
{
    task applyChange of taskclass ApplyChange
    {
        implementation { "code" is "refApplyChange" };
        inputs
        {
            input main
            {
                inputobject instance from
                {
                    instance of task reconfigureApplication if input main
                };
                inputobject script from
                {
                    script of task reconfigureApplication if input main
                }
            }
        }
    };
    outputs
    {
        outcome applied
        {
            outputobject report from { report of task applyChange if output changed }
        };
        outcome rejected
        {
            outputobject report from { report of task applyChange if output refused }
        }
    }
};
"""


def admin_registry(
    system: WorkflowSystem,
    max_polls: int = 10_000,
    registry: Optional[ImplementationRegistry] = None,
) -> ImplementationRegistry:
    """Bind the administrative task implementations against a live system.

    The implementations talk to the execution service through its ORB proxy
    from the client node — the same path the paper's Java applets take.
    """
    reg = registry or ImplementationRegistry()
    execution = system.execution_proxy()

    @reg.implementation("refCheckStatus")
    def check_status(ctx):
        status = execution.status(ctx.value("instance"))
        if status["status"] in TERMINAL:
            return outcome(
                "terminal",
                report=f"{status['instance']}:{status['status']}:{status['outcome']}",
            )
        if ctx.repeats + 1 >= max_polls:
            return outcome("terminal", report=f"{status['instance']}:timeout")
        return repeat("poll")

    @reg.implementation("refApplyChange")
    def apply_change(ctx):
        try:
            execution.reconfigure(ctx.value("instance"), ctx.value("script"))
        except Exception as exc:
            return outcome("refused", report=f"refused: {exc}")
        return outcome("changed", report="applied")

    return reg


def build_monitor():
    return compile_script(MONITOR_SCRIPT)


def build_reconfigure():
    return compile_script(RECONFIGURE_SCRIPT)
