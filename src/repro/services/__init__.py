"""The workflow management system's services (DESIGN.md subsystem S6):
repository, execution, workers, system assembly and administrative workflow
applications — the paper's Fig. 4, over the simulated substrates.
"""

from .admin import (
    MONITOR_SCRIPT,
    RECONFIGURE_SCRIPT,
    admin_registry,
    build_monitor,
    build_reconfigure,
)
from .execution import EXECUTION_INTERFACE, ExecutionService
from .repository import REPOSITORY_INTERFACE, RepositoryService
from .serialization import (
    ref_from_plain,
    ref_to_plain,
    refs_from_plain,
    refs_to_plain,
    result_from_plain,
    result_to_plain,
    taskclass_from_plain,
    taskclass_to_plain,
)
from .system import TERMINAL, WorkflowSystem
from .worker import WORKER_INTERFACE, TaskWorker, WorkRequest

__all__ = [
    "EXECUTION_INTERFACE",
    "ExecutionService",
    "MONITOR_SCRIPT",
    "RECONFIGURE_SCRIPT",
    "REPOSITORY_INTERFACE",
    "RepositoryService",
    "TERMINAL",
    "TaskWorker",
    "WORKER_INTERFACE",
    "WorkRequest",
    "WorkflowSystem",
    "admin_registry",
    "build_monitor",
    "build_reconfigure",
    "ref_from_plain",
    "ref_to_plain",
    "refs_from_plain",
    "refs_to_plain",
    "result_from_plain",
    "result_to_plain",
    "taskclass_from_plain",
    "taskclass_to_plain",
]
