"""Workflow Execution Service (paper Fig. 4).

Coordinates workflow instances with the paper's system-level guarantees:

* **Durable coordination state.**  Everything needed to reconstruct an
  instance — script text, initial inputs, and a journal of task results,
  marks, failures, reconfigurations and forced aborts — is recorded in
  persistent atomic objects under transactions *before* it takes effect on
  the in-memory instance tree.  This is the paper's "records inter-task
  dependencies in persistent atomic objects and uses atomic transactions for
  propagating coordination information".
* **Crash recovery.**  After a node crash, :meth:`on_recover` replays each
  instance's journal over a fresh tree; because scheduling is deterministic,
  the rebuilt tree reaches exactly the pre-crash state, and still-unfinished
  tasks are re-dispatched.
* **At-least-once dispatch, exactly-once application.**  Tasks are dispatched
  to worker nodes through deferred ORB invocations (which ride the lossy
  network); a periodic sweeper re-dispatches anything unanswered, rotating
  workers; duplicate replies are deduplicated against the journal.
* **Automatic retries** of tasks that fail for system-level reasons, with the
  retry budget from the task's ``retries`` implementation property (§3).

Setting ``durable=False`` turns the journal volatile — the ablation of
experiment E14: without transactional propagation, crashes lose instances.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set, Tuple

from ..core.errors import ExecutionError, WorkflowError
from ..core.schema import Script
from ..core.values import ObjectRef
from ..engine.events import WorkflowStatus
from ..engine.instance import InstanceTree, TaskNode
from ..lang import compile_script
from ..net.node import Message, Service
from ..orb.broker import CommFailure, Interface, ObjectBroker
from ..txn.manager import TransactionManager
from ..txn.store import ObjectStore
from .serialization import (
    refs_from_plain,
    refs_to_plain,
    result_from_plain,
    result_to_plain,
    taskclass_from_plain,
    taskclass_to_plain,
)
from .worker import WorkRequest

EXECUTION_INTERFACE = Interface(
    "WorkflowExecution",
    (
        "instantiate",
        "status",
        "result",
        "list_instances",
        "reconfigure",
        "force_abort",
        "complete_task",
        "external_tasks",
        "trace",
        "tasks",
        "compact",
        "export_instance",
        "import_instance",
    ),
)


@dataclass
class _InFlight:
    request: Dict[str, Any]
    dispatched_at: float
    redispatches: int = 0
    sent: bool = False


@dataclass
class _Runtime:
    """Volatile per-instance state (rebuilt from the journal on recovery)."""

    iid: str
    script: Script
    tree: InstanceTree
    journal_keys: Set[Tuple] = field(default_factory=set)
    in_flight: Dict[Tuple[str, int], _InFlight] = field(default_factory=dict)
    volatile_journal: List[Dict[str, Any]] = field(default_factory=list)
    armed_deadlines: Set[Tuple[str, int]] = field(default_factory=set)
    external: Set[Tuple[str, int]] = field(default_factory=set)  # parked tasks
    # Monotonic execution numbering per task path.  machine.starts is NOT
    # unique across compound repeat rounds (children are rebuilt fresh), so
    # journal keys use this counter; replay reproduces it deterministically.
    exec_counter: Dict[str, int] = field(default_factory=dict)
    live_exec: Dict[str, int] = field(default_factory=dict)


class ExecutionService(Service):
    """The workflow execution service servant."""

    def __init__(
        self,
        name: str,
        store: ObjectStore,
        broker: ObjectBroker,
        repository_name: str,
        worker_names: List[str],
        durable: bool = True,
        dispatch_timeout: float = 30.0,
        sweep_interval: float = 10.0,
    ) -> None:
        super().__init__(name)
        self.store = store
        self.broker = broker
        self.repository_name = repository_name
        self.worker_names = list(worker_names)
        self.durable = durable
        self.dispatch_timeout = dispatch_timeout
        self.sweep_interval = sweep_interval
        self.manager = TransactionManager(f"{name}-tm")
        self.runtimes: Dict[str, _Runtime] = {}
        self.stats = {"dispatches": 0, "redispatches": 0, "duplicate_replies": 0, "recoveries": 0}

    # -- life-cycle -------------------------------------------------------------------

    def on_start(self) -> None:
        self._arm_sweeper()

    def on_recover(self) -> None:
        """Rebuild every instance from its durable journal (the crux of the
        paper's fault-tolerance story)."""
        self.stats["recoveries"] += 1
        self.runtimes = {}
        if self.durable:
            for iid in self.store.get_committed("instance-index", []):
                runtime = self._replay(iid)
                if runtime is not None:
                    self.runtimes[iid] = runtime
                    for key, flight in list(runtime.in_flight.items()):
                        self._send(runtime, key, flight)
                    self._arm_deadlines(runtime)
        self._arm_sweeper()

    # -- ORB operations ---------------------------------------------------------------------

    def instantiate(
        self,
        script_name: str,
        root_task: str,
        input_set: str = "main",
        inputs: Optional[Dict[str, Any]] = None,
    ) -> str:
        """Create and start a workflow instance from a stored script."""
        text = self.broker.invoke(
            self.node, self.repository_name, "get_script", script_name
        )
        script = compile_script(text)
        if self.durable:
            counter = self.store.get_committed("instance-counter", 0) + 1
        else:
            self._volatile_counter = getattr(self, "_volatile_counter", 0) + 1
            counter = self._volatile_counter
        iid = f"wf-{counter}"
        meta = {
            "script_text": text,
            "root_task": root_task,
            "input_set": input_set,
            "inputs": dict(inputs or {}),
            "journal_len": 0,
        }
        if self.durable:
            def body(txn) -> None:
                txn.write(self.store, "instance-counter", counter)
                index = list(txn.read(self.store, "instance-index", []))
                index.append(iid)
                txn.write(self.store, "instance-index", index)
                txn.write(self.store, f"instance:{iid}:meta", meta)

            self.manager.run(body)
        runtime = self._fresh_runtime(iid, script, meta)
        self.runtimes[iid] = runtime
        self._dispatch_pending(runtime)
        return iid

    def status(self, iid: str) -> Dict[str, Any]:
        runtime = self._runtime(iid)
        tree = runtime.tree
        status = tree.status
        if (
            status is WorkflowStatus.RUNNING
            and not runtime.in_flight
            and not runtime.external
            and not tree.has_work()
        ):
            status = WorkflowStatus.STALLED
        return {
            "instance": iid,
            "status": status.value,
            "outcome": tree.root.machine.outcome,
            "error": tree.error,
            "events": len(tree.log),
            "in_flight": len(runtime.in_flight),
            "awaiting_external": len(runtime.external),
        }

    def result(self, iid: str) -> Dict[str, Any]:
        runtime = self._runtime(iid)
        tree = runtime.tree
        objects: Dict[str, Any] = {}
        marks: List[Dict[str, Any]] = []
        from ..core.selection import EventKind

        for entry in tree.log.entries:
            if entry.producer_path != tree.root.path:
                continue
            if entry.event.kind in (EventKind.OUTCOME, EventKind.ABORT):
                objects = refs_to_plain(entry.event.objects)
            elif entry.event.kind is EventKind.MARK:
                marks.append({"name": entry.event.name, "objects": refs_to_plain(entry.event.objects)})
        return {
            "instance": iid,
            "status": tree.status.value,
            "outcome": tree.root.machine.outcome,
            "objects": objects,
            "marks": marks,
            "error": tree.error,
        }

    def list_instances(self) -> List[str]:
        return sorted(self.runtimes)

    def reconfigure(self, iid: str, new_script_text: str) -> bool:
        """Atomically apply a modified script to the *running* instance."""
        runtime = self._runtime(iid)
        new_script = compile_script(new_script_text)
        runtime.tree.reconfigure(new_script)  # raises without effect if illegal
        runtime.script = new_script
        self._journal(runtime, {"type": "reconfig", "script_text": new_script_text})
        self._dispatch_pending(runtime)
        return True

    def force_abort(self, iid: str, task_path: str, abort_name: Optional[str] = None) -> bool:
        runtime = self._runtime(iid)
        runtime.tree.force_abort(task_path, abort_name)
        self._journal(
            runtime, {"type": "force_abort", "path": task_path, "name": abort_name}
        )
        self._dispatch_pending(runtime)
        return True

    def external_tasks(self, iid: str) -> List[str]:
        """Paths of tasks parked awaiting an external completion."""
        return sorted(path for path, _exec in self._runtime(iid).external)

    def tasks(self, iid: str) -> List[Dict[str, Any]]:
        """Per-task-instance states: the admin console's detail view."""
        runtime = self._runtime(iid)
        rows: List[Dict[str, Any]] = []
        for node in runtime.tree.walk():
            rows.append(
                {
                    "path": node.path,
                    "taskclass": node.taskclass.name,
                    "compound": node.is_compound,
                    "state": node.machine.state.value,
                    "outcome": node.machine.outcome,
                    "starts": node.machine.starts,
                    "repeats": node.machine.repeats,
                    "marks": list(node.machine.marks_emitted),
                    "in_flight": (node.path, runtime.live_exec.get(node.path))
                    in runtime.in_flight,
                    "awaiting_external": (node.path, runtime.live_exec.get(node.path))
                    in runtime.external,
                }
            )
        return rows

    def trace(self, iid: str) -> str:
        """Human-readable chronological trace (the Fig. 4 monitoring view)."""
        from ..engine.trace import render_trace

        return render_trace(self._runtime(iid).tree.log)

    def export_instance(self, iid: str) -> Dict[str, Any]:
        """Portable snapshot of an instance: its meta + full journal.

        Because the journal is the instance (everything else replays
        deterministically), this is all another execution service needs to
        adopt the workflow — coordinator migration, the strongest form of
        the paper's "services being moved" motivation.
        """
        runtime = self._runtime(iid)
        if self.durable:
            meta = self.store.get_committed(f"instance:{iid}:meta")
            journal = [
                self.store.get_committed(f"instance:{iid}:journal:{n}")
                for n in range(meta["journal_len"])
            ]
        else:
            meta = None
            journal = list(runtime.volatile_journal)
        if meta is None:
            raise ExecutionError(f"{iid}: no durable state to export")
        return {"instance": iid, "meta": dict(meta), "journal": journal}

    def import_instance(self, snapshot: Dict[str, Any]) -> str:
        """Adopt an exported instance: persist its state locally, replay the
        journal, resume scheduling.  The id is preserved; importing an id
        this service already runs is refused."""
        iid = snapshot["instance"]
        if iid in self.runtimes:
            raise ExecutionError(f"{iid}: already present on this execution service")
        meta = dict(snapshot["meta"])
        journal = list(snapshot["journal"])
        meta["journal_len"] = len(journal)
        if self.durable:
            def body(txn) -> None:
                index = list(txn.read(self.store, "instance-index", []))
                if iid not in index:
                    index.append(iid)
                    txn.write(self.store, "instance-index", index)
                txn.write(self.store, f"instance:{iid}:meta", meta)
                for n, entry in enumerate(journal):
                    txn.write(self.store, f"instance:{iid}:journal:{n}", entry)

            self.manager.run(body)
            runtime = self._replay(iid)
        else:
            runtime = self._replay_from(iid, meta, journal)
            runtime.volatile_journal = journal
        self.runtimes[iid] = runtime
        for key, flight in list(runtime.in_flight.items()):
            self._send(runtime, key, flight)
        self._arm_deadlines(runtime)
        return iid

    def compact(self) -> int:
        """Checkpoint the durable store: fold the WAL into a snapshot.

        Long-running instances accumulate journal entries; compaction bounds
        recovery time without losing any instance (the journal entries are
        ordinary committed objects, so they live inside the checkpoint).
        Returns the number of live log records after compaction.
        """
        if self.durable:
            self.store.checkpoint()
        return len(self.store.wal)

    def complete_task(
        self,
        iid: str,
        task_path: str,
        output_name: str,
        objects: Optional[Dict[str, Any]] = None,
    ) -> bool:
        """Supply the outcome of a parked external task (§1's interactive
        tasks).  Journaled like a worker result, so it survives crashes."""
        runtime = self._runtime(iid)
        node = runtime.tree.node_at(task_path)
        exec_index = runtime.live_exec.get(task_path, 0)
        if (task_path, exec_index) not in runtime.external:
            raise ExecutionError(f"{task_path}: not awaiting an external completion")
        spec = node.taskclass.output(output_name)
        if spec is None:
            raise ExecutionError(
                f"{task_path}: taskclass {node.taskclass.name!r} has no output "
                f"{output_name!r}"
            )
        from ..engine.context import TaskResult

        result = TaskResult(spec.kind, output_name, dict(objects or {}))
        entry = {
            "type": "result",
            "path": task_path,
            "exec": exec_index,
            "result": result_to_plain(result),
        }
        self._journal(runtime, entry)
        runtime.external.discard((task_path, exec_index))
        self._apply_entry(runtime, entry)
        self._dispatch_pending(runtime)
        return True

    # -- dispatching -------------------------------------------------------------------------

    def _fresh_runtime(self, iid: str, script: Script, meta: Dict[str, Any]) -> _Runtime:
        tree = InstanceTree(script, meta["root_task"], now=self._now)
        runtime = _Runtime(iid, script, tree)
        tree.start(meta["input_set"], meta["inputs"])
        self._drain(runtime)
        return runtime

    def _now(self) -> float:
        return self.node.clock.now if self.node is not None else 0.0

    def _drain(self, runtime: _Runtime) -> None:
        """Begin execution of every ready task; queue the work requests."""
        while True:
            node = runtime.tree.take_ready()
            if node is None:
                break
            input_set, inputs = runtime.tree.begin_execution(node)
            exec_index = runtime.exec_counter.get(node.path, 0) + 1
            runtime.exec_counter[node.path] = exec_index
            runtime.live_exec[node.path] = exec_index
            request = WorkRequest(
                instance_id=runtime.iid,
                task_path=node.path,
                execution_index=exec_index,
                taskclass=taskclass_to_plain(node.taskclass),
                code=node.decl.implementation.code,
                input_set=input_set,
                inputs=refs_to_plain(inputs),
                properties=node.decl.implementation.as_dict(),
                attempt=node.attempt + 1,
                repeats=node.machine.repeats,
                reply_to=self.node.name if self.node else "",
            ).to_plain()
            runtime.in_flight[(node.path, exec_index)] = _InFlight(
                request, self._now()
            )

    def _dispatch_pending(self, runtime: _Runtime) -> None:
        self._drain(runtime)
        for key, flight in list(runtime.in_flight.items()):
            if not flight.sent:
                self._send(runtime, key, flight)
        self._arm_deadlines(runtime)

    def _arm_deadlines(self, runtime: _Runtime) -> None:
        """Fig. 3's abort-from-WAIT by timer: a task whose ``deadline``
        implementation property expires while it still waits for inputs is
        force-aborted into its first abort outcome.  The abort is journaled,
        so recovery replays it; timers themselves are volatile and re-armed
        (with a fresh full deadline — a documented simplification) after a
        crash."""
        if self.node is None or not self.node.alive:
            return
        from ..core.schema import OutputKind
        from ..core.states import TaskState

        for node in runtime.tree.walk():
            raw = node.decl.implementation.get("deadline")
            if raw is None or node.machine.state is not TaskState.WAIT:
                continue
            if not node.taskclass.outputs_of_kind(OutputKind.ABORT):
                continue
            # key by the per-path execution counter, which is unique across
            # compound repeat rounds (machine.starts is not)
            key = (node.path, runtime.exec_counter.get(node.path, 0))
            if key in runtime.armed_deadlines:
                continue
            try:
                delay = float(raw)
            except ValueError:
                continue
            runtime.armed_deadlines.add(key)

            def fire(
                runtime=runtime,
                path=node.path,
                count=runtime.exec_counter.get(node.path, 0),
            ) -> None:
                if runtime is not self.runtimes.get(runtime.iid):
                    return  # superseded by a recovery replay
                if runtime.tree.status.value != "running":
                    return
                try:
                    live = runtime.tree.node_at(path)
                except Exception:
                    return
                if (
                    not live.alive
                    or live.machine.state is not TaskState.WAIT
                    or runtime.exec_counter.get(path, 0) != count
                ):
                    return
                runtime.tree.force_abort(path)
                self._journal(
                    runtime, {"type": "force_abort", "path": path, "name": None}
                )
                self._dispatch_pending(runtime)

            self.node.call_after(delay, fire, label=f"deadline:{node.path}")

    def _send(self, runtime: _Runtime, key: Tuple[str, int], flight: _InFlight) -> None:
        if flight.request.get("code") == "system.timer":
            self._arm_timer_task(runtime, key, flight)
            return
        if not self.worker_names:
            raise ExecutionError("no workers configured")
        import zlib

        # The `location` implementation property pins a task to a worker
        # (§4.3's placement keywords); after the first re-dispatch the pin is
        # abandoned so a dead pinned worker cannot stall the workflow.
        pinned = flight.request.get("properties", {}).get("location")
        if pinned in self.worker_names and flight.redispatches == 0:
            worker = pinned
        else:
            stable = zlib.crc32(f"{runtime.iid}:{key[0]}:{key[1]}".encode())
            index = (stable + flight.redispatches) % len(self.worker_names)
            worker = self.worker_names[index]
        flight.dispatched_at = self._now()
        flight.sent = True
        self.stats["dispatches"] += 1
        try:
            self.broker.invoke_deferred(
                self.node,
                worker,
                "execute",
                (flight.request,),
                on_reply=lambda reply, iid=runtime.iid: self._handle_reply(iid, reply),
            )
        except CommFailure:
            pass  # sweeper retries

    def _arm_timer_task(self, runtime: _Runtime, key: Tuple[str, int], flight: _InFlight) -> None:
        """Built-in timer tasks (§4.2: "a set for an exceptional input such
        as a timer enabling a task to wait for normal inputs with a
        timeout").

        A task whose implementation names the reserved code ``system.timer``
        never goes to a worker: the execution service fires its first
        declared outcome after the ``delay`` property elapses.  The firing
        goes through the ordinary reply path, so it is journaled and
        crash-safe; after a recovery the in-flight timer is simply re-armed.
        """
        flight.sent = True
        try:
            delay = float(flight.request.get("properties", {}).get("delay", "0"))
        except ValueError:
            delay = 0.0
        # keep the sweeper quiet until the timer is genuinely overdue
        flight.dispatched_at = self._now() + delay
        taskclass = taskclass_from_plain(flight.request["taskclass"])
        outcomes = [o for o in taskclass.outputs if o.kind.name == "OUTCOME"]
        if not outcomes:
            reply = {
                "instance_id": runtime.iid,
                "task_path": key[0],
                "execution_index": key[1],
                "ok": False,
                "error": "system.timer task class declares no outcome",
                "marks": [],
            }
            self.node.call_after(max(delay, 0.0), lambda: self._handle_reply(runtime.iid, reply))
            return
        from ..engine.context import TaskResult
        from ..core.schema import OutputKind

        result = TaskResult(OutputKind.OUTCOME, outcomes[0].name, {})
        reply = {
            "instance_id": runtime.iid,
            "task_path": key[0],
            "execution_index": key[1],
            "ok": True,
            "result": result_to_plain(result),
            "marks": [],
            "error": None,
        }
        self.node.call_after(
            max(delay, 0.0),
            lambda: self._handle_reply(runtime.iid, reply),
            label=f"timer-task:{key[0]}",
        )

    def _arm_sweeper(self) -> None:
        if self.node is None or not self.node.alive:
            return

        def sweep() -> None:
            now = self._now()
            for runtime in self.runtimes.values():
                for key, flight in list(runtime.in_flight.items()):
                    if now - flight.dispatched_at >= self.dispatch_timeout:
                        flight.redispatches += 1
                        self.stats["redispatches"] += 1
                        self._send(runtime, key, flight)
            self._arm_sweeper()

        self.node.call_after(self.sweep_interval, sweep, label=f"{self.name}-sweep")

    # -- replies and marks ----------------------------------------------------------------------

    def on_message(self, message: Message) -> None:
        payload = message.payload
        if isinstance(payload, dict) and payload.get("type") == "mark":
            self._handle_mark(payload)

    def _handle_mark(self, payload: Dict[str, Any]) -> None:
        runtime = self.runtimes.get(payload.get("instance_id", ""))
        if runtime is None:
            return
        key = ("mark", payload["task_path"], payload["execution_index"], payload["name"])
        if key in runtime.journal_keys:
            return
        entry = {
            "type": "mark",
            "path": payload["task_path"],
            "exec": payload["execution_index"],
            "name": payload["name"],
            "objects": payload["objects"],
        }
        self._journal(runtime, entry)
        self._apply_mark(runtime, entry)
        self._dispatch_pending(runtime)

    def _handle_reply(self, iid: str, reply: Dict[str, Any]) -> None:
        runtime = self.runtimes.get(iid)
        if runtime is None:
            return
        path = reply["task_path"]
        exec_index = reply["execution_index"]
        flight_key = (path, exec_index)
        journal_key = ("result", path, exec_index)
        if journal_key in runtime.journal_keys:
            self.stats["duplicate_replies"] += 1
            return
        # marks carried in the reply (the datagram copies may have been lost)
        for mark in reply.get("marks", ()):
            mark_key = ("mark", path, exec_index, mark["name"])
            if mark_key in runtime.journal_keys:
                continue
            entry = {
                "type": "mark",
                "path": path,
                "exec": exec_index,
                "name": mark["name"],
                "objects": mark["objects"],
            }
            self._journal(runtime, entry)
            self._apply_mark(runtime, entry)
        if reply.get("ok") and reply.get("external"):
            # the task parked itself awaiting an external completion; stop
            # the sweeper from re-dispatching it and remember it durably
            if (path, exec_index) in runtime.external:
                self.stats["duplicate_replies"] += 1
                return
            entry = {"type": "external", "path": path, "exec": exec_index}
            self._journal(runtime, entry)
            runtime.in_flight.pop(flight_key, None)
            runtime.external.add((path, exec_index))
            return
        if reply.get("ok"):
            entry = {
                "type": "result",
                "path": path,
                "exec": exec_index,
                "result": reply["result"],
            }
        else:
            entry = {
                "type": "failure",
                "path": path,
                "exec": exec_index,
                "error": reply.get("error", "unknown"),
            }
        self._journal(runtime, entry)
        runtime.in_flight.pop(flight_key, None)
        self._apply_entry(runtime, entry)
        self._dispatch_pending(runtime)

    # -- journal ----------------------------------------------------------------------------------

    def _journal(self, runtime: _Runtime, entry: Dict[str, Any]) -> None:
        runtime.journal_keys.add(self._entry_key(entry))
        if not self.durable:
            runtime.volatile_journal.append(entry)
            return
        meta_key = f"instance:{runtime.iid}:meta"

        def body(txn) -> None:
            meta = dict(txn.read(self.store, meta_key))
            n = meta["journal_len"]
            txn.write(self.store, f"instance:{runtime.iid}:journal:{n}", entry)
            meta["journal_len"] = n + 1
            txn.write(self.store, meta_key, meta)

        self.manager.run(body)

    @staticmethod
    def _entry_key(entry: Dict[str, Any]) -> Tuple:
        if entry["type"] == "mark":
            return ("mark", entry["path"], entry["exec"], entry["name"])
        if entry["type"] in ("result", "failure"):
            return ("result", entry["path"], entry["exec"])
        return (entry["type"], id(entry))

    def _apply_mark(self, runtime: _Runtime, entry: Dict[str, Any]) -> None:
        try:
            node = runtime.tree.node_at(entry["path"])
        except ExecutionError:
            return
        if runtime.live_exec.get(entry["path"]) != entry["exec"]:
            return  # stale mark from a superseded execution
        runtime.tree.apply_mark(node, entry["name"], refs_from_plain(entry["objects"]))

    def _apply_entry(self, runtime: _Runtime, entry: Dict[str, Any]) -> None:
        kind = entry["type"]
        if kind == "mark":
            self._apply_mark(runtime, entry)
            return
        if kind == "reconfig":
            new_script = compile_script(entry["script_text"])
            runtime.tree.reconfigure(new_script)
            runtime.script = new_script
            return
        if kind == "force_abort":
            runtime.tree.force_abort(entry["path"], entry.get("name"))
            return
        try:
            node = runtime.tree.node_at(entry["path"])
        except ExecutionError:
            return
        if runtime.live_exec.get(entry["path"]) != entry["exec"]:
            return  # stale: a newer execution of this path supersedes it
        if kind == "result":
            try:
                runtime.tree.apply_result(node, result_from_plain(entry["result"]))
            except ExecutionError as exc:
                # the result did not match the task class signature: treat it
                # as a system failure (deterministic at replay too)
                runtime.tree.apply_failure(node, exc)
        elif kind == "failure":
            runtime.tree.apply_failure(node, WorkflowError(entry["error"]))

    # -- recovery -----------------------------------------------------------------------------------

    def _replay(self, iid: str) -> Optional[_Runtime]:
        meta = self.store.get_committed(f"instance:{iid}:meta")
        if meta is None:
            return None
        journal = [
            self.store.get_committed(f"instance:{iid}:journal:{n}")
            for n in range(meta["journal_len"])
        ]
        return self._replay_from(iid, meta, journal)

    def _replay_from(
        self, iid: str, meta: Dict[str, Any], journal: List[Optional[Dict[str, Any]]]
    ) -> _Runtime:
        script = compile_script(meta["script_text"])
        tree = InstanceTree(script, meta["root_task"], now=self._now)
        runtime = _Runtime(iid, script, tree)
        tree.start(meta["input_set"], meta["inputs"])
        self._drain(runtime)
        for entry in journal:
            if entry is None:
                break
            runtime.journal_keys.add(self._entry_key(entry))
            if entry["type"] in ("result", "failure"):
                runtime.in_flight.pop((entry["path"], entry["exec"]), None)
                runtime.external.discard((entry["path"], entry["exec"]))
            elif entry["type"] == "external":
                runtime.in_flight.pop((entry["path"], entry["exec"]), None)
                runtime.external.add((entry["path"], entry["exec"]))
            self._apply_entry(runtime, entry)
            self._drain(runtime)
        # anything still in flight was unanswered at crash time: re-dispatch
        for flight in runtime.in_flight.values():
            flight.dispatched_at = self._now() - self.dispatch_timeout
            flight.redispatches += 1
        return runtime

    # -- helpers --------------------------------------------------------------------------------------

    def _runtime(self, iid: str) -> _Runtime:
        try:
            return self.runtimes[iid]
        except KeyError:
            raise ExecutionError(f"unknown workflow instance {iid!r}") from None
