"""Workflow Execution Service (paper Fig. 4).

Coordinates workflow instances with the paper's system-level guarantees:

* **Durable coordination state.**  Everything needed to reconstruct an
  instance — script text, initial inputs, and a journal of task results,
  marks, failures, reconfigurations and forced aborts — is recorded in
  persistent atomic objects under transactions *before* it takes effect on
  the in-memory instance tree.  This is the paper's "records inter-task
  dependencies in persistent atomic objects and uses atomic transactions for
  propagating coordination information".
* **Crash recovery.**  After a node crash, :meth:`on_recover` replays each
  instance's journal over a fresh tree; because scheduling is deterministic,
  the rebuilt tree reaches exactly the pre-crash state, and still-unfinished
  tasks are re-dispatched.
* **At-least-once dispatch, exactly-once application.**  Tasks are dispatched
  to worker nodes through deferred ORB invocations (which ride the lossy
  network); a periodic sweeper re-dispatches anything unanswered; duplicate
  replies are deduplicated against the journal.
* **Adaptive dispatch resilience** (:mod:`repro.resilience`): each flight
  carries its own next-attempt deadline from a jittered exponential-backoff
  :class:`~repro.resilience.RetryPolicy`; routing is health-aware (EWMA
  latency, in-flight counts, per-worker circuit breakers) instead of blind
  rotation; slow flights are optionally *hedged* — duplicated to a second
  worker, safe because the journal applies exactly one reply; a flight past
  its redispatch cap is abandoned into an ordinary system failure.  Passing
  ``ResilienceConfig.disabled()`` restores the legacy fixed-interval
  dispatcher exactly.
* **Automatic retries** of tasks that fail for system-level reasons, with the
  retry budget from the task's ``retries`` implementation property (§3).

Setting ``durable=False`` turns the journal volatile — the ablation of
experiment E14: without transactional propagation, crashes lose instances.
"""

from __future__ import annotations

import itertools
import math
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Set, Tuple

from ..core.errors import ExecutionError, WorkflowError
from ..core.instrument import IOPATH_STATS
from ..core.schema import Script
from ..core.values import ObjectRef
from ..engine.events import WorkflowStatus
from ..engine.instance import InstanceTree, TaskNode
from ..lang import compile_script
from ..net.node import Message, Service
from ..orb.broker import CommFailure, Interface, ObjectBroker, Overloaded
from ..overload import AdmissionController, OverloadConfig, criticality_of
from ..resilience import HealthRegistry, ResilienceConfig, ResilienceLog
from ..sim.crashpoints import crash_point
from ..txn.manager import TransactionManager
from ..txn.store import ObjectStore
from .serialization import (
    refs_from_plain,
    refs_to_plain,
    result_from_plain,
    result_to_plain,
    taskclass_from_plain,
    taskclass_to_plain,
)
from .worker import WorkRequest

EXECUTION_INTERFACE = Interface(
    "WorkflowExecution",
    (
        "instantiate",
        "status",
        "result",
        "list_instances",
        "reconfigure",
        "force_abort",
        "complete_task",
        "external_tasks",
        "trace",
        "tasks",
        "compact",
        "export_instance",
        "import_instance",
        "resilience_report",
    ),
)


@dataclass
class _InFlight:
    request: Dict[str, Any]
    dispatched_at: float
    redispatches: int = 0
    sent: bool = False
    # resilience bookkeeping: when this flight becomes overdue (per-flight
    # backoff deadline), when an un-answered flight earns a hedge, whether a
    # hedge has been sent, and per-worker send times of the current wave
    next_attempt_at: float = math.inf
    hedge_at: Optional[float] = None
    hedged: bool = False
    sent_to: Dict[str, float] = field(default_factory=dict)


@dataclass
class _Runtime:
    """Volatile per-instance state (rebuilt from the journal on recovery)."""

    iid: str
    script: Script
    tree: InstanceTree
    journal_keys: Set[Tuple] = field(default_factory=set)
    in_flight: Dict[Tuple[str, int], _InFlight] = field(default_factory=dict)
    volatile_journal: List[Dict[str, Any]] = field(default_factory=list)
    armed_deadlines: Set[Tuple[str, int]] = field(default_factory=set)
    external: Set[Tuple[str, int]] = field(default_factory=set)  # parked tasks
    # journaled absolute deadline expiries, so recovery resumes a task's
    # *remaining* deadline instead of granting a fresh full one
    deadline_expiries: Dict[Tuple[str, int], float] = field(default_factory=dict)
    # Monotonic execution numbering per task path.  machine.starts is NOT
    # unique across compound repeat rounds (children are rebuilt fresh), so
    # journal keys use this counter; replay reproduces it deterministically.
    exec_counter: Dict[str, int] = field(default_factory=dict)
    live_exec: Dict[str, int] = field(default_factory=dict)
    # False when the script declares no ``deadline`` implementation property
    # anywhere: _arm_deadlines can skip its whole-tree walk (recomputed on
    # reconfiguration, which may introduce deadlines)
    has_deadlines: bool = True


def _script_has_deadlines(script: Script) -> bool:
    """True when any task declaration carries a ``deadline`` implementation
    property — the only case _arm_deadlines' whole-tree walk can act on."""
    return any(
        decl.implementation.get("deadline") is not None
        for _path, decl in script.walk_tasks()
    )


# Compiled scripts keyed by their exact source text.  Scripts are immutable
# (frozen declaration dataclasses); instance state lives in the tree, so one
# compiled Script can safely back every instance, replay shadow and recovery
# of the same text.  Keying by text (not name/version) makes staleness
# impossible.  Bounded: a pathological stream of distinct scripts clears the
# cache rather than growing it without limit.
_COMPILE_CACHE: Dict[str, Script] = {}
_COMPILE_CACHE_MAX = 128

# Bound on the hedge-loser ack table (_pending_acks): age-based reaping in the
# sweeper is the primary mechanism; this cap is the backstop under sustained
# overload, when losers can accrue faster than the reap horizon drains them.
_PENDING_ACK_CAP = 1024


def _compile_cached(text: str) -> Script:
    script = _COMPILE_CACHE.get(text)
    if script is None:
        script = compile_script(text)
        if len(_COMPILE_CACHE) >= _COMPILE_CACHE_MAX:
            _COMPILE_CACHE.clear()
        _COMPILE_CACHE[text] = script
    return script


class ExecutionService(Service):
    """The workflow execution service servant."""

    def __init__(
        self,
        name: str,
        store: ObjectStore,
        broker: ObjectBroker,
        repository_name: str,
        worker_names: List[str],
        durable: bool = True,
        dispatch_timeout: float = 30.0,
        sweep_interval: float = 10.0,
        resilience: Optional[ResilienceConfig] = None,
        journal_batch: bool = True,
        journal_window: float = 5.0,
        overload: Optional[OverloadConfig] = None,
    ) -> None:
        """``journal_batch`` turns on batched journal appends: entries
        produced within one scheduling pump (and across pumps that trigger
        no dispatch) accumulate in a buffer and commit in a single
        transaction/force at the next durability barrier — before any
        dependent dispatch, when an instance reaches a terminal state, in
        every public mutating operation, or at the latest ``journal_window``
        simulated seconds after the first buffered entry.  Recovery, replay
        determinism and exactly-once dedup are byte-identical to per-entry
        journaling (``journal_batch=False``)."""
        super().__init__(name)
        self.store = store
        self.broker = broker
        self.repository_name = repository_name
        self.worker_names = list(worker_names)
        self.durable = durable
        self.dispatch_timeout = dispatch_timeout
        self.sweep_interval = sweep_interval
        self.journal_batch = journal_batch
        self.journal_window = journal_window
        self._jbuf: List[Tuple[_Runtime, Dict[str, Any]]] = []
        self._jflush_armed = False
        # memoized wire forms keyed by id() with a strong reference to the
        # keyed object, so ids cannot be recycled under the cache
        self._plain_taskclasses: Dict[int, Tuple[Any, Dict[str, Any]]] = {}
        self._plain_props: Dict[int, Tuple[Any, Dict[str, str]]] = {}
        self.resilience = resilience or ResilienceConfig.for_timeouts(
            dispatch_timeout, sweep_interval
        )
        self.manager = TransactionManager(f"{name}-tm")
        self.runtimes: Dict[str, _Runtime] = {}
        # Fencing epoch: a durable incarnation counter stamped on every
        # journal entry and worker dispatch.  For a standalone service it
        # simply counts store-backed incarnations; under replication
        # (repro.replication) it is the lease epoch, and stale-epoch traffic
        # is rejected so a resurrected old primary cannot split-brain the
        # journal (docs/PROTOCOLS.md §12).
        self.epoch = 0
        self._sweep_armed = False
        self.stats = {
            "dispatches": 0,
            "redispatches": 0,
            "duplicate_replies": 0,
            "recoveries": 0,
            "hedges": 0,
            "breaker_trips": 0,
            "abandoned": 0,
            "failovers": 0,
            "staggered": 0,
            "fenced_replies": 0,
            "shed": 0,
            "overload_rejections": 0,
        }
        self.rlog = ResilienceLog(self.resilience.event_limit)
        self.health = HealthRegistry(
            self.worker_names, self.resilience, log=self.rlog, stats=self.stats
        )
        # Overload layer (docs/PROTOCOLS.md §13): bounded admission queue,
        # delay-gradient concurrency window, priority shedding.  Defaults are
        # generous enough that lightly loaded systems never notice it.
        self.overload = overload or OverloadConfig()
        self.admission = AdmissionController(self.overload, rlog=self.rlog)
        self._promoting = False  # re-entrancy guard for _promote_ready
        # hedge losers: sends still awaiting a (late) reply after their
        # flight resolved, kept so the reply credits the worker's health
        self._pending_acks: Dict[Tuple[str, str, int, str], float] = {}

    # -- life-cycle -------------------------------------------------------------------

    def on_start(self) -> None:
        self.epoch = self._advance_epoch()
        self._arm_sweeper()

    def on_recover(self) -> None:
        """Rebuild every instance from its durable journal (the crux of the
        paper's fault-tolerance story).  The health registry is volatile by
        design: the recovered coordinator relearns the fleet."""
        self.stats["recoveries"] += 1
        crash_point("exec.recover.pre", self)
        self.epoch = self._advance_epoch()
        self.runtimes = {}
        self.health.reset()
        self._pending_acks.clear()
        self._sweep_armed = False  # the old sweep chain died with the crash
        # buffered journal entries died with the crash, exactly like the
        # volatile tree state they described; the durable journal is truth
        self._jbuf.clear()
        self._jflush_armed = False
        if self.durable:
            for iid in self.store.get_committed("instance-index", []):
                runtime = self._replay(iid)
                if runtime is not None:
                    self.runtimes[iid] = runtime
                    self._resume_flights(runtime)
                    self._arm_deadlines(runtime)
        # Admission state is volatile: the queue died with the process, so
        # every rebuilt non-terminal instance counts as admitted (its journal
        # is durable work the service must finish — _resume_flights already
        # re-sent it, staggered) and the controller restarts unpressured.
        self.admission.rebuild(
            [
                iid
                for iid, runtime in self.runtimes.items()
                if runtime.tree.status is WorkflowStatus.RUNNING
            ],
            self._now(),
        )
        crash_point("exec.recover.replayed", self)
        self._arm_sweeper()

    def _advance_epoch(self) -> int:
        """Durably advance the fencing epoch for this incarnation.

        The counter lives in the service's own store so a recovered service
        never reuses an epoch it already journaled under — the property the
        recovery stagger key and the journal's epoch-monotonicity oracle
        rely on.  Replicated services override this: their epoch is the
        lease epoch, granted by the lease service."""
        if not self.durable:
            return self.epoch + 1
        advanced = self.store.get_committed("exec-epoch", 0) + 1
        self.manager.run(lambda txn: txn.write(self.store, "exec-epoch", advanced))
        self.store.sync()
        return advanced

    def is_primary(self) -> bool:
        """Whether this service currently owns its instances' journals.  A
        standalone service always does; replicated standbys return False and
        stay passive (no dispatch, no journaling) until promoted."""
        return True

    def replication_settled(self) -> bool:
        """Whether every durability barrier taken so far is also replicated
        (trivially true without replication).  The harness gates its
        durability observations on this: an outcome only counts as
        *acknowledged* once no single failure can lose it."""
        return True

    def _post_barrier(self) -> None:
        """Hook run after every durability barrier; replication ships the
        newly durable log suffix here.  No-op standalone."""

    @contextmanager
    def _journal_guard(self) -> Iterator[None]:
        """Error-path durability for buffered journal entries.

        An exception between buffering an entry and the next durability
        barrier must not strand the buffer: the tree has already applied the
        entry, so losing it would let the in-memory state run ahead of the
        durable journal for up to ``journal_window``.  Flushing on the error
        path closes that gap.  ``SimulatedCrash`` is a BaseException and is
        deliberately *not* caught — a machine crash loses the buffer together
        with the volatile tree state it described, which is the modelled
        semantics."""
        try:
            yield
        except Exception:
            self.flush_journal()
            raise

    # -- ORB operations ---------------------------------------------------------------------

    def instantiate(
        self,
        script_name: str,
        root_task: str,
        input_set: str = "main",
        inputs: Optional[Dict[str, Any]] = None,
    ) -> str:
        """Create and start a workflow instance from a stored script."""
        text = self.broker.invoke(
            self.node, self.repository_name, "get_script", script_name
        )
        script = _compile_cached(text)
        # Admission decision BEFORE anything is persisted: a rejected arrival
        # leaves no trace but the typed refusal, so the client's cooperative
        # backoff is the whole cost.  Shed verdicts, by contrast, persist the
        # instance and journal a decisive ``overloaded`` outcome — the caller
        # gets an instance id whose fate is queryable, never a silent drop.
        criticality = criticality_of(script, root_task)
        now = self._now()
        verdict = self.admission.decide(criticality, now)
        if verdict == "reject":
            hint = self.admission.retry_after(now)
            self.admission.on_reject(now, hint)
            self.stats["overload_rejections"] += 1
            raise Overloaded(
                f"{self.name}: admission queue full "
                f"({len(self.admission.queue)}/{self.overload.queue_capacity})",
                retry_after=hint,
            )
        if self.durable:
            counter = self.store.get_committed("instance-counter", 0) + 1
        else:
            self._volatile_counter = getattr(self, "_volatile_counter", 0) + 1
            counter = self._volatile_counter
        iid = f"wf-{counter}"
        meta = {
            "script_text": text,
            "root_task": root_task,
            "input_set": input_set,
            "inputs": dict(inputs or {}),
            "journal_len": 0,
        }
        if self.durable:
            def body(txn) -> None:
                txn.write(self.store, "instance-counter", counter)
                index = list(txn.read(self.store, "instance-index", []))
                index.append(iid)
                txn.write(self.store, "instance-index", index)
                txn.write(self.store, f"instance:{iid}:meta", meta)

            self.manager.run(body)
        crash_point("exec.instantiate.persisted", self)
        runtime = self._fresh_runtime(iid, script, meta)
        self.runtimes[iid] = runtime
        if verdict == "shed":
            self._shed(runtime, criticality, f"pressure {self.admission.pressure}")
        elif verdict == "queue":
            self.admission.enqueue(iid, criticality, now)
            # flights stay built-but-unsent until a window slot frees up;
            # the sweeper skips unsent flights, so nothing retransmits early
        else:
            self.admission.on_start(iid, now)
            self._dispatch_pending(runtime)
        return iid

    def status(self, iid: str) -> Dict[str, Any]:
        runtime = self._runtime(iid)
        tree = runtime.tree
        status = tree.status
        if (
            status is WorkflowStatus.RUNNING
            and not runtime.in_flight
            and not runtime.external
            and not tree.has_work()
        ):
            status = WorkflowStatus.STALLED
        return {
            "instance": iid,
            "status": status.value,
            "outcome": tree.root.machine.outcome,
            "error": tree.error,
            "events": len(tree.log),
            "in_flight": len(runtime.in_flight),
            "awaiting_external": len(runtime.external),
        }

    def result(self, iid: str) -> Dict[str, Any]:
        runtime = self._runtime(iid)
        tree = runtime.tree
        objects: Dict[str, Any] = {}
        marks: List[Dict[str, Any]] = []
        from ..core.selection import EventKind

        for entry in tree.log.entries:
            if entry.producer_path != tree.root.path:
                continue
            if entry.event.kind in (EventKind.OUTCOME, EventKind.ABORT):
                objects = refs_to_plain(entry.event.objects)
            elif entry.event.kind is EventKind.MARK:
                marks.append({"name": entry.event.name, "objects": refs_to_plain(entry.event.objects)})
        return {
            "instance": iid,
            "status": tree.status.value,
            "outcome": tree.root.machine.outcome,
            "objects": objects,
            "marks": marks,
            "error": tree.error,
        }

    def list_instances(self) -> List[str]:
        return sorted(self.runtimes)

    def reconfigure(self, iid: str, new_script_text: str) -> bool:
        """Atomically apply a modified script to the *running* instance."""
        runtime = self._runtime(iid)
        new_script = _compile_cached(new_script_text)
        with self._journal_guard():
            runtime.tree.reconfigure(new_script)  # raises without effect if illegal
            runtime.script = new_script
            runtime.has_deadlines = _script_has_deadlines(new_script)
            self._journal(runtime, {"type": "reconfig", "script_text": new_script_text})
            self._dispatch_pending(runtime)
            self.flush_journal()  # client observes the reconfiguration as durable
        return True

    def force_abort(self, iid: str, task_path: str, abort_name: Optional[str] = None) -> bool:
        runtime = self._runtime(iid)
        with self._journal_guard():
            runtime.tree.force_abort(task_path, abort_name)
            self._journal(
                runtime, {"type": "force_abort", "path": task_path, "name": abort_name}
            )
            self._dispatch_pending(runtime)
            self.flush_journal()  # client observes the abort as durable
        return True

    def external_tasks(self, iid: str) -> List[str]:
        """Paths of tasks parked awaiting an external completion."""
        return sorted(path for path, _exec in self._runtime(iid).external)

    def tasks(self, iid: str) -> List[Dict[str, Any]]:
        """Per-task-instance states: the admin console's detail view."""
        runtime = self._runtime(iid)
        rows: List[Dict[str, Any]] = []
        for node in runtime.tree.walk():
            rows.append(
                {
                    "path": node.path,
                    "taskclass": node.taskclass.name,
                    "compound": node.is_compound,
                    "state": node.machine.state.value,
                    "outcome": node.machine.outcome,
                    "starts": node.machine.starts,
                    "repeats": node.machine.repeats,
                    "marks": list(node.machine.marks_emitted),
                    "in_flight": (node.path, runtime.live_exec.get(node.path))
                    in runtime.in_flight,
                    "awaiting_external": (node.path, runtime.live_exec.get(node.path))
                    in runtime.external,
                }
            )
        return rows

    def trace(self, iid: str) -> str:
        """Human-readable chronological trace (the Fig. 4 monitoring view),
        followed by the dispatch layer's resilience decisions for the
        instance (redispatches, hedges, breaker transitions, failovers)."""
        from ..engine.trace import render_trace

        return render_trace(
            self._runtime(iid).tree.log,
            resilience=self.rlog.for_instance(iid),
        )

    def resilience_report(self) -> Dict[str, Any]:
        """Operator view of the dispatch layer: cumulative stats, per-worker
        health (breaker state, EWMA latency, streaks) and event counts."""
        now = self._now()
        return {
            "stats": dict(self.stats),
            "workers": self.health.snapshot(now),
            "events": self.rlog.summary(),
            "overload": self.admission.report(),
        }

    def export_instance(self, iid: str) -> Dict[str, Any]:
        """Portable snapshot of an instance: its meta + full journal.

        Because the journal is the instance (everything else replays
        deterministically), this is all another execution service needs to
        adopt the workflow — coordinator migration, the strongest form of
        the paper's "services being moved" motivation.
        """
        runtime = self._runtime(iid)
        if self.durable:
            self.flush_journal()  # export the full history, not a prefix
            meta = self.store.get_committed(f"instance:{iid}:meta")
            journal = self.store.get_committed_many(
                f"instance:{iid}:journal:{n}" for n in range(meta["journal_len"])
            )
        else:
            meta = None
            journal = list(runtime.volatile_journal)
        if meta is None:
            raise ExecutionError(f"{iid}: no durable state to export")
        return {"instance": iid, "meta": dict(meta), "journal": journal}

    def import_instance(self, snapshot: Dict[str, Any]) -> str:
        """Adopt an exported instance: persist its state locally, replay the
        journal, resume scheduling.  The id is preserved; importing an id
        this service already runs is refused."""
        iid = snapshot["instance"]
        if iid in self.runtimes:
            raise ExecutionError(f"{iid}: already present on this execution service")
        meta = dict(snapshot["meta"])
        journal = list(snapshot["journal"])
        meta["journal_len"] = len(journal)
        if self.durable:
            def body(txn) -> None:
                index = list(txn.read(self.store, "instance-index", []))
                if iid not in index:
                    index.append(iid)
                    txn.write(self.store, "instance-index", index)
                txn.write(self.store, f"instance:{iid}:meta", meta)
                for n, entry in enumerate(journal):
                    txn.write(self.store, f"instance:{iid}:journal:{n}", entry)

            self.manager.run(body)
            runtime = self._replay(iid)
        else:
            runtime = self._replay_from(iid, meta, journal)
            runtime.volatile_journal = journal
        self.runtimes[iid] = runtime
        if runtime.tree.status is WorkflowStatus.RUNNING:
            # adopted work is already paid for: it bypasses the admission
            # queue and takes a window slot directly
            self.admission.on_start(iid, self._now())
        self._resume_flights(runtime)
        self._arm_deadlines(runtime)
        return iid

    def compact(self) -> int:
        """Checkpoint the durable store: fold the WAL into a snapshot.

        Long-running instances accumulate journal entries; compaction bounds
        recovery time without losing any instance (the journal entries are
        ordinary committed objects, so they live inside the checkpoint).
        Returns the number of live log records after compaction.
        """
        crash_point("exec.compact.pre", self)
        if self.durable:
            self.flush_journal()  # fold buffered entries into the checkpoint
            self.store.checkpoint()
        crash_point("exec.compact.post", self)
        return len(self.store.wal)

    def complete_task(
        self,
        iid: str,
        task_path: str,
        output_name: str,
        objects: Optional[Dict[str, Any]] = None,
    ) -> bool:
        """Supply the outcome of a parked external task (§1's interactive
        tasks).  Journaled like a worker result, so it survives crashes."""
        runtime = self._runtime(iid)
        node = runtime.tree.node_at(task_path)
        exec_index = runtime.live_exec.get(task_path, 0)
        if (task_path, exec_index) not in runtime.external:
            raise ExecutionError(f"{task_path}: not awaiting an external completion")
        spec = node.taskclass.output(output_name)
        if spec is None:
            raise ExecutionError(
                f"{task_path}: taskclass {node.taskclass.name!r} has no output "
                f"{output_name!r}"
            )
        from ..engine.context import TaskResult

        result = TaskResult(spec.kind, output_name, dict(objects or {}))
        entry = {
            "type": "result",
            "path": task_path,
            "exec": exec_index,
            "result": result_to_plain(result),
        }
        with self._journal_guard():
            self._journal(runtime, entry)
            runtime.external.discard((task_path, exec_index))
            self._apply_entry(runtime, entry)
            self._dispatch_pending(runtime)
            self.flush_journal()  # client observes the completion as durable
        return True

    # -- dispatching -------------------------------------------------------------------------

    def _fresh_runtime(self, iid: str, script: Script, meta: Dict[str, Any]) -> _Runtime:
        tree = InstanceTree(script, meta["root_task"], now=self._now)
        runtime = _Runtime(iid, script, tree)
        runtime.has_deadlines = _script_has_deadlines(script)
        tree.start(meta["input_set"], meta["inputs"])
        self._drain(runtime)
        return runtime

    def _now(self) -> float:
        return self.node.clock.now if self.node is not None else 0.0

    def _taskclass_plain(self, taskclass: Any) -> Dict[str, Any]:
        """Memoized wire form of a task class.  Task classes are frozen and
        shared by every execution of the declaring script, so the plain dict
        is computed once; ORB marshalling copies it at the boundary, keeping
        the cached instance unaliased."""
        cached = self._plain_taskclasses.get(id(taskclass))
        if cached is None or cached[0] is not taskclass:
            cached = (taskclass, taskclass_to_plain(taskclass))
            self._plain_taskclasses[id(taskclass)] = cached
        return cached[1]

    def _props_plain(self, implementation: Any) -> Dict[str, str]:
        cached = self._plain_props.get(id(implementation))
        if cached is None or cached[0] is not implementation:
            cached = (implementation, implementation.as_dict())
            self._plain_props[id(implementation)] = cached
        return cached[1]

    def _drain(self, runtime: _Runtime) -> None:
        """Begin execution of every ready task; queue the work requests."""
        while True:
            node = runtime.tree.take_ready()
            if node is None:
                break
            input_set, inputs = runtime.tree.begin_execution(node)
            exec_index = runtime.exec_counter.get(node.path, 0) + 1
            runtime.exec_counter[node.path] = exec_index
            runtime.live_exec[node.path] = exec_index
            request = WorkRequest(
                instance_id=runtime.iid,
                task_path=node.path,
                execution_index=exec_index,
                taskclass=self._taskclass_plain(node.taskclass),
                code=node.decl.implementation.code,
                input_set=input_set,
                inputs=refs_to_plain(inputs),
                properties=self._props_plain(node.decl.implementation),
                attempt=node.attempt + 1,
                repeats=node.machine.repeats,
                reply_to=self.node.name if self.node else "",
            ).to_plain()
            runtime.in_flight[(node.path, exec_index)] = _InFlight(
                request, self._now()
            )

    def _dispatch_pending(self, runtime: _Runtime) -> None:
        self._drain(runtime)
        if runtime.iid not in self.admission.queue:
            # an instance still waiting in the admission queue keeps its
            # flights built-but-unsent; promotion dispatches them
            for key, flight in list(runtime.in_flight.items()):
                if not flight.sent:
                    self._send(runtime, key, flight)
        self._arm_deadlines(runtime)
        if runtime.tree.status is not WorkflowStatus.RUNNING:
            # terminal barrier: the deciding entry must be durable before the
            # terminal state can be observed between events (see the
            # durability oracle) — flush inside the same event that applied it
            self.flush_journal()
            # the terminal instance's window slot frees up: promote queued work
            self.admission.forget(runtime.iid)  # terminal while still queued
            self.admission.release(runtime.iid, self._now())
            self._promote_ready()

    def _shed(self, runtime: _Runtime, criticality: str, reason: str) -> None:
        """Decisive ``overloaded`` outcome for a not-yet-started instance.

        Journaled before it takes effect like every other outcome, so replay
        and recovery reproduce the shed exactly and the no-silent-drop oracle
        can hold the service to it.  Only instances that have not dispatched
        anything are ever shed — started work (flights, 2PC participation,
        journaled progress) is never thrown away."""
        self.admission.on_shed(runtime.iid, criticality, self._now(), reason)
        self.stats["shed"] += 1
        entry = {
            "type": "overloaded",
            "reason": reason,
            "criticality": criticality,
        }
        with self._journal_guard():
            self._journal(runtime, entry)
            self._apply_entry(runtime, entry)
            self.flush_journal()  # terminal outcome: durable before observable

    def _promote_ready(self) -> None:
        """Dispatch queued instances into freed window slots.

        Iterative with a re-entrancy guard: a promoted instance can complete
        synchronously (timer-free scripts on a quiet network), which frees
        its slot and would otherwise recurse back in here; the outer loop
        picks the freed slot up instead."""
        if self._promoting:
            return
        self._promoting = True
        try:
            while True:
                promoted = self.admission.promote_ready(self._now())
                if not promoted:
                    return
                for iid, _criticality, _sojourn in promoted:
                    runtime = self.runtimes.get(iid)
                    if runtime is None:
                        self.admission.release(iid, self._now())
                        continue
                    self._dispatch_pending(runtime)
        finally:
            self._promoting = False

    def _arm_deadlines(self, runtime: _Runtime) -> None:
        """Fig. 3's abort-from-WAIT by timer: a task whose ``deadline``
        implementation property expires while it still waits for inputs is
        force-aborted into its first abort outcome.  The abort is journaled,
        so recovery replays it.  Timers themselves are volatile, but the
        *absolute expiry* is journaled the first time a deadline is armed,
        so a recovered task resumes with its remaining deadline (and a
        deadline that lapsed during the outage fires immediately) instead of
        being granted a fresh full one."""
        if self.node is None or not self.node.alive:
            return
        if not runtime.has_deadlines:
            return  # script declares no deadline property: skip the tree walk
        from ..core.schema import OutputKind
        from ..core.states import TaskState

        journaled = False
        for node in runtime.tree.walk():
            raw = node.decl.implementation.get("deadline")
            if raw is None or node.machine.state is not TaskState.WAIT:
                continue
            if not node.taskclass.outputs_of_kind(OutputKind.ABORT):
                continue
            # key by the per-path execution counter, which is unique across
            # compound repeat rounds (machine.starts is not)
            key = (node.path, runtime.exec_counter.get(node.path, 0))
            if key in runtime.armed_deadlines:
                continue
            try:
                delay = float(raw)
            except ValueError:
                continue
            expires_at = runtime.deadline_expiries.get(key)
            if expires_at is None:
                expires_at = self._now() + delay
                runtime.deadline_expiries[key] = expires_at
                self._journal(
                    runtime,
                    {
                        "type": "deadline",
                        "path": node.path,
                        "exec": key[1],
                        "expires_at": expires_at,
                    },
                )
                journaled = True
            delay = max(0.0, expires_at - self._now())
            runtime.armed_deadlines.add(key)

            def fire(
                runtime=runtime,
                path=node.path,
                count=runtime.exec_counter.get(node.path, 0),
            ) -> None:
                if not self.is_primary():
                    return  # demoted: the new primary re-arms from its journal
                if runtime is not self.runtimes.get(runtime.iid):
                    return  # superseded by a recovery replay
                if runtime.tree.status.value != "running":
                    return
                try:
                    live = runtime.tree.node_at(path)
                except Exception:
                    return
                if (
                    not live.alive
                    or live.machine.state is not TaskState.WAIT
                    or runtime.exec_counter.get(path, 0) != count
                ):
                    return
                runtime.tree.force_abort(path)
                self._journal(
                    runtime, {"type": "force_abort", "path": path, "name": None}
                )
                self._dispatch_pending(runtime)

            self.node.call_after(delay, fire, label=f"deadline:{node.path}")
        if journaled:
            # a deadline's absolute expiry must survive a crash for recovery
            # to resume the *remaining* deadline — flush it right away
            self.flush_journal()

    def _send(
        self,
        runtime: _Runtime,
        key: Tuple[str, int],
        flight: _InFlight,
        hedge: bool = False,
    ) -> None:
        if not self.is_primary():
            # Demoted *mid-event* (e.g. the durability barrier below demoted
            # us because the lease service was unreachable): the rest of this
            # scheduling pump must not dispatch under the stale epoch.
            return
        # Durability barrier: a dispatched task's execution (and eventual
        # reply) depends on every journal entry that made it ready.  Were the
        # send to outrun the journal, a crash could replay a shorter journal
        # while the reply to the *longer* history arrives and is deduped —
        # wedging the instance.  Flush-before-send makes that impossible.
        self.flush_journal()
        if flight.request.get("code") == "system.timer":
            self._arm_timer_task(runtime, key, flight)
            return
        if not self.worker_names:
            raise ExecutionError("no workers configured")
        # stamp at send time, not build time: a flight drained before a
        # promotion must carry the promoted epoch when it finally goes out
        flight.request["epoch"] = self.epoch
        now = self._now()
        cfg = self.resilience
        if not cfg.enabled:
            worker = self._route_legacy(runtime, key, flight)
            flight.dispatched_at = now
            flight.sent = True
            flight.next_attempt_at = now + self.dispatch_timeout
        else:
            worker = self._route(runtime, key, flight, hedge, now)
            if worker is None:
                return  # hedge with no distinct worker available: skip
            if hedge:
                flight.hedged = True
                self.stats["hedges"] += 1
                self.rlog.record(now, "hedge", runtime.iid, key[0], worker)
            else:
                keymat = f"{runtime.iid}:{key[0]}:{key[1]}"
                flight.dispatched_at = now
                flight.sent = True
                flight.next_attempt_at = cfg.policy.next_attempt_at(
                    keymat, flight.redispatches, now
                )
                flight.hedge_at = (
                    now + cfg.hedge_delay
                    if cfg.hedge_delay is not None and not flight.hedged
                    else None
                )
                self.rlog.record(
                    now,
                    "redispatch" if flight.redispatches else "dispatch",
                    runtime.iid,
                    key[0],
                    worker,
                    detail=f"attempt {flight.redispatches + 1}",
                )
            self.health.on_dispatch(worker, now)
            flight.sent_to[worker] = now
        self.stats["dispatches"] += 1
        try:
            self.broker.invoke_deferred(
                self.node,
                worker,
                "execute",
                (flight.request,),
                on_reply=lambda reply, iid=runtime.iid: self._handle_reply(iid, reply),
            )
        except CommFailure:
            pass  # sweeper retries

    def _route_legacy(
        self, runtime: _Runtime, key: Tuple[str, int], flight: _InFlight
    ) -> str:
        """The original dispatcher: pin first, then blind crc32 rotation."""
        import zlib

        pinned = flight.request.get("properties", {}).get("location")
        if pinned in self.worker_names and flight.redispatches == 0:
            return pinned
        stable = zlib.crc32(f"{runtime.iid}:{key[0]}:{key[1]}".encode())
        return self.worker_names[(stable + flight.redispatches) % len(self.worker_names)]

    def _route(
        self,
        runtime: _Runtime,
        key: Tuple[str, int],
        flight: _InFlight,
        hedge: bool,
        now: float,
    ) -> Optional[str]:
        """Health-aware worker choice.

        The `location` implementation property pins the *first* attempt
        (§4.3's placement keywords) — unless the pinned worker's breaker is
        open, in which case the pin fails over immediately to the healthiest
        alternative (recorded as a ``failover`` event) rather than burning a
        whole timeout on a known-bad worker.  Redispatches abandon the pin
        entirely, as before.  Hedges exclude workers already carrying this
        flight's current wave.
        """
        pinned = flight.request.get("properties", {}).get("location")
        if not hedge and pinned in self.worker_names and flight.redispatches == 0:
            if self.health.allows(pinned, now):
                return pinned
            alternative = self.health.route(now, exclude={pinned})
            self.stats["failovers"] += 1
            self.rlog.record(
                now,
                "failover",
                runtime.iid,
                key[0],
                alternative or pinned,
                detail=f"pin {pinned} breaker open",
            )
            return alternative or pinned
        exclude = set(flight.sent_to) if hedge else ()
        return self.health.route(now, exclude=exclude)

    def _arm_timer_task(self, runtime: _Runtime, key: Tuple[str, int], flight: _InFlight) -> None:
        """Built-in timer tasks (§4.2: "a set for an exceptional input such
        as a timer enabling a task to wait for normal inputs with a
        timeout").

        A task whose implementation names the reserved code ``system.timer``
        never goes to a worker: the execution service fires its first
        declared outcome after the ``delay`` property elapses.  The firing
        goes through the ordinary reply path, so it is journaled and
        crash-safe; after a recovery the in-flight timer is simply re-armed.
        """
        flight.sent = True
        try:
            delay = float(flight.request.get("properties", {}).get("delay", "0"))
        except ValueError:
            delay = 0.0
        # keep the sweeper quiet until the timer is genuinely overdue
        flight.dispatched_at = self._now() + delay
        flight.next_attempt_at = (
            flight.dispatched_at
            + (self.resilience.policy.base_delay
               if self.resilience.enabled else self.dispatch_timeout)
        )
        flight.hedge_at = None  # timer tasks never go to a worker: no hedging
        taskclass = taskclass_from_plain(flight.request["taskclass"])
        outcomes = [o for o in taskclass.outputs if o.kind.name == "OUTCOME"]
        if not outcomes:
            reply = {
                "instance_id": runtime.iid,
                "task_path": key[0],
                "execution_index": key[1],
                "ok": False,
                "error": "system.timer task class declares no outcome",
                "marks": [],
            }
            self.node.call_after(max(delay, 0.0), lambda: self._handle_reply(runtime.iid, reply))
            return
        from ..engine.context import TaskResult
        from ..core.schema import OutputKind

        result = TaskResult(OutputKind.OUTCOME, outcomes[0].name, {})
        reply = {
            "instance_id": runtime.iid,
            "task_path": key[0],
            "execution_index": key[1],
            "ok": True,
            "result": result_to_plain(result),
            "marks": [],
            "error": None,
        }
        self.node.call_after(
            max(delay, 0.0),
            lambda: self._handle_reply(runtime.iid, reply),
            label=f"timer-task:{key[0]}",
        )

    def _arm_sweeper(self) -> None:
        if self.node is None or not self.node.alive or self._sweep_armed:
            return
        self._sweep_armed = True

        def sweep() -> None:
            if not self.is_primary():
                # demoted to standby: let the chain die; promotion re-arms it
                self._sweep_armed = False
                return
            now = self._now()
            cfg = self.resilience
            # Overload controller tick: adjust the window from the sojourn
            # signal, shed queued low-criticality work once pressure says so,
            # and promote into any headroom the adjustment opened up.
            self.admission.control(now)
            for victim_iid, victim_class in self.admission.evict_low(now):
                victim = self.runtimes.get(victim_iid)
                if victim is not None:
                    self._shed(
                        victim, victim_class,
                        f"evicted from queue at pressure {self.admission.pressure}",
                    )
            self._promote_ready()
            for runtime in list(self.runtimes.values()):
                for key, flight in list(runtime.in_flight.items()):
                    if key not in runtime.in_flight or not flight.sent:
                        continue
                    if (
                        cfg.enabled
                        and self.admission.allow_hedge()
                        and not flight.hedged
                        and flight.hedge_at is not None
                        and flight.hedge_at <= now < flight.next_attempt_at
                    ):
                        pinned = flight.request.get("properties", {}).get("location")
                        if pinned in self.worker_names and flight.redispatches == 0:
                            flight.hedge_at = None  # honour the pin: no hedge
                        else:
                            self._send(runtime, key, flight, hedge=True)
                    if key not in runtime.in_flight:
                        continue
                    if now >= flight.next_attempt_at:
                        if cfg.enabled:
                            for worker in list(flight.sent_to):
                                self.health.on_timeout(worker, now)
                                self.rlog.record(
                                    now, "timeout", runtime.iid, key[0], worker
                                )
                            flight.sent_to.clear()
                            if cfg.policy.exhausted(flight.redispatches) and (
                                flight.request.get("code") != "system.timer"
                            ):
                                self._abandon(runtime, key, flight, now)
                                continue
                        flight.redispatches += 1
                        self.stats["redispatches"] += 1
                        self._send(runtime, key, flight)
            if cfg.enabled and self._pending_acks:
                # hedge losers that never replied: count the timeout so a
                # dead hedge target still trips its breaker
                horizon = cfg.policy.base_delay
                for ack_key, sent_at in list(self._pending_acks.items()):
                    if now - sent_at >= horizon:
                        del self._pending_acks[ack_key]
                        self.health.on_timeout(ack_key[3], now)
            self._sweep_armed = False
            self._arm_sweeper()

        self.node.call_after(self.sweep_interval, sweep, label=f"{self.name}-sweep")

    def _abandon(
        self, runtime: _Runtime, key: Tuple[str, int], flight: _InFlight, now: float
    ) -> None:
        """The redispatch cap is spent: stop retransmitting and surface a
        system failure for the task.  From here the paper's §3 semantics take
        over — automatic retries per the task's ``retries`` property, then
        its first declared abort outcome — so the workflow still terminates
        decisively instead of retrying forever."""
        self.stats["abandoned"] += 1
        self.rlog.record(
            now,
            "abandon",
            runtime.iid,
            key[0],
            detail=f"redispatch cap ({flight.redispatches}) spent",
        )
        entry = {
            "type": "failure",
            "path": key[0],
            "exec": key[1],
            "error": f"dispatch abandoned after {flight.redispatches} redispatches",
        }
        self._journal(runtime, entry)
        # through _resolve_flight (not a bare pop): any workers still carrying
        # this flight's wave are parked in _pending_acks, so their late
        # replies keep feeding the health registry instead of vanishing
        self._resolve_flight(runtime, key)
        self._apply_entry(runtime, entry)
        self._dispatch_pending(runtime)

    # -- replies and marks ----------------------------------------------------------------------

    def on_message(self, message: Message) -> None:
        payload = message.payload
        if isinstance(payload, dict) and payload.get("type") == "mark":
            self._handle_mark(payload)

    def _handle_mark(self, payload: Dict[str, Any]) -> None:
        if not self.is_primary():
            return  # demoted: the current primary owns this instance now
        crash_point("exec.mark.recv", self)
        runtime = self.runtimes.get(payload.get("instance_id", ""))
        if runtime is None:
            return
        key = ("mark", payload["task_path"], payload["execution_index"], payload["name"])
        if key in runtime.journal_keys:
            return
        entry = {
            "type": "mark",
            "path": payload["task_path"],
            "exec": payload["execution_index"],
            "name": payload["name"],
            "objects": payload["objects"],
        }
        with self._journal_guard():
            self._journal(runtime, entry)
            self._apply_mark(runtime, entry)
            self._dispatch_pending(runtime)

    def _handle_reply(self, iid: str, reply: Dict[str, Any]) -> None:
        if not self.is_primary():
            return  # demoted: late replies belong to the current primary
        if reply.get("fenced"):
            # a worker refused a stale-epoch dispatch: never journaled as a
            # task failure — the flight stays open for the rightful primary
            self.stats["fenced_replies"] += 1
            self._on_fenced_reply(reply)
            return
        crash_point("exec.reply.recv", self)
        runtime = self.runtimes.get(iid)
        if runtime is None:
            return
        path = reply["task_path"]
        exec_index = reply["execution_index"]
        flight_key = (path, exec_index)
        self._credit_reply(runtime, flight_key, reply)
        journal_key = ("result", path, exec_index)
        if journal_key in runtime.journal_keys:
            self.stats["duplicate_replies"] += 1
            return
        with self._journal_guard():
            # marks carried in the reply (the datagram copies may have been lost)
            for mark in reply.get("marks", ()):
                mark_key = ("mark", path, exec_index, mark["name"])
                if mark_key in runtime.journal_keys:
                    continue
                entry = {
                    "type": "mark",
                    "path": path,
                    "exec": exec_index,
                    "name": mark["name"],
                    "objects": mark["objects"],
                }
                self._journal(runtime, entry)
                self._apply_mark(runtime, entry)
            if reply.get("ok") and reply.get("external"):
                # the task parked itself awaiting an external completion; stop
                # the sweeper from re-dispatching it and remember it durably
                if (path, exec_index) in runtime.external:
                    self.stats["duplicate_replies"] += 1
                    return
                entry = {"type": "external", "path": path, "exec": exec_index}
                self._journal(runtime, entry)
                self._resolve_flight(runtime, flight_key)
                runtime.external.add((path, exec_index))
                return
            if reply.get("ok"):
                entry = {
                    "type": "result",
                    "path": path,
                    "exec": exec_index,
                    "result": reply["result"],
                }
            else:
                entry = {
                    "type": "failure",
                    "path": path,
                    "exec": exec_index,
                    "error": reply.get("error", "unknown"),
                }
            self._journal(runtime, entry)
            self._resolve_flight(runtime, flight_key)
            self._apply_entry(runtime, entry)
            crash_point("exec.reply.applied", self)
            self._dispatch_pending(runtime)

    def _on_fenced_reply(self, reply: Dict[str, Any]) -> None:
        """Hook for replication: a fenced reply carries the highest epoch the
        worker has seen, evidence that a newer primary exists."""

    def _credit_reply(
        self, runtime: _Runtime, flight_key: Tuple[str, int], reply: Dict[str, Any]
    ) -> None:
        """Health accounting for any reply, duplicates included: the worker
        demonstrably served the request, so credit its latency and close its
        breaker — even when the journal then discards the reply as a
        duplicate (e.g. a hedge that lost the race)."""
        if not self.resilience.enabled:
            return
        worker = reply.get("worker")
        if not worker:
            return  # timer-task self-replies carry no worker
        now = self._now()
        flight = runtime.in_flight.get(flight_key)
        sent_at = flight.sent_to.pop(worker, None) if flight is not None else None
        if sent_at is None:
            sent_at = self._pending_acks.pop(
                (runtime.iid, flight_key[0], flight_key[1], worker), None
            )
        if sent_at is not None:
            self.health.on_reply(worker, now - sent_at, now)

    def _resolve_flight(
        self, runtime: _Runtime, flight_key: Tuple[str, int]
    ) -> Optional[_InFlight]:
        """Retire a flight; any other workers still carrying its current
        wave (hedge losers) are parked in ``_pending_acks`` so their late
        replies still feed the health registry."""
        flight = runtime.in_flight.pop(flight_key, None)
        if flight is not None and self.resilience.enabled:
            for worker, sent_at in flight.sent_to.items():
                self._pending_acks[
                    (runtime.iid, flight_key[0], flight_key[1], worker)
                ] = sent_at
            flight.sent_to.clear()
            # Hard cap behind the sweeper's age-based reaping: under sustained
            # overload hedge losers can accumulate faster than the horizon
            # drains them, and an unbounded table is exactly the kind of
            # hidden queue this layer exists to remove.  Oldest entries go
            # first — their workers already took the latency hit.
            if len(self._pending_acks) > _PENDING_ACK_CAP:
                overflow = sorted(
                    self._pending_acks.items(), key=lambda kv: (kv[1], kv[0])
                )[: len(self._pending_acks) - _PENDING_ACK_CAP]
                for ack_key, _sent_at in overflow:
                    del self._pending_acks[ack_key]
        return flight

    # -- journal ----------------------------------------------------------------------------------

    def _journal(self, runtime: _Runtime, entry: Dict[str, Any]) -> None:
        # Provenance stamp: which incarnation wrote this entry.  Inert for
        # dedup keys and replay; the epoch-monotonicity and single-writer
        # oracles (sim/oracles.py) audit these fields across failovers.
        entry["epoch"] = self.epoch
        entry["writer"] = self.name
        runtime.journal_keys.add(self._entry_key(entry))
        if not self.durable:
            runtime.volatile_journal.append(entry)
            return
        IOPATH_STATS.journal_entries += 1
        crash_point("exec.journal.pre", self)
        if self.journal_batch:
            # buffered: becomes durable at the next barrier (flush_journal).
            # The dedup key above and this buffered entry are both volatile,
            # so a crash loses them together — redelivered replies simply
            # journal again after recovery.
            self._jbuf.append((runtime, entry))
            self._arm_journal_window()
            return
        meta_key = f"instance:{runtime.iid}:meta"

        def body(txn) -> None:
            meta = dict(txn.read(self.store, meta_key))
            n = meta["journal_len"]
            txn.write(self.store, f"instance:{runtime.iid}:journal:{n}", entry)
            meta["journal_len"] = n + 1
            txn.write(self.store, meta_key, meta)

        self.manager.run(body)
        IOPATH_STATS.journal_batches += 1
        crash_point("exec.journal.post", self)
        self.store.sync()
        self._post_barrier()

    def flush_journal(self) -> int:
        """Durability barrier: commit every buffered journal entry in one
        transaction (one WAL force), update each touched instance's
        ``journal_len`` once, then drain the WAL group-commit window.

        The batch is all-or-nothing — every write rides a single COMMIT
        record, so a torn force during the flush presumed-aborts the whole
        batch and recovery sees a contiguous journal either way.  Returns
        the number of entries made durable."""
        if not self._jbuf:
            self._post_barrier()  # replication still ships any unshipped suffix
            return 0
        batch, self._jbuf = self._jbuf, []

        def body(txn) -> None:
            metas: Dict[str, Dict[str, Any]] = {}
            for runtime, entry in batch:
                meta = metas.get(runtime.iid)
                if meta is None:
                    meta = dict(txn.read(self.store, f"instance:{runtime.iid}:meta"))
                    metas[runtime.iid] = meta
                n = meta["journal_len"]
                txn.write(self.store, f"instance:{runtime.iid}:journal:{n}", entry)
                meta["journal_len"] = n + 1
            for iid, meta in metas.items():
                txn.write(self.store, f"instance:{iid}:meta", meta)

        self.manager.run(body)
        IOPATH_STATS.journal_batches += 1
        crash_point("exec.journal.post", self)
        self.store.sync()
        self._post_barrier()
        return len(batch)

    def _arm_journal_window(self) -> None:
        """Bound how long a buffered entry may stay volatile: one flush timer
        per non-empty buffer, armed when the first entry lands."""
        if self._jflush_armed or self.node is None or not self.node.alive:
            return
        self._jflush_armed = True

        def fire() -> None:
            self._jflush_armed = False
            if self.node is not None and self.node.alive:
                self.flush_journal()

        self.node.call_after(self.journal_window, fire, label=f"{self.name}-jflush")

    @staticmethod
    def _entry_key(entry: Dict[str, Any]) -> Tuple:
        if entry["type"] == "mark":
            return ("mark", entry["path"], entry["exec"], entry["name"])
        if entry["type"] in ("result", "failure"):
            return ("result", entry["path"], entry["exec"])
        if entry["type"] == "deadline":
            return ("deadline", entry["path"], entry["exec"])
        if entry["type"] == "overloaded":
            return ("overloaded",)  # at most one decisive shed per instance
        return (entry["type"], id(entry))

    def _apply_mark(self, runtime: _Runtime, entry: Dict[str, Any]) -> None:
        try:
            node = runtime.tree.node_at(entry["path"])
        except ExecutionError:
            return
        if runtime.live_exec.get(entry["path"]) != entry["exec"]:
            return  # stale mark from a superseded execution
        runtime.tree.apply_mark(node, entry["name"], refs_from_plain(entry["objects"]))

    def _apply_entry(self, runtime: _Runtime, entry: Dict[str, Any]) -> None:
        kind = entry["type"]
        if kind == "mark":
            self._apply_mark(runtime, entry)
            return
        if kind == "deadline":
            # inert for the tree: remembers the absolute expiry so recovery
            # re-arms the timer with the *remaining* deadline
            runtime.deadline_expiries[(entry["path"], entry["exec"])] = entry[
                "expires_at"
            ]
            return
        if kind == "reconfig":
            new_script = _compile_cached(entry["script_text"])
            runtime.tree.reconfigure(new_script)
            runtime.script = new_script
            runtime.has_deadlines = _script_has_deadlines(new_script)
            return
        if kind == "force_abort":
            runtime.tree.force_abort(entry["path"], entry.get("name"))
            return
        if kind == "overloaded":
            # decisive shed outcome: the whole instance fails terminally
            # before any of its tasks dispatched.  Clearing the flight table
            # keeps replay identical to the live path, where nothing was sent.
            runtime.in_flight.clear()
            runtime.external.clear()
            runtime.tree.fail(f"overloaded: {entry['reason']}")
            return
        try:
            node = runtime.tree.node_at(entry["path"])
        except ExecutionError:
            return
        if runtime.live_exec.get(entry["path"]) != entry["exec"]:
            return  # stale: a newer execution of this path supersedes it
        if kind == "result":
            try:
                runtime.tree.apply_result(node, result_from_plain(entry["result"]))
            except ExecutionError as exc:
                # the result did not match the task class signature: treat it
                # as a system failure (deterministic at replay too)
                runtime.tree.apply_failure(node, exc)
        elif kind == "failure":
            runtime.tree.apply_failure(node, WorkflowError(entry["error"]))

    # -- recovery -----------------------------------------------------------------------------------

    def _replay(self, iid: str) -> Optional[_Runtime]:
        meta = self.store.get_committed(f"instance:{iid}:meta")
        if meta is None:
            return None
        journal = self.store.get_committed_many(
            f"instance:{iid}:journal:{n}" for n in range(meta["journal_len"])
        )
        return self._replay_from(iid, meta, journal)

    def _replay_from(
        self, iid: str, meta: Dict[str, Any], journal: List[Optional[Dict[str, Any]]]
    ) -> _Runtime:
        script = _compile_cached(meta["script_text"])
        tree = InstanceTree(script, meta["root_task"], now=self._now)
        runtime = _Runtime(iid, script, tree)
        runtime.has_deadlines = _script_has_deadlines(script)
        tree.start(meta["input_set"], meta["inputs"])
        self._drain(runtime)
        for entry in journal:
            if entry is None:
                break
            self._replay_entry(runtime, entry)
        # anything still in flight was unanswered at crash time: it will be
        # re-dispatched (staggered, see _resume_flights) with the pin already
        # abandoned — the original target may be what crashed
        for flight in runtime.in_flight.values():
            flight.redispatches += 1
        return runtime

    def _replay_entry(self, runtime: _Runtime, entry: Dict[str, Any]) -> None:
        """Apply one journal entry to a replaying runtime.  Shared by crash
        recovery (`_replay_from`) and the replication standby's incremental
        warm image, which applies entries as they arrive instead of all at
        once."""
        runtime.journal_keys.add(self._entry_key(entry))
        if entry["type"] in ("result", "failure"):
            runtime.in_flight.pop((entry["path"], entry["exec"]), None)
            runtime.external.discard((entry["path"], entry["exec"]))
        elif entry["type"] == "external":
            runtime.in_flight.pop((entry["path"], entry["exec"]), None)
            runtime.external.add((entry["path"], entry["exec"]))
        self._apply_entry(runtime, entry)
        self._drain(runtime)

    def _resume_flights(self, runtime: _Runtime) -> None:
        """Re-send every flight that survived a recovery replay.

        The naive version re-sent the whole herd in one burst (each flight
        was marked a full ``dispatch_timeout`` overdue, so they also all
        *re*-dispatched on the same later sweep tick).  With resilience
        enabled, each flight instead gets a deterministic jittered offset
        inside ``policy.recovery_stagger``, spreading the post-recovery load
        over the window; the jitter key includes the durable fencing epoch so
        successive recoveries stagger differently.  (The in-memory
        ``stats["recoveries"]`` counter is wrong for this: it restarts at the
        same value on a freshly promoted standby, which would make
        post-failover resends stagger identically to the dead primary's first
        recovery — the epoch survives both restart and failover.)
        """
        cfg = self.resilience
        epoch = self.epoch
        for key, flight in sorted(runtime.in_flight.items(), key=lambda kv: kv[0]):
            if (
                not cfg.enabled
                or cfg.policy.recovery_stagger <= 0
                or flight.request.get("code") == "system.timer"
            ):
                self._send(runtime, key, flight)
                continue
            delay = cfg.policy.stagger(f"{runtime.iid}:{key[0]}:{key[1]}:{epoch}")
            if delay <= 0.0:
                self._send(runtime, key, flight)
                continue
            flight.sent = True  # reserve: _dispatch_pending must not double-send
            self.stats["staggered"] += 1
            self.rlog.record(
                self._now(),
                "stagger",
                runtime.iid,
                key[0],
                detail=f"resend +{delay:.2f}",
            )

            def fire(runtime=runtime, key=key) -> None:
                if not self.is_primary():
                    return  # demoted while the stagger timer was pending
                if self.runtimes.get(runtime.iid) is not runtime:
                    return  # superseded by another recovery replay
                flight = runtime.in_flight.get(key)
                if flight is not None:
                    self._send(runtime, key, flight)

            self.node.call_after(delay, fire, label=f"stagger:{key[0]}")

    # -- helpers --------------------------------------------------------------------------------------

    def _runtime(self, iid: str) -> _Runtime:
        try:
            return self.runtimes[iid]
        except KeyError:
            raise ExecutionError(f"unknown workflow instance {iid!r}") from None
