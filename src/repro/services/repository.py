"""Workflow Repository Service (paper Fig. 4).

Stores workflow scripts (schemas), validating on submission, with versioning
and inspect operations.  Script texts live in the hosting node's durable
:class:`~repro.txn.store.ObjectStore`, updated under transactions, so the
repository survives node crashes — its volatile state is nothing but a cache.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..core.errors import SchemaError
from ..core.graph import structure_summary
from ..core.schema import CompoundTaskDecl, Script
from ..lang import compile_script, format_script
from ..net.node import Service
from ..orb.broker import Interface
from ..txn.manager import TransactionManager
from ..txn.store import ObjectStore

REPOSITORY_INTERFACE = Interface(
    "WorkflowRepository",
    ("store_script", "get_script", "list_scripts", "versions", "inspect", "remove_script"),
)


class RepositoryService(Service):
    """CRUD + validation for named, versioned workflow scripts."""

    def __init__(
        self,
        name: str,
        store: ObjectStore,
        manager: Optional[TransactionManager] = None,
        strict_admission: bool = False,
    ) -> None:
        super().__init__(name)
        self.store = store
        self.manager = manager or TransactionManager(f"{name}-tm")
        # opt-in: also run the whole-script static analyser on submission and
        # reject scripts with any error-severity finding (unreachable
        # outcomes, dead tasks, guaranteed stalls) — not just invalid ones
        self.strict_admission = strict_admission

    # -- operations (exposed through the ORB) -------------------------------------

    def store_script(self, script_name: str, text: str) -> int:
        """Validate and store a new version of ``script_name``.

        Returns the stored version number (1 for a new script).  Invalid
        scripts are rejected and nothing is stored; under
        ``strict_admission`` a valid script whose static analysis
        (:func:`repro.analysis.analyze_script`) reports error-severity
        findings is rejected too.
        """
        script = compile_script(text)  # raises ParseError / ValidationReport
        if self.strict_admission:
            from ..analysis import analyze_script

            report = analyze_script(script, source_name=script_name)
            if not report.ok:
                details = "; ".join(str(f) for f in report.errors())
                raise SchemaError(
                    f"strict admission rejected {script_name!r}: {details}"
                )

        def body(txn) -> int:
            history: List[str] = list(txn.read(self.store, self._key(script_name), []))
            history.append(text)
            txn.write(self.store, self._key(script_name), history)
            index: List[str] = list(txn.read(self.store, "script-index", []))
            if script_name not in index:
                index.append(script_name)
                txn.write(self.store, "script-index", index)
            return len(history)

        return self.manager.run(body)

    def get_script(self, script_name: str, version: Optional[int] = None) -> str:
        """Latest (or a specific) version's text."""
        history = self.store.get_committed(self._key(script_name))
        if not history:
            raise SchemaError(f"no script named {script_name!r} in the repository")
        if version is None:
            return history[-1]
        if not 1 <= version <= len(history):
            raise SchemaError(f"{script_name!r} has no version {version}")
        return history[version - 1]

    def list_scripts(self) -> List[str]:
        return sorted(self.store.get_committed("script-index", []))

    def versions(self, script_name: str) -> int:
        history = self.store.get_committed(self._key(script_name))
        return len(history or [])

    def inspect(self, script_name: str) -> Dict[str, object]:
        """Structural summary of the latest version (the repository's
        'inspecting scripts' operation)."""
        script = self.load(script_name)
        tasks: Dict[str, object] = {}
        for decl in script.tasks.values():
            if isinstance(decl, CompoundTaskDecl):
                tasks[decl.name] = structure_summary(decl)
            else:
                tasks[decl.name] = {"taskclass": decl.taskclass_name}
        from ..lang.linter import lint_script

        return {
            "name": script_name,
            "versions": self.versions(script_name),
            "classes": sorted(script.classes),
            "taskclasses": sorted(script.taskclasses),
            "tasks": tasks,
            "lint": [str(w) for w in lint_script(script)],
            "canonical_text": format_script(script),
        }

    def remove_script(self, script_name: str) -> bool:
        def body(txn) -> bool:
            index: List[str] = list(txn.read(self.store, "script-index", []))
            if script_name not in index:
                return False
            index.remove(script_name)
            txn.write(self.store, "script-index", index)
            txn.write(self.store, self._key(script_name), [])
            return True

        return self.manager.run(body)

    # -- local helpers ----------------------------------------------------------------

    def load(self, script_name: str, version: Optional[int] = None) -> Script:
        """Compile the stored text (used in-process by the execution service)."""
        return compile_script(self.get_script(script_name, version))

    @staticmethod
    def _key(script_name: str) -> str:
        return f"script:{script_name}"
