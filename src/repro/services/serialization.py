"""Plain-data serialization for durable workflow state.

The execution service records everything it must survive a crash with —
initial inputs, task results, marks, reconfigurations — in persistent atomic
objects.  Stored values must be plain data (dicts/lists/strings/numbers), so
object payloads carried by :class:`ObjectRef` are required to be plain data
too; this mirrors the real system, where CORBA object references and IDL
values are what crosses and persists.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Tuple

from ..core.schema import InputSetSpec, ObjectDecl, OutputKind, OutputSpec, TaskClass
from ..core.values import ObjectRef
from ..engine.context import TaskResult

_KINDS = {kind.name: kind for kind in OutputKind}


def taskclass_to_plain(taskclass: TaskClass) -> Dict[str, Any]:
    return {
        "name": taskclass.name,
        "input_sets": [
            {"name": s.name, "objects": [[o.name, o.class_name] for o in s.objects]}
            for s in taskclass.input_sets
        ],
        "outputs": [
            {
                "name": o.name,
                "kind": o.kind.name,
                "objects": [[d.name, d.class_name] for d in o.objects],
            }
            for o in taskclass.outputs
        ],
    }


def taskclass_from_plain(data: Mapping[str, Any]) -> TaskClass:
    return TaskClass(
        data["name"],
        tuple(
            InputSetSpec(s["name"], tuple(ObjectDecl(n, c) for n, c in s["objects"]))
            for s in data["input_sets"]
        ),
        tuple(
            OutputSpec(
                o["name"],
                _KINDS[o["kind"]],
                tuple(ObjectDecl(n, c) for n, c in o["objects"]),
            )
            for o in data["outputs"]
        ),
    )


def ref_to_plain(ref: ObjectRef) -> Dict[str, Any]:
    return {
        "class": ref.class_name,
        "value": ref.value,
        "produced_by": ref.produced_by,
        "via": ref.via,
    }


def ref_from_plain(data: Mapping[str, Any]) -> ObjectRef:
    return ObjectRef(data["class"], data["value"], data.get("produced_by"), data.get("via"))


def refs_to_plain(objects: Mapping[str, ObjectRef]) -> Dict[str, Dict[str, Any]]:
    return {name: ref_to_plain(ref) for name, ref in objects.items()}


def refs_from_plain(data: Mapping[str, Mapping[str, Any]]) -> Dict[str, ObjectRef]:
    return {name: ref_from_plain(item) for name, item in data.items()}


def result_to_plain(result: TaskResult) -> Dict[str, Any]:
    objects: Dict[str, Any] = {}
    for name, value in result.objects.items():
        if isinstance(value, ObjectRef):
            objects[name] = {"__ref__": True, **ref_to_plain(value)}
        else:
            objects[name] = {"__ref__": False, "value": value}
    return {"kind": result.kind.name, "name": result.name, "objects": objects}


def result_from_plain(data: Mapping[str, Any]) -> TaskResult:
    objects: Dict[str, Any] = {}
    for name, item in data["objects"].items():
        if item.get("__ref__"):
            objects[name] = ref_from_plain(item)
        else:
            objects[name] = item["value"]
    return TaskResult(_KINDS[data["kind"]], data["name"], objects)
